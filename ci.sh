#!/usr/bin/env bash
# Tier-1 verification plus lints, as a single gate:
#   1. release build of the whole workspace
#   2. full test suite
#   3. cross-engine conformance, quick tier (sub-second; pass
#      CONFORM_FULL=1 to sweep the full thread lattice instead)
#   4. clippy with warnings promoted to errors
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fmwalk conform (oracle + golden traces) =="
if [[ "${CONFORM_FULL:-0}" == "1" ]]; then
    cargo run --release -q -p fm-cli -- conform --full
else
    cargo run --release -q -p fm-cli -- conform --quick
fi

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
