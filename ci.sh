#!/usr/bin/env bash
# Tier-1 verification plus lints, as a single gate:
#   1. release build of the whole workspace
#   2. full test suite
#   3. cross-engine conformance, quick tier (sub-second; pass
#      CONFORM_FULL=1 to sweep the full thread lattice instead)
#   4. ring tier: the same quick lattice with FMWALK_RING=16, proving
#      the latency-hiding walker ring is bit-invisible at max depth
#   5. program tier: the walk-program lattice (PPR, early-exit,
#      metapath vs their analytic oracles at {1,8} threads, golden
#      digests checked) plus the registry/oracle audit — any program
#      registered without an oracle fails the build — and the same
#      lattice again under FMWALK_RING=16
#   6. telemetry tier: compile-out build, overhead guard, and an
#      end-to-end `walk --trace` -> `trace-check` round trip
#   7. recover tier: an end-to-end checkpoint -> kill -> resume round
#      trip through the CLI (bit-identical output, correct exit codes)
#   8. oocore tier: the out-of-core fault-transparency test plus a CLI
#      crash drill over the FMDISK1 bi-block path — convert, walk a
#      second-order chain under 15% injected faults, halt deliberately
#      mid-schedule, resume bit-exactly, and check the exit-code
#      contract (4 wrong budget, 2 persistent faults, 3 corrupt graph)
#   9. audit tier: the flow-aware fm-audit scanner (`audit --graph`) at
#      -D warnings severity — textual lints plus call-graph taint,
#      panic-reachability, rng-purity and fingerprint-completeness —
#      with the JSON schema self-check, a seeded-violation check per
#      flow lint, a `--why` call-path reproduction, the pinned 0/1/2
#      exit-code contract, the dynamic disjointness checker's tests,
#      and the conformance quick lattice under --features
#      audit-disjoint; an env-gated nightly Miri pass (AUDIT_MIRI=1)
#      covers the recover codecs and fm-rng
#  10. perf tier: `bench-diff`'s exit-code contract on hand-written
#      ledgers, a `walk --hw-counters` / `cachecheck` degradation
#      round trip (exit 0 with or without PMU access), and — only on
#      hosts with working counters — a fresh test-scale bench run
#      compared against the committed BENCH_BASELINE.json
#  11. clippy with warnings promoted to errors
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test (tier-1 gate) =="
# The enforced tier-1 gate: the whole workspace test suite must be
# green at HEAD.  Nothing is quarantined; a failing test fails CI.
cargo test -q --workspace

echo "== fmwalk conform (oracle + golden traces) =="
if [[ "${CONFORM_FULL:-0}" == "1" ]]; then
    cargo run --release -q -p fm-cli -- conform --full
else
    cargo run --release -q -p fm-cli -- conform --quick
fi

echo "== ring tier (latency-hiding sample stage) =="
# The quick conformance lattice again, with the walker ring forced to
# its maximum depth.  The ring must be invisible in the output: same
# golden digests, same cross-engine agreement, at any depth.
FMWALK_RING=16 cargo run --release -q -p fm-cli -- conform --quick

echo "== program tier (WalkProgram lattice + registry audit) =="
# Every walk program registered in the engine crate must have an
# analytic oracle and lattice cells; the audit runs twice on purpose —
# once as a unit test, once inside `conform --programs` — so neither a
# test edit nor a CLI edit can silently drop it.
cargo test -q -p fm-conformance every_registered_program_has_an_oracle
# PPR, early-exit, and metapath vs their oracles on auto/PS/DS at
# {1, 8} threads, with committed golden digests.
cargo run --release -q -p fm-cli -- conform --programs
# The walker ring must stay bit-invisible for programs too.
FMWALK_RING=16 cargo run --release -q -p fm-cli -- conform --programs

echo "== telemetry tier =="
# The compile-out feature must keep the whole stack building and its
# (telemetry-independent) tests green.
cargo build --release -q -p flashmob -p fm-baseline -p fm-cli --features telemetry-off
cargo test -q -p fm-telemetry --features telemetry-off
# Overhead guard: enabled recorder within 5% of disabled.
cargo test -q --test telemetry_suite telemetry_overhead_stays_under_five_percent
# End-to-end: synth a graph, walk with tracing, validate the emitted
# Chrome trace with the in-tree TEF checker.
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP"' EXIT
cargo run --release -q -p fm-cli -- synth ring "$TELEMETRY_TMP/g.bin" --n 4096 --degree 8
cargo run --release -q -p fm-cli -- walk "$TELEMETRY_TMP/g.bin" \
    --steps 12 --walkers 2048 --threads 2 \
    --trace "$TELEMETRY_TMP/trace.json" --metrics "$TELEMETRY_TMP/metrics.jsonl"
cargo run --release -q -p fm-cli -- trace-check "$TELEMETRY_TMP/trace.json"

echo "== recover tier =="
# Checkpoint a walk, then resume it from the written snapshots and
# demand bit-identical paths.  (The in-process crash matrix — kill at
# every generation, all engines, golden digests — runs in tier 2 via
# tests/recover_suite.rs and the conformance crash tests.)
RECOVER_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP" "$RECOVER_TMP"' EXIT
cargo run --release -q -p fm-cli -- synth power-law "$RECOVER_TMP/g.bin" \
    --n 4096 --alpha 2.0 --min-degree 2 --max-degree 64 --seed 11
cargo run --release -q -p fm-cli -- walk "$RECOVER_TMP/g.bin" \
    --steps 12 --walkers 2048 --seed 5 \
    --checkpoint-dir "$RECOVER_TMP/ckpt" --checkpoint-every 4 \
    --output "$RECOVER_TMP/full.txt"
cargo run --release -q -p fm-cli -- resume "$RECOVER_TMP/g.bin" "$RECOVER_TMP/ckpt" \
    --steps 12 --walkers 2048 --seed 5 \
    --output "$RECOVER_TMP/resumed.txt"
cmp "$RECOVER_TMP/full.txt" "$RECOVER_TMP/resumed.txt"
# A mismatched resume configuration must exit 4 (invalid plan).
if cargo run --release -q -p fm-cli -- resume "$RECOVER_TMP/g.bin" "$RECOVER_TMP/ckpt" \
    --steps 12 --walkers 2048 --seed 6 --output /dev/null 2>/dev/null; then
    echo "resume with wrong seed unexpectedly succeeded" >&2; exit 1
else
    code=$?
    [[ "$code" == 4 ]] || { echo "wrong-seed resume exited $code, want 4" >&2; exit 1; }
fi

echo "== oocore tier (bi-block crash drill + fault transparency) =="
# The quick conformance lattice above already chi-squares the
# oocore x node2vec bi-block cell against the exact second-order
# oracle with its committed golden digest; this tier adds the fault
# and crash-consistency guarantees on top.
cargo test -q --test recover_suite ooc_transient_faults_are_absorbed_without_changing_output
# CLI crash drill: convert to FMDISK1, run a second-order walk under
# 15% injected faults with a deliberate mid-schedule halt (exit 0 by
# contract), then resume under the same faults and demand the output
# of the uninterrupted fault-free run, bit for bit.
OOC_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP" "$RECOVER_TMP" "$OOC_TMP"' EXIT
cargo run --release -q -p fm-cli -- synth power-law "$OOC_TMP/g.bin" \
    --n 2048 --alpha 2.0 --min-degree 2 --max-degree 64 --seed 11
cargo run --release -q -p fm-cli -- disk "$OOC_TMP/g.bin" "$OOC_TMP/g.fmdisk"
OOC_FLAGS="--algo node2vec --p 2.0 --q 0.5 --walkers 512 --steps 8 --seed 5 \
    --oocore-budget 4096"
cargo run --release -q -p fm-cli -- walk "$OOC_TMP/g.fmdisk" $OOC_FLAGS \
    --output "$OOC_TMP/full.txt"
if cargo run --release -q -p fm-cli -- walk "$OOC_TMP/g.fmdisk" $OOC_FLAGS \
    --checkpoint-dir "$OOC_TMP/ckpt" --checkpoint-every 3 --halt-after 2 \
    --fault-rate 0.15 --fault-seed 7 --output /dev/null; then
    : # --halt-after stops right after generation 2 and exits 0
else
    echo "deliberate oocore halt exited $?" >&2; exit 1
fi
cargo run --release -q -p fm-cli -- resume "$OOC_TMP/g.fmdisk" "$OOC_TMP/ckpt" \
    $OOC_FLAGS --fault-rate 0.15 --fault-seed 7 \
    --output "$OOC_TMP/resumed.txt"
cmp "$OOC_TMP/full.txt" "$OOC_TMP/resumed.txt"
# A resume under a different block budget must exit 4 (invalid plan):
# the schedule cursor is only meaningful for the budget it was cut for.
if cargo run --release -q -p fm-cli -- resume "$OOC_TMP/g.fmdisk" "$OOC_TMP/ckpt" \
    --algo node2vec --p 2.0 --q 0.5 --walkers 512 --steps 8 --seed 5 \
    --oocore-budget 8192 --output /dev/null 2>/dev/null; then
    echo "wrong-budget oocore resume unexpectedly succeeded" >&2; exit 1
else
    code=$?
    [[ "$code" == 4 ]] || { echo "wrong-budget resume exited $code, want 4" >&2; exit 1; }
fi
# A persistent fault storm must exhaust the bounded retries and exit 2
# (IO error), never panic or spin.
if cargo run --release -q -p fm-cli -- walk "$OOC_TMP/g.fmdisk" $OOC_FLAGS \
    --fault-rate 1.0 --output /dev/null 2>/dev/null; then
    echo "persistent-fault oocore walk unexpectedly succeeded" >&2; exit 1
else
    code=$?
    [[ "$code" == 2 ]] || { echo "persistent-fault walk exited $code, want 2" >&2; exit 1; }
fi
# A truncated disk graph must exit 3 (corrupt input), never slice-panic.
OOC_SIZE="$(stat -c %s "$OOC_TMP/g.fmdisk")"
head -c $((OOC_SIZE - 7)) "$OOC_TMP/g.fmdisk" > "$OOC_TMP/trunc.fmdisk"
if cargo run --release -q -p fm-cli -- walk "$OOC_TMP/trunc.fmdisk" $OOC_FLAGS \
    --output /dev/null 2>/dev/null; then
    echo "truncated disk graph unexpectedly walked" >&2; exit 1
else
    code=$?
    [[ "$code" == 3 ]] || { echo "truncated-graph walk exited $code, want 3" >&2; exit 1; }
fi

echo "== audit tier =="
# Flow-aware static scan: the textual lint catalogue (SAFETY comments,
# thread/IO discipline, cast-free codecs, unwrap ratchet) plus the call
# graph passes (determinism-taint, panic-reachability, rng-purity,
# fingerprint-completeness).  Any finding is an error — the scanner's
# own -D warnings.  Exit-code contract: 0 clean, 1 findings, 2 IO/config.
cargo run --release -q -p fm-cli -- audit --graph
# --json emits the machine-readable report and self-validates it
# against the documented schema (schema drift exits 2); check the
# stream is non-empty and carries the graph block too.
AUDIT_JSON="$(cargo run --release -q -p fm-cli -- audit --graph --json)"
grep -q '"graph":' <<< "$AUDIT_JSON" || {
    echo "audit --json lost the graph stats block" >&2; exit 1; }
# The seeded bad workspace must trip every flow lint, exit with the
# findings code, and reproduce a full call path via --why.
BAD_WS=crates/audit/tests/fixtures/bad_ws
if cargo run --release -q -p fm-cli -- audit --graph \
    --root "$BAD_WS" >/dev/null 2>&1; then
    echo "audit unexpectedly passed on the seeded bad workspace" >&2; exit 1
else
    code=$?
    [[ "$code" == 1 ]] || { echo "bad_ws audit exited $code, want 1" >&2; exit 1; }
fi
BAD_OUT="$(cargo run --release -q -p fm-cli -- audit --graph --root "$BAD_WS" 2>&1 || true)"
for lint in determinism-taint panic-reachability rng-purity fingerprint-completeness; do
    grep -q "\[$lint\]" <<< "$BAD_OUT" || {
        echo "bad_ws audit did not fire $lint" >&2; exit 1; }
done
WHY_OUT="$(cargo run --release -q -p fm-cli -- audit --root "$BAD_WS" \
    --why hot_pick 2>&1 || true)"
grep -q "fn sample_partition (call at line" <<< "$WHY_OUT" || {
    echo "audit --why did not reproduce the bad_ws panic path" >&2; exit 1; }
# A nonexistent root is an IO error, not a findings failure: exit 2.
if cargo run --release -q -p fm-cli -- audit --graph \
    --root /nonexistent-audit-root >/dev/null 2>&1; then
    echo "audit passed on a nonexistent root" >&2; exit 1
else
    code=$?
    [[ "$code" == 2 ]] || { echo "nonexistent-root audit exited $code, want 2" >&2; exit 1; }
fi
# Dynamic disjointness: the injected-overlap tests, then the full
# conformance quick lattice with every DisjointSlice claim interval-
# checked at pool epoch boundaries.
cargo test -q -p flashmob --features audit-disjoint --test audit_disjoint
cargo run --release -q -p fm-cli --features audit-disjoint -- conform --quick
# Env-gated nightly Miri pass over the snapshot codecs and the RNGs.
# Both crates contain zero unsafe code (see the fm-audit inventory), so
# this guards against UB creeping in, not known UB.
if [[ "${AUDIT_MIRI:-0}" == "1" ]]; then
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -p fm-recover wire:: crc:: snapshot::
        cargo +nightly miri test -p fm-rng
        echo "audit: miri-clean (fm-recover codecs + fm-rng)"
    else
        echo "audit: AUDIT_MIRI=1 but cargo-miri is not installed; install" >&2
        echo "audit: with 'rustup +nightly component add miri' and re-run" >&2
        exit 1
    fi
else
    echo "audit: Miri tier skipped (set AUDIT_MIRI=1 on a nightly with miri)"
fi

echo "== perf tier (hardware observability + bench ledger) =="
PERF_TMP="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_TMP" "$RECOVER_TMP" "$PERF_TMP"' EXIT
# bench-diff's exit-code contract is machine-independent: check it with
# hand-written ledgers.  Same numbers -> 0; a 3x slowdown -> 1; a
# missing baseline file -> 2.
cat > "$PERF_TMP/base.jsonl" <<'JSONL'
{"fig": "smoke", "label": "ci", "case": "a", "per_step_ns": 100.0, "speedup": 2.0}
JSONL
cat > "$PERF_TMP/ok.jsonl" <<'JSONL'
{"fig": "smoke", "label": "ci", "case": "a", "per_step_ns": 120.0, "speedup": 1.8}
JSONL
cat > "$PERF_TMP/bad.jsonl" <<'JSONL'
{"fig": "smoke", "label": "ci", "case": "a", "per_step_ns": 300.0, "speedup": 2.0}
JSONL
cargo run --release -q -p fm-cli -- bench-diff "$PERF_TMP/ok.jsonl" \
    --baseline "$PERF_TMP/base.jsonl" >/dev/null
if cargo run --release -q -p fm-cli -- bench-diff "$PERF_TMP/bad.jsonl" \
    --baseline "$PERF_TMP/base.jsonl" >/dev/null 2>&1; then
    echo "bench-diff missed a 3x regression" >&2; exit 1
else
    code=$?
    [[ "$code" == 1 ]] || { echo "regression diff exited $code, want 1" >&2; exit 1; }
fi
if cargo run --release -q -p fm-cli -- bench-diff "$PERF_TMP/ok.jsonl" \
    --baseline "$PERF_TMP/nonexistent.json" >/dev/null 2>&1; then
    echo "bench-diff passed without a baseline" >&2; exit 1
else
    code=$?
    [[ "$code" == 2 ]] || { echo "missing-baseline diff exited $code, want 2" >&2; exit 1; }
fi
# Degradation round trip: both commands must exit 0 with or without
# PMU access; --hw-counters merely adds a stderr notice when degraded.
cargo run --release -q -p fm-cli -- walk "$TELEMETRY_TMP/g.bin" \
    --steps 8 --walkers 1024 --hw-counters >/dev/null
cargo run --release -q -p fm-cli -- cachecheck --quick > "$PERF_TMP/cachecheck.txt"
# Hardware-gated: compare a fresh test-scale bench run against the
# committed ledger only where counters exist (wall-clock numbers from a
# PMU-less container are still compared — the ledger was recorded on
# one — but we keep the gate conservative and visible).
if grep -q "SIMULATION-ONLY" "$PERF_TMP/cachecheck.txt"; then
    echo "perf: no hardware counters on this host; skipping the"
    echo "perf: fresh-run comparison against BENCH_BASELINE.json"
else
    cargo run --release -q -p fm-bench --bin fig_prefetch -- --json \
        | grep '^{' > "$PERF_TMP/fresh.jsonl"
    cargo run --release -q -p fm-bench --bin ext_out_of_core -- --json --threads 8 \
        | grep '^{' >> "$PERF_TMP/fresh.jsonl"
    cargo run --release -q -p fm-cli -- bench-diff "$PERF_TMP/fresh.jsonl" \
        --baseline BENCH_BASELINE.json
fi

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
