#!/usr/bin/env bash
# Tier-1 verification plus lints, as a single gate:
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings promoted to errors
# Run from the repository root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
