//! The engine-agnostic walk snapshot and its framed binary format.
//!
//! ```text
//! file   := magic(8) = "FMCKPT1\0" | frame(STAT) | frame(WLKR) | frame(OUTP)
//! frame  := tag(4) | payload_len(u64 LE) | payload | crc32(u32 LE)
//! ```
//!
//! The CRC of each frame covers its tag, length field, and payload, so
//! every byte of the file is guarded: the magic by equality, everything
//! else by a frame CRC.  Decoding verifies all three CRCs *before*
//! parsing any payload, which is what makes the corruption property hold
//! ("flip any one byte → [`RecoverError::Corrupt`]", proven by a sweep
//! test in this module).  Length fields are validated against the bytes
//! actually present before any allocation.
//!
//! Section contents:
//!
//! * `STAT` — scalars: format version, seed, next iteration, total
//!   steps, walker count, steps taken so far, engine config fingerprint,
//!   graph fingerprint, per-partition step counters.
//! * `WLKR` — the compact walker arrays: current vertices `w`, previous
//!   vertices `prev` (second-order walks), per-vertex visit counters,
//!   and the pre-sample buffer state of every PS partition (FlashMob's
//!   PS buffers carry unconsumed samples *across* iterations, so resume
//!   without them would diverge from the uninterrupted chain).
//! * `OUTP` — the output cursor: every path row recorded so far.
//! * `BBLK` *(optional)* — the out-of-core bi-block scheduler's
//!   mid-schedule state: epoch and pair-slot cursor, the parked-walker
//!   boundary buckets, per-walker step counters, and the walker-major
//!   partial paths.  The frame is appended only by the bi-block engine;
//!   first-order snapshots omit it and decode exactly as before.  It
//!   uses the same tag/len/payload/CRC32 frame as the mandatory
//!   sections, so the single-byte-corruption property ("flip any one
//!   byte → `Corrupt`") extends to the new state for free: a flipped
//!   tag fails the tag check, a flipped length or payload byte fails
//!   the CRC, and stray trailing bytes fail the frame-header minimum.

use std::path::{Path, PathBuf};

use crate::error::RecoverError;
use crate::fault::FaultPolicy;
use crate::retry::RetryPolicy;
use crate::wire::{Reader, Writer};
use crate::crc::crc32;

/// File magic of a snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"FMCKPT1\0";
const FORMAT_VERSION: u32 = 1;

const TAG_STATE: &[u8; 4] = b"STAT";
const TAG_WALKERS: &[u8; 4] = b"WLKR";
const TAG_OUTPUT: &[u8; 4] = b"OUTP";
const TAG_BIBLOCK: &[u8; 4] = b"BBLK";

/// How (and whether) a run writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory snapshots and the manifest are published into.
    pub dir: PathBuf,
    /// Iterations between checkpoints (a checkpoint is written after
    /// every `every`-th iteration completes).  0 disables checkpointing.
    pub every: usize,
    /// Stop the run with `Halted` right after writing this many
    /// checkpoints — the crash-matrix harness's deterministic "kill".
    pub halt_after: Option<u64>,
    /// Inject seeded faults into checkpoint IO (tests).
    pub fault: Option<FaultPolicy>,
    /// Retry policy for transient checkpoint IO errors.
    pub retry: RetryPolicy,
}

impl CheckpointSpec {
    /// Checkpoints into `dir` after every `every` iterations.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            dir: dir.into(),
            every,
            halt_after: None,
            fault: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Halt the run (deterministic simulated kill) after `n` checkpoints.
    pub fn halt_after(mut self, n: u64) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Inject seeded faults into checkpoint writes.
    pub fn fault(mut self, policy: FaultPolicy) -> Self {
        self.fault = Some(policy);
        self
    }

    /// Override the transient-retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Mid-schedule state of the out-of-core bi-block scheduler (second
/// order walks): where in the triangular pair sweep the run stopped and
/// every walker parked at a block boundary.  Serialized as the optional
/// `BBLK` frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BiBlockState {
    /// Completed triangular sweeps.
    pub epoch: u64,
    /// Next pair slot (flat triangular index) within the current epoch.
    pub cursor: u64,
    /// Number of blocks the budget produced; a resume under a different
    /// block layout is rejected by shape checks.
    pub blocks: u64,
    /// Steps completed per walker.
    pub done: Vec<u32>,
    /// Parked walker indices per pair slot (the boundary buffers).
    pub buckets: Vec<Vec<u32>>,
    /// Walker-major partial paths (empty unless paths are recorded).
    pub paths: Vec<Vec<u32>>,
}

/// Pre-sample buffer state of one PS partition at the snapshot point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsPartState {
    /// Flat pre-sampled edge buffer (layout defined by the plan).
    pub buf: Vec<u32>,
    /// Remaining unconsumed samples per vertex.
    pub cursor: Vec<u32>,
}

/// A complete, engine-agnostic snapshot of a walk at an epoch boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalkSnapshot {
    /// Seed the run was started with.
    pub seed: u64,
    /// First iteration the resumed run must execute.
    pub iter_next: u64,
    /// Total configured iterations.
    pub steps_total: u64,
    /// Walker count.
    pub walkers: u64,
    /// Live walker-steps executed so far.
    pub steps_taken: u64,
    /// Fingerprint of the engine configuration (algorithm, stop rule,
    /// planner, …); a resume against a different config is rejected.
    pub config_tag: u64,
    /// Fingerprint of the (sorted) graph; a resume against a different
    /// graph is rejected.
    pub graph_tag: u64,
    /// Walker-steps executed per partition so far.
    pub per_partition_steps: Vec<u64>,
    /// Current walker vertices (sorted ID space).
    pub w: Vec<u32>,
    /// Previous vertices (second-order walks; empty otherwise).
    pub prev: Vec<u32>,
    /// Per-vertex visit counters (empty unless `record_visits`).
    pub visits: Vec<u64>,
    /// Pre-sample buffer state per partition (`None` for DS partitions).
    pub ps: Vec<Option<PsPartState>>,
    /// Recorded path rows so far (empty unless `record_paths`).
    pub rows: Vec<Vec<u32>>,
    /// Bi-block scheduler state (out-of-core second-order walks only).
    pub biblock: Option<BiBlockState>,
}

/// FNV-1a fingerprint builder for config/graph tags.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    pub fn fold_u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

fn frame(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Splits the next frame off `data` at `pos`, verifying tag and CRC.
fn read_frame<'a>(
    data: &'a [u8],
    pos: &mut usize,
    tag: &[u8; 4],
    section: &'static str,
    path: &Path,
) -> Result<&'a [u8], RecoverError> {
    let corrupt = |detail: String| RecoverError::Corrupt {
        path: path.to_path_buf(),
        section: section.to_string(),
        detail,
    };
    let start = *pos;
    if data.len() - start < 12 {
        return Err(corrupt("truncated frame header".into()));
    }
    if &data[start..start + 4] != tag {
        return Err(corrupt(format!(
            "bad section tag {:?}",
            &data[start..start + 4]
        )));
    }
    let mut lb = [0u8; 8];
    lb.copy_from_slice(&data[start + 4..start + 12]);
    let len = u64::from_le_bytes(lb);
    let len = usize::try_from(len)
        .ok()
        .filter(|&l| l <= data.len().saturating_sub(start + 16))
        .ok_or_else(|| corrupt(format!("impossible payload length {len}")))?;
    let payload_end = start + 12 + len;
    let mut cb = [0u8; 4];
    cb.copy_from_slice(&data[payload_end..payload_end + 4]);
    let stored = u32::from_le_bytes(cb);
    let computed = crc32(&data[start..payload_end]);
    if stored != computed {
        return Err(corrupt(format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    *pos = payload_end + 4;
    Ok(&data[start + 12..payload_end])
}

impl WalkSnapshot {
    /// Serializes into the framed format.
    pub fn encode(&self) -> Vec<u8> {
        let mut state = Writer::new();
        state.put_u32(FORMAT_VERSION);
        state.put_u64(self.seed);
        state.put_u64(self.iter_next);
        state.put_u64(self.steps_total);
        state.put_u64(self.walkers);
        state.put_u64(self.steps_taken);
        state.put_u64(self.config_tag);
        state.put_u64(self.graph_tag);
        state.put_u64_slice(&self.per_partition_steps);

        let mut walkers = Writer::new();
        walkers.put_u32_slice(&self.w);
        walkers.put_u32_slice(&self.prev);
        walkers.put_u64_slice(&self.visits);
        walkers.put_u64(self.ps.len() as u64);
        for part in &self.ps {
            match part {
                None => walkers.put_u8(0),
                Some(st) => {
                    walkers.put_u8(1);
                    walkers.put_u32_slice(&st.buf);
                    walkers.put_u32_slice(&st.cursor);
                }
            }
        }

        let mut output = Writer::new();
        output.put_u64(self.rows.len() as u64);
        for row in &self.rows {
            output.put_u32_slice(row);
        }

        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        frame(&mut out, TAG_STATE, &state.into_bytes());
        frame(&mut out, TAG_WALKERS, &walkers.into_bytes());
        frame(&mut out, TAG_OUTPUT, &output.into_bytes());
        if let Some(bb) = &self.biblock {
            let mut biblock = Writer::new();
            biblock.put_u64(bb.epoch);
            biblock.put_u64(bb.cursor);
            biblock.put_u64(bb.blocks);
            biblock.put_u32_slice(&bb.done);
            biblock.put_u64(bb.buckets.len() as u64);
            for bucket in &bb.buckets {
                biblock.put_u32_slice(bucket);
            }
            biblock.put_u64(bb.paths.len() as u64);
            for path in &bb.paths {
                biblock.put_u32_slice(path);
            }
            frame(&mut out, TAG_BIBLOCK, &biblock.into_bytes());
        }
        out
    }

    /// Decodes and fully validates a snapshot; `path` is used only for
    /// error context.  Every failure mode is [`RecoverError::Corrupt`].
    pub fn decode(data: &[u8], path: &Path) -> Result<Self, RecoverError> {
        let corrupt = |section: &str, detail: String| RecoverError::Corrupt {
            path: path.to_path_buf(),
            section: section.to_string(),
            detail,
        };
        if data.len() < SNAPSHOT_MAGIC.len() || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(corrupt("header", "bad snapshot magic".into()));
        }
        let mut pos = SNAPSHOT_MAGIC.len();
        let state = read_frame(data, &mut pos, TAG_STATE, "STATE", path)?;
        let walkers = read_frame(data, &mut pos, TAG_WALKERS, "WALKERS", path)?;
        let output = read_frame(data, &mut pos, TAG_OUTPUT, "OUTPUT", path)?;
        // The optional bi-block frame: any bytes past OUTP must form a
        // complete, CRC-valid BBLK frame (so stray trailing bytes still
        // fail, via the frame-header minimum or the tag/CRC checks).
        let biblock_bytes = if pos != data.len() {
            Some(read_frame(data, &mut pos, TAG_BIBLOCK, "BIBLOCK", path)?)
        } else {
            None
        };
        if pos != data.len() {
            return Err(corrupt(
                "trailer",
                format!("{} trailing bytes after last frame", data.len() - pos),
            ));
        }

        let mut r = Reader::new(state, "STATE", path);
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(corrupt(
                "STATE",
                format!("unsupported format version {version}"),
            ));
        }
        let seed = r.u64()?;
        let iter_next = r.u64()?;
        let steps_total = r.u64()?;
        let walker_count = r.u64()?;
        let steps_taken = r.u64()?;
        let config_tag = r.u64()?;
        let graph_tag = r.u64()?;
        let per_partition_steps = r.u64_vec()?;
        r.finish()?;

        let mut r = Reader::new(walkers, "WALKERS", path);
        let w = r.u32_vec()?;
        let prev = r.u32_vec()?;
        let visits = r.u64_vec()?;
        let ps_len = r.u64()?;
        if ps_len > walkers.len() as u64 {
            return Err(corrupt(
                "WALKERS",
                format!("impossible PS partition count {ps_len}"),
            ));
        }
        let mut ps = Vec::with_capacity(ps_len as usize);
        for _ in 0..ps_len {
            let present = r.u8()?;
            match present {
                0 => ps.push(None),
                1 => {
                    let buf = r.u32_vec()?;
                    let cursor = r.u32_vec()?;
                    ps.push(Some(PsPartState { buf, cursor }));
                }
                other => {
                    return Err(corrupt(
                        "WALKERS",
                        format!("bad PS presence byte {other}"),
                    ))
                }
            }
        }
        r.finish()?;

        let mut r = Reader::new(output, "OUTPUT", path);
        let row_count = r.u64()?;
        if row_count > output.len() as u64 {
            return Err(corrupt("OUTPUT", format!("impossible row count {row_count}")));
        }
        let mut rows = Vec::with_capacity(row_count as usize);
        for _ in 0..row_count {
            rows.push(r.u32_vec()?);
        }
        r.finish()?;

        let biblock = match biblock_bytes {
            None => None,
            Some(bytes) => {
                let mut r = Reader::new(bytes, "BIBLOCK", path);
                let epoch = r.u64()?;
                let cursor = r.u64()?;
                let blocks = r.u64()?;
                let done = r.u32_vec()?;
                let bucket_count = r.u64()?;
                if bucket_count > bytes.len() as u64 {
                    return Err(corrupt(
                        "BIBLOCK",
                        format!("impossible bucket count {bucket_count}"),
                    ));
                }
                let mut buckets = Vec::with_capacity(bucket_count as usize);
                for _ in 0..bucket_count {
                    buckets.push(r.u32_vec()?);
                }
                let path_count = r.u64()?;
                if path_count > bytes.len() as u64 {
                    return Err(corrupt(
                        "BIBLOCK",
                        format!("impossible path count {path_count}"),
                    ));
                }
                let mut paths = Vec::with_capacity(path_count as usize);
                for _ in 0..path_count {
                    paths.push(r.u32_vec()?);
                }
                r.finish()?;
                Some(BiBlockState {
                    epoch,
                    cursor,
                    blocks,
                    done,
                    buckets,
                    paths,
                })
            }
        };

        Ok(Self {
            seed,
            iter_next,
            steps_total,
            walkers: walker_count,
            steps_taken,
            config_tag,
            graph_tag,
            per_partition_steps,
            w,
            prev,
            visits,
            ps,
            rows,
            biblock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_rng::{Rng64, Xorshift64Star};

    fn sample_snapshot() -> WalkSnapshot {
        WalkSnapshot {
            seed: 42,
            iter_next: 4,
            steps_total: 8,
            walkers: 6,
            steps_taken: 24,
            config_tag: 0xDEAD_BEEF,
            graph_tag: 0xFEED_FACE,
            per_partition_steps: vec![10, 8, 6],
            w: vec![1, 2, 3, 4, 5, 6],
            prev: vec![6, 5, 4, 3, 2, 1],
            visits: vec![3, 3, 3, 3, 3, 3, 3, 3],
            ps: vec![
                Some(PsPartState {
                    buf: vec![9, 9, 9, 9],
                    cursor: vec![2, 0],
                }),
                None,
                Some(PsPartState {
                    buf: vec![7],
                    cursor: vec![1],
                }),
            ],
            rows: vec![vec![0, 1, 2, 3, 4, 5], vec![1, 2, 3, 4, 5, 0]],
            biblock: None,
        }
    }

    fn biblock_snapshot() -> WalkSnapshot {
        WalkSnapshot {
            biblock: Some(BiBlockState {
                epoch: 3,
                cursor: 5,
                blocks: 4,
                done: vec![2, 3, 3, 1, 2, 3],
                buckets: vec![
                    vec![0, 3],
                    Vec::new(),
                    vec![4],
                    Vec::new(),
                    vec![1, 2, 5],
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                ],
                paths: vec![
                    vec![1, 2, 3],
                    vec![2, 3, 4, 5],
                    vec![3, 4, 5, 0],
                    vec![4, 5],
                    vec![5, 0, 1],
                    vec![0, 1, 2, 3],
                ],
            }),
            ..sample_snapshot()
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back =
            WalkSnapshot::decode(&bytes, Path::new("test.fmck")).expect("round trip decodes");
        assert_eq!(snap, back);
    }

    #[test]
    fn biblock_snapshot_round_trips() {
        let snap = biblock_snapshot();
        let bytes = snap.encode();
        let back =
            WalkSnapshot::decode(&bytes, Path::new("bb.fmck")).expect("round trip decodes");
        assert_eq!(snap, back);
        // The frame is strictly optional: a frame-free snapshot must
        // decode to `biblock: None`, not an empty default.
        let plain = sample_snapshot().encode();
        let back = WalkSnapshot::decode(&plain, Path::new("p.fmck")).expect("decodes");
        assert_eq!(back.biblock, None);
    }

    /// The corruption sweep extended over the optional fourth frame:
    /// every single-byte flip of a BBLK-bearing snapshot must surface
    /// as `Corrupt`, and truncating or extending the frame must too.
    #[test]
    fn biblock_frame_corruption_is_detected() {
        let bytes = biblock_snapshot().encode();
        let mut rng = Xorshift64Star::new(0xB1B);
        for trial in 0..600 {
            let i = rng.gen_index(bytes.len());
            let bit = rng.gen_index(8) as u8;
            let mut m = bytes.clone();
            m[i] ^= 1 << bit;
            match WalkSnapshot::decode(&m, Path::new("bb.fmck")) {
                Err(RecoverError::Corrupt { .. }) => {}
                other => panic!(
                    "trial {trial}: flip byte {i} bit {bit} gave {other:?} instead of Corrupt"
                ),
            }
        }
        for cut in [bytes.len() - 1, bytes.len() - 5, bytes.len() - 17] {
            assert!(matches!(
                WalkSnapshot::decode(&bytes[..cut], Path::new("bb.fmck")),
                Err(RecoverError::Corrupt { .. })
            ));
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            WalkSnapshot::decode(&extended, Path::new("bb.fmck")),
            Err(RecoverError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = WalkSnapshot::default();
        let bytes = snap.encode();
        let back = WalkSnapshot::decode(&bytes, Path::new("e.fmck")).expect("decodes");
        assert_eq!(snap, back);
    }

    /// The tentpole corruption property: flipping any single byte of an
    /// encoded snapshot always yields `RecoverError::Corrupt` — never a
    /// panic, never silently-wrong data.  Random byte+bit choices sweep
    /// all three sections (the file is only a few hundred bytes, so 600
    /// seeded trials cover every region many times over); an exhaustive
    /// every-byte sweep of bit 0 backs it up.
    #[test]
    fn any_single_byte_corruption_is_detected() {
        let bytes = sample_snapshot().encode();
        let mut rng = Xorshift64Star::new(0x5EED);
        for trial in 0..600 {
            let i = rng.gen_index(bytes.len());
            let bit = rng.gen_index(8) as u8;
            let mut m = bytes.clone();
            m[i] ^= 1 << bit;
            match WalkSnapshot::decode(&m, Path::new("x.fmck")) {
                Err(RecoverError::Corrupt { .. }) => {}
                other => panic!(
                    "trial {trial}: flip byte {i} bit {bit} gave {other:?} instead of Corrupt"
                ),
            }
        }
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 1;
            assert!(
                matches!(
                    WalkSnapshot::decode(&m, Path::new("x.fmck")),
                    Err(RecoverError::Corrupt { .. })
                ),
                "exhaustive sweep: flip at byte {i} not detected"
            );
        }
    }

    #[test]
    fn truncation_and_extension_are_detected() {
        let bytes = sample_snapshot().encode();
        for cut in [0, 1, 7, 8, 20, bytes.len() - 1] {
            assert!(matches!(
                WalkSnapshot::decode(&bytes[..cut], Path::new("t.fmck")),
                Err(RecoverError::Corrupt { .. })
            ));
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            WalkSnapshot::decode(&extended, Path::new("t.fmck")),
            Err(RecoverError::Corrupt { .. })
        ));
    }
}
