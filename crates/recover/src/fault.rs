//! Deterministic fault injection for file IO.
//!
//! [`FaultyFile`] wraps any `Read + Seek (+ Write)` object and injects
//! seeded, reproducible faults: transient errors (retryable), short
//! reads, and torn writes (a prefix persists, then the write fails
//! permanently — the model of a crash mid-write).  The same seed always
//! produces the same fault sequence, so every test that exercises the
//! retry and atomicity machinery is bit-reproducible.

use std::io::{self, Read, Seek, SeekFrom, Write};

use fm_rng::{Rng64, Xorshift64Star};

/// Probabilities (per IO call) of each injected fault class.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPolicy {
    /// RNG seed for the fault stream.
    pub seed: u64,
    /// Probability an op fails with a transient (retryable) error.
    pub transient_rate: f64,
    /// Probability a read returns only half the requested bytes.
    pub short_read_rate: f64,
    /// Probability a write persists a prefix and then fails permanently.
    pub torn_write_rate: f64,
}

impl FaultPolicy {
    /// Only transient errors, at `rate` per op.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            transient_rate: rate,
            ..Self::default()
        }
    }

    /// Only torn writes, at `rate` per op.
    pub fn torn_writes(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            torn_write_rate: rate,
            ..Self::default()
        }
    }
}

/// Counts of faults injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient errors injected.
    pub transient: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
}

/// The live fault stream: policy + seeded RNG + counters.
#[derive(Debug)]
pub struct FaultState {
    policy: FaultPolicy,
    rng: Xorshift64Star,
    /// Faults injected so far.
    pub counts: FaultCounts,
}

impl FaultState {
    pub fn new(policy: FaultPolicy) -> Self {
        Self {
            policy,
            rng: Xorshift64Star::new(policy.seed),
            counts: FaultCounts::default(),
        }
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.next_f64() < rate
    }

    /// The transient error injected by this layer.  `WouldBlock` is
    /// deliberate: `Read::read_exact` silently retries `Interrupted`,
    /// which would hide the fault from the retry layer under test.
    fn transient_error(context: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("injected transient {context} error"),
        )
    }

    /// One faulted bulk write against `w`: rolls the fault dice once,
    /// then either fails transiently, tears the write (persists half,
    /// fails permanently), or writes everything.  Used by the checkpoint
    /// sink, whose fault stream must span retry attempts.
    pub fn faulted_write_all<W: Write>(&mut self, w: &mut W, buf: &[u8]) -> io::Result<()> {
        if self.roll(self.policy.transient_rate) {
            self.counts.transient += 1;
            return Err(Self::transient_error("write"));
        }
        if buf.len() > 1 && self.roll(self.policy.torn_write_rate) {
            self.counts.torn_writes += 1;
            w.write_all(&buf[..buf.len() / 2])?;
            return Err(io::Error::other("injected torn write"));
        }
        w.write_all(buf)
    }
}

/// A `Read + Seek + Write` wrapper that injects faults per
/// [`FaultPolicy`].  With no policy it is a zero-cost pass-through, so
/// engines can hold one unconditionally.
#[derive(Debug)]
pub struct FaultyFile<F> {
    inner: F,
    state: Option<FaultState>,
}

impl<F> FaultyFile<F> {
    /// No faults: plain delegation to `inner`.
    pub fn passthrough(inner: F) -> Self {
        Self { inner, state: None }
    }

    /// Injects faults per `policy`.
    pub fn with_policy(inner: F, policy: FaultPolicy) -> Self {
        Self {
            inner,
            state: Some(FaultState::new(policy)),
        }
    }

    /// Faults injected so far (zeros for a pass-through).
    pub fn counts(&self) -> FaultCounts {
        self.state.as_ref().map(|s| s.counts).unwrap_or_default()
    }

    /// The wrapped object.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: Read> Read for FaultyFile<F> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(st) = self.state.as_mut() {
            if st.roll(st.policy.transient_rate) {
                st.counts.transient += 1;
                return Err(FaultState::transient_error("read"));
            }
            if buf.len() > 1 && st.roll(st.policy.short_read_rate) {
                st.counts.short_reads += 1;
                let half = buf.len() / 2;
                return self.inner.read(&mut buf[..half]);
            }
        }
        self.inner.read(buf)
    }
}

impl<F: Seek> Seek for FaultyFile<F> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl<F: Write> Write for FaultyFile<F> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(st) = self.state.as_mut() {
            if st.roll(st.policy.transient_rate) {
                st.counts.transient += 1;
                return Err(FaultState::transient_error("write"));
            }
            if buf.len() > 1 && st.roll(st.policy.torn_write_rate) {
                st.counts.torn_writes += 1;
                // Persist a prefix, then fail permanently: the on-disk
                // model of a crash mid-write.
                self.inner.write_all(&buf[..buf.len() / 2])?;
                return Err(io::Error::other("injected torn write"));
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn passthrough_reads_exactly() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut f = FaultyFile::passthrough(Cursor::new(data.clone()));
        let mut out = vec![0u8; 64];
        f.read_exact(&mut out).expect("clean read");
        assert_eq!(out, data);
        assert_eq!(f.counts(), FaultCounts::default());
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let data = vec![7u8; 4096];
        let policy = FaultPolicy {
            seed: 99,
            transient_rate: 0.3,
            short_read_rate: 0.3,
            torn_write_rate: 0.0,
        };
        let run = || {
            let mut f = FaultyFile::with_policy(Cursor::new(data.clone()), policy);
            let mut log = Vec::new();
            for _ in 0..200 {
                let mut buf = [0u8; 16];
                f.seek(SeekFrom::Start(0)).expect("seek");
                log.push(match f.read(&mut buf) {
                    Ok(n) => n as i64,
                    Err(_) => -1,
                });
            }
            (log, f.counts())
        };
        let (la, ca) = run();
        let (lb, cb) = run();
        assert_eq!(la, lb);
        assert_eq!(ca, cb);
        assert!(ca.transient > 0 && ca.short_reads > 0);
    }

    #[test]
    fn short_reads_are_absorbed_by_read_exact() {
        let data: Vec<u8> = (0..255u8).collect();
        let policy = FaultPolicy {
            seed: 5,
            transient_rate: 0.0,
            short_read_rate: 0.5,
            torn_write_rate: 0.0,
        };
        let mut f = FaultyFile::with_policy(Cursor::new(data.clone()), policy);
        let mut out = vec![0u8; 255];
        f.read_exact(&mut out).expect("read_exact loops over short reads");
        assert_eq!(out, data);
        assert!(f.counts().short_reads > 0);
    }

    #[test]
    fn torn_write_persists_prefix_then_fails() {
        let policy = FaultPolicy::torn_writes(3, 1.0);
        let mut f = FaultyFile::with_policy(Cursor::new(Vec::new()), policy);
        let err = f.write_all(&[1u8; 100]).expect_err("torn write fails");
        assert!(!matches!(err.kind(), io::ErrorKind::WouldBlock));
        assert_eq!(f.counts().torn_writes, 1);
        assert_eq!(f.into_inner().into_inner(), vec![1u8; 50]);
    }
}
