//! Bounded retry with exponential backoff for transient IO failures.

use std::io;
use std::time::Duration;

/// How transient failures are retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts (first try included).  1 disables retrying.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, capped at
    /// `max_delay`.  `Duration::ZERO` disables sleeping (tests).
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for tests and fault harnesses.
    pub fn immediate(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        exp.min(self.max_delay)
    }
}

/// The transient IO error classes: failures that a retry can plausibly
/// clear.  Everything else (including `UnexpectedEof`, which on a real
/// file means truncation, not a hiccup) escalates immediately.
pub fn transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Runs `op` until it succeeds, a permanent error occurs, or
/// `policy.max_attempts` is exhausted.  Each transient retry increments
/// `retries` (the engines surface this through telemetry) and sleeps the
/// exponential backoff.
pub fn with_retries<T, E>(
    policy: &RetryPolicy,
    retries: &mut u64,
    is_transient: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt + 1 < policy.max_attempts.max(1) => {
                *retries += 1;
                let delay = policy.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_errors_are_retried_until_success() {
        let mut remaining_failures = 3;
        let mut retries = 0u64;
        let out = with_retries(
            &RetryPolicy::immediate(8),
            &mut retries,
            transient_io,
            || {
                if remaining_failures > 0 {
                    remaining_failures -= 1;
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "transient"))
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out.expect("eventually succeeds"), 42);
        assert_eq!(retries, 3);
    }

    #[test]
    fn permanent_errors_escalate_immediately() {
        let mut calls = 0;
        let mut retries = 0u64;
        let out: Result<(), io::Error> = with_retries(
            &RetryPolicy::immediate(8),
            &mut retries,
            transient_io,
            || {
                calls += 1;
                Err(io::Error::other("permanent"))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn attempts_are_bounded() {
        let mut calls = 0u32;
        let mut retries = 0u64;
        let out: Result<(), io::Error> = with_retries(
            &RetryPolicy::immediate(4),
            &mut retries,
            transient_io,
            || {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::TimedOut, "still transient"))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 4);
        assert_eq!(retries, 3);
    }

    #[test]
    fn unexpected_eof_is_permanent() {
        assert!(!transient_io(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated"
        )));
    }
}
