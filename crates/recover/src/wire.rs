//! Bounded little-endian encode/decode helpers.
//!
//! Every read is bounds-checked and surfaces [`RecoverError::Corrupt`]
//! instead of panicking; vector lengths are validated against the bytes
//! actually remaining *before* any allocation, so a corrupt length field
//! can never trigger an over-allocation.

use std::path::{Path, PathBuf};

use crate::error::RecoverError;

/// Append-only little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        let start = self.buf.len();
        self.buf.resize(start + vs.len() * 4, 0);
        for (dst, &v) in self.buf[start..].chunks_exact_mut(4).zip(vs) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        let start = self.buf.len();
        self.buf.resize(start + vs.len() * 8, 0);
        for (dst, &v) in self.buf[start..].chunks_exact_mut(8).zip(vs) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
    }

    pub fn put_bytes(&mut self, bs: &[u8]) {
        self.put_u64(bs.len() as u64);
        self.buf.extend_from_slice(bs);
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over one decoded section.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Section name used in `Corrupt` errors.
    section: &'static str,
    /// File the bytes came from, for error context.
    path: PathBuf,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8], section: &'static str, path: &Path) -> Self {
        Self {
            data,
            pos: 0,
            section,
            path: path.to_path_buf(),
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> RecoverError {
        RecoverError::Corrupt {
            path: self.path.clone(),
            section: self.section.to_string(),
            detail: detail.into(),
        }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoverError> {
        if n > self.remaining() {
            return Err(self.corrupt(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, RecoverError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, RecoverError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    pub fn u64(&mut self) -> Result<u64, RecoverError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `u64` length prefix and validates that `len * elem_size`
    /// bytes remain before returning the element count.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, RecoverError> {
        let len = self.u64()?;
        let count = usize::try_from(len)
            .map_err(|_| self.corrupt(format!("impossible length field {len}")))?;
        let need = count
            .checked_mul(elem_size)
            .ok_or_else(|| self.corrupt(format!("impossible length field {len}")))?;
        if need > self.remaining() {
            return Err(self.corrupt(format!(
                "length field {len} needs {need} bytes, only {} remain",
                self.remaining()
            )));
        }
        Ok(count)
    }

    pub fn u32_vec(&mut self) -> Result<Vec<u32>, RecoverError> {
        let len = self.checked_len(4)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
            .collect())
    }

    pub fn u64_vec(&mut self) -> Result<Vec<u64>, RecoverError> {
        let len = self.checked_len(8)?;
        let bytes = self.take(len * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
            .collect())
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], RecoverError> {
        let len = self.checked_len(1)?;
        self.take(len)
    }

    /// Fails unless every byte of the section was consumed.
    pub fn finish(self) -> Result<(), RecoverError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}
