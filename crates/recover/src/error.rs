//! The typed error surface of the recovery subsystem.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while checkpointing or resuming.
///
/// The variants partition failures by what the caller should do next:
/// retry/repair the storage ([`RecoverError::Io`]), discard the snapshot
/// ([`RecoverError::Corrupt`]), fix the resume invocation
/// ([`RecoverError::Mismatch`]), or start fresh
/// ([`RecoverError::NoSnapshot`]).
#[derive(Debug)]
pub enum RecoverError {
    /// Underlying IO failed, after transient classes were already
    /// retried with backoff.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// What the operation was doing (e.g. `"write snapshot"`).
        context: &'static str,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A snapshot or manifest failed structural validation: bad magic,
    /// CRC mismatch, truncated or oversized length field, trailing
    /// bytes, or a manifest/snapshot generation mismatch.
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// Which framed section (or `"header"`/`"manifest"`) failed.
        section: String,
        /// What exactly was wrong.
        detail: String,
    },
    /// A structurally valid snapshot does not belong to the engine or
    /// graph attempting to resume from it.
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The checkpoint directory holds no snapshot at all.
    NoSnapshot {
        /// The directory that was searched.
        dir: PathBuf,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io {
                path,
                context,
                source,
            } => {
                write!(f, "io error ({context}) at {}: {source}", path.display())
            }
            RecoverError::Corrupt {
                path,
                section,
                detail,
            } => write!(
                f,
                "corrupt snapshot {} (section {section}): {detail}",
                path.display()
            ),
            RecoverError::Mismatch { detail } => {
                write!(f, "snapshot does not match this run: {detail}")
            }
            RecoverError::NoSnapshot { dir } => {
                write!(f, "no snapshot found in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl RecoverError {
    /// True for [`RecoverError::Corrupt`] — the CLI maps this to its own
    /// exit code so operators can distinguish "disk broken" from
    /// "snapshot broken".
    pub fn is_corrupt(&self) -> bool {
        matches!(self, RecoverError::Corrupt { .. })
    }
}
