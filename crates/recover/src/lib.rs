//! Crash-safe checkpoint/resume for long random walks, plus a
//! deterministic fault-injection IO layer.
//!
//! The paper's target workloads walk huge graphs for billions of steps —
//! exactly the runs where a crash at hour N throws everything away.  The
//! step-centric layout makes durability cheap: all walker state lives in
//! compact arrays (ThunderRW makes the same observation), so an epoch
//! boundary snapshot is a handful of `memcpy`s plus one sequential write.
//!
//! The subsystem has three parts:
//!
//! * [`snapshot::WalkSnapshot`] — an engine-agnostic snapshot of the
//!   walker arrays, pre-sample buffers, and output cursor, serialized in
//!   a CRC32-guarded framed binary format.  Any single flipped byte is
//!   detected and reported as [`RecoverError::Corrupt`].
//! * [`manifest::CheckpointSink`] / [`manifest::load_latest`] — atomic
//!   write-to-temp → fsync → rename publication with a generation-stamped
//!   manifest that detects torn, partial, or mixed-generation snapshots.
//! * [`fault::FaultyFile`] and [`retry::with_retries`] — a seeded,
//!   reproducible fault-injection shim (transient errors, short reads,
//!   torn writes) and the bounded-retry/exponential-backoff loop that
//!   engines thread around disk reads and checkpoint writes.
//!
//! RNG streams never need snapshotting: every engine derives per-
//! `(iteration, partition)` streams from a pure function of the seed, so
//! a resume at iteration `k` replays the exact chain of an uninterrupted
//! run — the conformance crash matrix proves bit-identity against the
//! golden digests.

pub mod crc;
pub mod error;
pub mod fault;
pub mod manifest;
pub mod retry;
pub mod snapshot;
mod wire;

pub use crc::crc32;
pub use error::RecoverError;
pub use fault::{FaultCounts, FaultPolicy, FaultState, FaultyFile};
pub use manifest::{load_latest, CheckpointSink, Manifest, MANIFEST_NAME};
pub use retry::{transient_io, with_retries, RetryPolicy};
pub use crc::fnv64;
pub use snapshot::{BiBlockState, CheckpointSpec, Fingerprint, PsPartState, WalkSnapshot};
