//! Atomic snapshot publication and the generation manifest.
//!
//! Atomicity argument: a snapshot is written to `<name>.tmp`, fsynced,
//! then renamed to its final name; the manifest (which names the current
//! generation, its byte length, and its whole-file CRC) is published the
//! same way afterwards.  POSIX `rename` is atomic, so at every instant
//! the directory contains a manifest that either predates the new
//! snapshot (and still points at the previous, intact generation) or
//! postdates it (and points at the fully-written new one).  A crash
//! between the two renames leaves a valid old manifest plus an orphaned
//! new snapshot — harmless.  A crash mid-write leaves only a `.tmp`
//! file, which the loader never looks at.  Torn or mixed-generation
//! states (manifest says N, file bytes are not exactly generation N) are
//! caught by the manifest's length + CRC check.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::{crc32, fnv64};
use crate::error::RecoverError;
use crate::fault::{FaultCounts, FaultPolicy, FaultState};
use crate::retry::{transient_io, with_retries, RetryPolicy};
use crate::snapshot::{CheckpointSpec, WalkSnapshot};
use crate::wire::{Reader, Writer};

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 8] = b"FMMANIF\0";
const MANIFEST_VERSION: u32 = 1;

/// Points at the current snapshot generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonically increasing checkpoint generation.
    pub generation: u64,
    /// Snapshot file name (relative to the checkpoint directory).
    pub snapshot_file: String,
    /// Exact byte length of the snapshot file.
    pub snapshot_len: u64,
    /// FNV-1a 64 fingerprint of the entire snapshot file (see
    /// [`fnv64`] for why this is not a CRC).
    pub snapshot_fnv: u64,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MANIFEST_VERSION);
        w.put_u64(self.generation);
        w.put_bytes(self.snapshot_file.as_bytes());
        w.put_u64(self.snapshot_len);
        w.put_u64(self.snapshot_fnv);
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 16);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out[MANIFEST_MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(data: &[u8], path: &Path) -> Result<Self, RecoverError> {
        let corrupt = |detail: String| RecoverError::Corrupt {
            path: path.to_path_buf(),
            section: "manifest".to_string(),
            detail,
        };
        let m = MANIFEST_MAGIC.len();
        if data.len() < m + 12 || &data[..m] != MANIFEST_MAGIC {
            return Err(corrupt("bad manifest magic or truncated file".into()));
        }
        let mut lb = [0u8; 8];
        lb.copy_from_slice(&data[m..m + 8]);
        let len = u64::from_le_bytes(lb);
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l == data.len().saturating_sub(m + 12))
            .ok_or_else(|| corrupt(format!("impossible manifest length {len}")))?;
        let payload_end = m + 8 + len;
        let mut cb = [0u8; 4];
        cb.copy_from_slice(&data[payload_end..payload_end + 4]);
        let stored = u32::from_le_bytes(cb);
        let computed = crc32(&data[m..payload_end]);
        if stored != computed {
            return Err(corrupt(format!(
                "manifest crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        let mut r = Reader::new(&data[m + 8..payload_end], "manifest", path);
        let version = r.u32()?;
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!("unsupported manifest version {version}")));
        }
        let generation = r.u64()?;
        let name_bytes = r.bytes()?.to_vec();
        let snapshot_file = String::from_utf8(name_bytes)
            .map_err(|_| corrupt("snapshot file name is not UTF-8".into()))?;
        if snapshot_file.is_empty()
            || snapshot_file
                .chars()
                .any(|c| c == '/' || c == '\\' || c == '\0')
        {
            return Err(corrupt(format!(
                "snapshot file name {snapshot_file:?} escapes the checkpoint directory"
            )));
        }
        let snapshot_len = r.u64()?;
        let snapshot_fnv = r.u64()?;
        r.finish()?;
        Ok(Self {
            generation,
            snapshot_file,
            snapshot_len,
            snapshot_fnv,
        })
    }
}

/// Writes generation-stamped snapshots atomically, threading checkpoint
/// IO through the fault-injection shim and the transient-retry loop.
#[derive(Debug)]
pub struct CheckpointSink {
    dir: PathBuf,
    fault: Option<FaultState>,
    retry: RetryPolicy,
    /// Transient retries performed across all checkpoint writes.
    pub retries: u64,
}

impl CheckpointSink {
    /// Builds the sink described by `spec` (fault policy and retry
    /// policy included; `every`/`halt_after` are the engine's concern).
    pub fn from_spec(spec: &CheckpointSpec) -> Self {
        Self::new(&spec.dir, spec.fault, spec.retry)
    }

    pub fn new(dir: &Path, fault: Option<FaultPolicy>, retry: RetryPolicy) -> Self {
        Self {
            dir: dir.to_path_buf(),
            fault: fault.map(FaultState::new),
            retry,
            retries: 0,
        }
    }

    /// Faults injected into checkpoint IO so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault.as_ref().map(|s| s.counts).unwrap_or_default()
    }

    /// Snapshot file name of generation `generation`.
    pub fn snapshot_name(generation: u64) -> String {
        format!("ckpt-{generation:08}.fmck")
    }

    /// Atomically publishes `snap` as generation `generation`: snapshot
    /// first (temp → fsync → rename), manifest second.
    pub fn save(&mut self, generation: u64, snap: &WalkSnapshot) -> Result<(), RecoverError> {
        fs::create_dir_all(&self.dir).map_err(|e| RecoverError::Io {
            path: self.dir.clone(),
            context: "create checkpoint dir",
            source: e,
        })?;
        let bytes = snap.encode();
        let name = Self::snapshot_name(generation);
        self.write_atomic(&name, &bytes, "write snapshot")?;
        let manifest = Manifest {
            generation,
            snapshot_file: name,
            snapshot_len: bytes.len() as u64,
            snapshot_fnv: fnv64(&bytes),
        };
        self.write_atomic(MANIFEST_NAME, &manifest.encode(), "write manifest")
    }

    fn write_atomic(
        &mut self,
        name: &str,
        bytes: &[u8],
        context: &'static str,
    ) -> Result<(), RecoverError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        let fault = &mut self.fault;
        // Each retry attempt restarts the write on a fresh temp file;
        // the fault stream continues across attempts, so a transient
        // fault on attempt N does not repeat deterministically forever.
        with_retries(&self.retry, &mut self.retries, transient_io, || {
            let mut f = File::create(&tmp)?;
            match fault.as_mut() {
                Some(state) => state.faulted_write_all(&mut f, bytes)?,
                None => f.write_all(bytes)?,
            }
            f.sync_all()
        })
        .map_err(|e| RecoverError::Io {
            path: tmp.clone(),
            context,
            source: e,
        })?;
        fs::rename(&tmp, &fin).map_err(|e| RecoverError::Io {
            path: fin.clone(),
            context: "publish (rename)",
            source: e,
        })?;
        // Make the rename itself durable.  Opening a directory for fsync
        // is POSIX-only; skip silently where unsupported.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// Loads the current generation from `dir`, fully validating manifest
/// and snapshot.  Returns the generation number and the snapshot.
pub fn load_latest(dir: &Path) -> Result<(u64, WalkSnapshot), RecoverError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let manifest_bytes = match fs::read(&manifest_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(RecoverError::NoSnapshot {
                dir: dir.to_path_buf(),
            })
        }
        Err(e) => {
            return Err(RecoverError::Io {
                path: manifest_path,
                context: "read manifest",
                source: e,
            })
        }
    };
    let manifest = Manifest::decode(&manifest_bytes, &manifest_path)?;
    let snap_path = dir.join(&manifest.snapshot_file);
    let snap_bytes = match fs::read(&snap_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(RecoverError::Corrupt {
                path: snap_path,
                section: "manifest".to_string(),
                detail: format!(
                    "manifest generation {} references a missing snapshot (torn checkpoint)",
                    manifest.generation
                ),
            })
        }
        Err(e) => {
            return Err(RecoverError::Io {
                path: snap_path,
                context: "read snapshot",
                source: e,
            })
        }
    };
    if snap_bytes.len() as u64 != manifest.snapshot_len
        || fnv64(&snap_bytes) != manifest.snapshot_fnv
    {
        return Err(RecoverError::Corrupt {
            path: snap_path,
            section: "manifest".to_string(),
            detail: format!(
                "snapshot does not match manifest generation {} (torn write or mixed generations)",
                manifest.generation
            ),
        });
    }
    let snap = WalkSnapshot::decode(&snap_bytes, &snap_path)?;
    Ok((manifest.generation, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::PsPartState;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(name: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "fm_recover_{name}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn snap(iter_next: u64) -> WalkSnapshot {
        WalkSnapshot {
            seed: 7,
            iter_next,
            steps_total: 16,
            walkers: 4,
            steps_taken: iter_next * 4,
            config_tag: 1,
            graph_tag: 2,
            per_partition_steps: vec![iter_next * 2, iter_next * 2],
            w: vec![1, 2, 3, 4],
            prev: Vec::new(),
            visits: Vec::new(),
            ps: vec![
                Some(PsPartState {
                    buf: vec![1, 1],
                    cursor: vec![1, 0],
                }),
                None,
            ],
            rows: vec![vec![0, 0, 0, 0]],
            biblock: None,
        }
    }

    #[test]
    fn save_load_round_trip_latest_generation_wins() {
        let dir = temp_dir("roundtrip");
        let mut sink = CheckpointSink::new(&dir, None, RetryPolicy::immediate(1));
        sink.save(1, &snap(4)).expect("save gen 1");
        sink.save(2, &snap(8)).expect("save gen 2");
        let (generation, loaded) = load_latest(&dir).expect("load latest");
        assert_eq!(generation, 2);
        assert_eq!(loaded, snap(8));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_reports_no_snapshot() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(
            load_latest(&dir),
            Err(RecoverError::NoSnapshot { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_is_detected_by_manifest() {
        let dir = temp_dir("torn");
        let mut sink = CheckpointSink::new(&dir, None, RetryPolicy::immediate(1));
        sink.save(1, &snap(4)).expect("save");
        // Simulate a torn write of the published snapshot: truncate it.
        let file = dir.join(CheckpointSink::snapshot_name(1));
        let bytes = fs::read(&file).expect("read back");
        fs::write(&file, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(
            load_latest(&dir),
            Err(RecoverError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_generation_is_detected() {
        let dir = temp_dir("mixed");
        let mut sink = CheckpointSink::new(&dir, None, RetryPolicy::immediate(1));
        sink.save(1, &snap(4)).expect("save gen 1");
        sink.save(2, &snap(8)).expect("save gen 2");
        // Overwrite generation 2's file with generation 1's bytes while
        // the manifest still claims generation 2: CRC must catch it.
        let g1 = fs::read(dir.join(CheckpointSink::snapshot_name(1))).expect("g1");
        fs::write(dir.join(CheckpointSink::snapshot_name(2)), g1).expect("swap");
        assert!(matches!(
            load_latest(&dir),
            Err(RecoverError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_write_faults_are_retried_to_success() {
        let dir = temp_dir("transient");
        let mut sink = CheckpointSink::new(
            &dir,
            Some(FaultPolicy::transient(11, 0.4)),
            RetryPolicy::immediate(10),
        );
        for generation in 1..=5 {
            sink.save(generation, &snap(generation * 2))
                .expect("save survives transient faults");
        }
        assert!(sink.retries > 0, "faults at 40% must have caused retries");
        let (generation, loaded) = load_latest(&dir).expect("load");
        assert_eq!(generation, 5);
        assert_eq!(loaded, snap(10));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_fails_but_previous_generation_survives() {
        let dir = temp_dir("torn_write");
        let mut sink = CheckpointSink::new(&dir, None, RetryPolicy::immediate(1));
        sink.save(1, &snap(4)).expect("save gen 1");
        let mut torn_sink = CheckpointSink::new(
            &dir,
            Some(FaultPolicy::torn_writes(13, 1.0)),
            RetryPolicy::immediate(3),
        );
        let err = torn_sink.save(2, &snap(8)).expect_err("torn write escalates");
        assert!(matches!(err, RecoverError::Io { .. }));
        // The previous generation is untouched and still loads.
        let (generation, loaded) = load_latest(&dir).expect("old generation intact");
        assert_eq!(generation, 1);
        assert_eq!(loaded, snap(4));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_detected() {
        let dir = temp_dir("badmanifest");
        let mut sink = CheckpointSink::new(&dir, None, RetryPolicy::immediate(1));
        sink.save(3, &snap(6)).expect("save");
        let mpath = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&mpath).expect("manifest bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&mpath, bytes).expect("corrupt manifest");
        assert!(matches!(
            load_latest(&dir),
            Err(RecoverError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
