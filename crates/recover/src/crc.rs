//! CRC32 (IEEE 802.3 polynomial, reflected) — the frame guard of the
//! snapshot format.  Slicing-by-8 with tables generated at compile
//! time; no dependencies.  Checkpoints CRC every snapshot byte on the
//! walk's critical path, so the per-byte cost here bounds checkpoint
//! overhead directly.

/// Applies eight LFSR steps (one input byte's worth of shifting) to the
/// full CRC register.  For a byte value `b < 256` this *is* the classic
/// table entry `t0[b]`; for a full register it equals
/// `(x >> 8) ^ t0[x & 0xFF]`, which is how the higher slicing tables are
/// usually composed — computing them directly keeps this file free of
/// `as` casts (the fm-audit `narrowing-cast` lint), with no change to
/// any table value.
const fn bits8(mut c: u32) -> u32 {
    let mut k = 0;
    while k < 8 {
        c = if c & 1 != 0 {
            0xEDB8_8320 ^ (c >> 1)
        } else {
            c >> 1
        };
        k += 1;
    }
    c
}

const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    // Byte value mirrored into u32 in lockstep with the index, so the
    // loop needs no usize -> u32 cast.
    let mut b: u32 = 0;
    while i < 256 {
        t[0][i] = bits8(b);
        let mut j = 1;
        while j < 8 {
            t[j][i] = bits8(t[j - 1][i]);
            j += 1;
        }
        i += 1;
        b += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in chunks.by_ref() {
        // Slicing-by-8: XOR the register into the first four message
        // bytes, then index each table by one byte.  Byte extraction
        // goes through `to_le_bytes` + `usize::from` — cast-free and
        // bit-identical to the usual shift-and-mask formulation.
        let r = c.to_le_bytes();
        c = TABLES[7][usize::from(ch[0] ^ r[0])]
            ^ TABLES[6][usize::from(ch[1] ^ r[1])]
            ^ TABLES[5][usize::from(ch[2] ^ r[2])]
            ^ TABLES[4][usize::from(ch[3] ^ r[3])]
            ^ TABLES[3][usize::from(ch[4])]
            ^ TABLES[2][usize::from(ch[5])]
            ^ TABLES[1][usize::from(ch[6])]
            ^ TABLES[0][usize::from(ch[7])];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][usize::from(c.to_le_bytes()[0] ^ b)] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `data`.
///
/// The manifest fingerprints whole snapshot files with FNV, not CRC32:
/// CRC has the residue property (a message followed by its own CRC
/// contributes a *constant* to any enclosing CRC), so a whole-file CRC32
/// over our framed format — where every frame already embeds its CRC —
/// collapses to the same value for any two valid snapshots of equal
/// section lengths and cannot tell generations apart.  FNV has no such
/// linear structure.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[i] ^= 1 << bit;
                assert_ne!(crc32(&m), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
