//! CRC32 (IEEE 802.3 polynomial, reflected) — the frame guard of the
//! snapshot format.  Slicing-by-8 with tables generated at compile
//! time; no dependencies.  Checkpoints CRC every snapshot byte on the
//! walk's critical path, so the per-byte cost here bounds checkpoint
//! overhead directly.

const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in chunks.by_ref() {
        let x = u64::from_le_bytes(ch.try_into().expect("chunk is 8 bytes")) ^ c as u64;
        let lo = x as u32;
        let hi = (x >> 32) as u32;
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `data`.
///
/// The manifest fingerprints whole snapshot files with FNV, not CRC32:
/// CRC has the residue property (a message followed by its own CRC
/// contributes a *constant* to any enclosing CRC), so a whole-file CRC32
/// over our framed format — where every frame already embeds its CRC —
/// collapses to the same value for any two valid snapshots of equal
/// section lengths and cannot tell generations apart.  FNV has no such
/// linear structure.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[i] ^= 1 << bit;
                assert_ne!(crc32(&m), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
