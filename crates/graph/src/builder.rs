//! Incremental edge-list accumulation.

use crate::csr::Csr;
use crate::{GraphError, VertexId};

/// Accumulates edges and produces a validated [`Csr`].
///
/// The builder grows the vertex set automatically to cover every endpoint
/// it sees, and offers the clean-up passes graph datasets commonly need:
/// symmetrization (the paper's social graphs are used undirected),
/// deduplication, self-loop removal, and zero-degree-vertex removal
/// (Table 4: "0-degree vertices removed").
///
/// # Examples
///
/// ```
/// use fm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.symmetric(true).build().unwrap();
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 4); // both directions
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    max_vid: Option<VertexId>,
    symmetric: bool,
    dedup: bool,
    drop_self_loops: bool,
    compact: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a directed edge `s -> t`.
    pub fn add_edge(&mut self, s: VertexId, t: VertexId) -> &mut Self {
        self.edges.push((s, t));
        let m = s.max(t);
        self.max_vid = Some(self.max_vid.map_or(m, |cur| cur.max(m)));
        self
    }

    /// Adds many directed edges.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        edges: I,
    ) -> &mut Self {
        for (s, t) in edges {
            self.add_edge(s, t);
        }
        self
    }

    /// Number of edges currently accumulated (before clean-up passes).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Mirror every edge so the graph becomes undirected.
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// Remove duplicate edges.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Remove self-loops.
    pub fn drop_self_loops(&mut self, yes: bool) -> &mut Self {
        self.drop_self_loops = yes;
        self
    }

    /// Renumber vertices densely, dropping IDs with no incident edge.
    pub fn compact(&mut self, yes: bool) -> &mut Self {
        self.compact = yes;
        self
    }

    /// Builds the CSR graph, consuming the accumulated edges.
    pub fn build(&mut self) -> Result<Csr, GraphError> {
        let mut edges = std::mem::take(&mut self.edges);
        if self.drop_self_loops {
            edges.retain(|&(s, t)| s != t);
        }
        if self.symmetric {
            let mirrored: Vec<_> = edges.iter().map(|&(s, t)| (t, s)).collect();
            edges.extend(mirrored);
        }
        if self.dedup {
            edges.sort_unstable();
            edges.dedup();
        }
        let mut vertex_count = match self.max_vid {
            Some(m) => m as usize + 1,
            None => 0,
        };
        if self.compact {
            let mut touched = vec![false; vertex_count];
            for &(s, t) in &edges {
                touched[s as usize] = true;
                touched[t as usize] = true;
            }
            let mut remap = vec![VertexId::MAX; vertex_count];
            let mut next = 0 as VertexId;
            for (old, &hit) in touched.iter().enumerate() {
                if hit {
                    remap[old] = next;
                    next += 1;
                }
            }
            for e in &mut edges {
                *e = (remap[e.0 as usize], remap[e.1 as usize]);
            }
            vertex_count = next as usize;
        }
        Csr::from_edges(vertex_count, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_vertex_set() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 9);
        let g = b.build().unwrap();
        assert_eq!(g.vertex_count(), 10);
    }

    #[test]
    fn symmetric_doubles_edges() {
        let mut b = GraphBuilder::new();
        b.add_edges([(0, 1), (1, 2)]);
        let g = b.symmetric(true).build().unwrap();
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut b = GraphBuilder::new();
        b.add_edges([(0, 1), (0, 1), (0, 1), (1, 0)]);
        let g = b.dedup(true).build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn symmetric_then_dedup_handles_reciprocal_input() {
        let mut b = GraphBuilder::new();
        b.add_edges([(0, 1), (1, 0)]);
        let g = b.symmetric(true).dedup(true).build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edges([(0, 0), (0, 1), (1, 1), (1, 0)]);
        let g = b.drop_self_loops(true).build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut b = GraphBuilder::new();
        b.add_edges([(10, 20), (20, 10)]);
        let g = b.compact(true).build().unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
