//! A Bloom filter over directed edges, used as a *negative* membership
//! filter for second-order walks.
//!
//! node2vec's bias weight needs `has_edge(t, cand)` per rejection
//! attempt; a binary search over a DRAM-resident hub adjacency costs
//! several dependent cache misses.  Most candidates are *not* adjacent
//! to `t`, and a Bloom filter has no false negatives — so "not in the
//! filter" proves non-adjacency in one or two probes, exactly, and only
//! the (rare) positive probes fall back to the precise search.  False
//! positives therefore cost time, never correctness.

use crate::csr::Csr;
use crate::VertexId;

/// A fixed-size Bloom filter keyed by directed edges `(u, v)`.
#[derive(Debug, Clone)]
pub struct EdgeBloom {
    bits: Vec<u64>,
    /// Bit-index mask (`bits.len() * 64` is a power of two).
    mask: u64,
    hashes: u32,
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EdgeBloom {
    /// Builds a filter over every directed edge of `graph`.
    ///
    /// `bits_per_edge` controls the false-positive rate (~9% at 5 bits
    /// with 2 hashes, ~3% at 8 bits with 3); the total size rounds up to
    /// a power of two.  An empty graph yields a minimal always-negative
    /// filter.
    pub fn from_graph(graph: &Csr, bits_per_edge: usize) -> Self {
        let edges = graph.edge_count().max(1);
        let bit_count = (edges * bits_per_edge.max(1)).next_power_of_two().max(64);
        let hashes = if bits_per_edge >= 7 { 3 } else { 2 };
        let mut filter = Self {
            bits: vec![0u64; bit_count / 64],
            mask: bit_count as u64 - 1,
            hashes,
        };
        for (u, v) in graph.edges() {
            filter.insert(u, v);
        }
        filter
    }

    #[inline]
    fn key(u: VertexId, v: VertexId) -> u64 {
        ((u as u64) << 32) | v as u64
    }

    #[inline]
    fn insert(&mut self, u: VertexId, v: VertexId) {
        let h1 = splitmix(Self::key(u, v));
        let h2 = splitmix(h1) | 1; // odd stride for double hashing
        for i in 0..self.hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Returns `false` only when the edge is *definitely absent*; `true`
    /// means "present or false positive" and must be verified precisely.
    #[inline]
    pub fn may_contain(&self, u: VertexId, v: VertexId) -> bool {
        let h1 = splitmix(Self::key(u, v));
        let h2 = splitmix(h1) | 1;
        for i in 0..self.hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Calls `f` with each filter word [`EdgeBloom::may_contain`]`(u, v)`
    /// will read, in probe order.  Lets callers prefetch the exact cache
    /// lines of an upcoming query without exposing the bit layout.
    #[inline]
    pub fn probe_words(&self, u: VertexId, v: VertexId, mut f: impl FnMut(&u64)) {
        let h1 = splitmix(Self::key(u, v));
        let h2 = splitmix(h1) | 1;
        for i in 0..self.hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & self.mask;
            f(&self.bits[(bit / 64) as usize]);
        }
    }

    /// Filter size in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of probe positions per query.
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn no_false_negatives() {
        let g = synth::power_law(2_000, 2.0, 1, 100, 3);
        let bloom = EdgeBloom::from_graph(&g, 8);
        for (u, v) in g.edges() {
            assert!(bloom.may_contain(u, v), "edge {u}->{v} reported absent");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        use fm_rng::{Rng64, Xorshift64Star};
        let g = synth::power_law(2_000, 2.0, 1, 100, 3);
        let bloom = EdgeBloom::from_graph(&g, 8);
        let mut rng = Xorshift64Star::new(5);
        let mut fp = 0usize;
        let trials = 100_000;
        let mut tested = 0usize;
        for _ in 0..trials {
            let u = rng.gen_index(2_000) as VertexId;
            let v = rng.gen_index(2_000) as VertexId;
            if g.neighbors(u).contains(&v) {
                continue;
            }
            tested += 1;
            if bloom.may_contain(u, v) {
                fp += 1;
            }
        }
        let rate = fp as f64 / tested as f64;
        assert!(rate < 0.10, "false-positive rate {rate:.4}");
    }

    #[test]
    fn direction_matters() {
        let g = crate::csr::Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let bloom = EdgeBloom::from_graph(&g, 16);
        assert!(bloom.may_contain(0, 1));
        // (1, 0) is absent; a 16-bit/edge filter on 3 edges should not
        // collide (deterministic hashes, fixed expectation).
        assert!(!bloom.may_contain(1, 0));
    }

    #[test]
    fn empty_graph_filter_is_all_negative() {
        let g = crate::csr::Csr::from_edges(4, &[]).unwrap();
        let bloom = EdgeBloom::from_graph(&g, 8);
        assert!(!bloom.may_contain(0, 1));
        assert!(bloom.footprint_bytes() >= 8);
    }
}
