//! Degree-descending vertex relabeling.
//!
//! FlashMob's first pre-processing step (Section 4.1): sort all vertices
//! in descending order of degree so that contiguous ID ranges correspond
//! to similar-degree vertices.  We use the O(|V| + D_max) counting sort
//! the paper cites (Seward 1954), not a comparison sort, so this step
//! stays a sub-percent fraction of walk time even on billion-edge graphs
//! (Section 5.2 reports 7.7 s on YahooWeb).

use crate::csr::Csr;
use crate::VertexId;

/// A bijection between original and degree-sorted vertex IDs.
#[derive(Debug, Clone)]
pub struct Relabeling {
    /// `new_to_old[new_id] = old_id`.
    new_to_old: Vec<VertexId>,
    /// `old_to_new[old_id] = new_id`.
    old_to_new: Vec<VertexId>,
}

impl Relabeling {
    /// Computes the degree-descending ordering of `graph` by counting sort.
    ///
    /// The sort is *stable*: vertices of equal degree keep their original
    /// relative order, which makes the relabeling deterministic.
    pub fn by_descending_degree(graph: &Csr) -> Self {
        let n = graph.vertex_count();
        let max_d = graph.max_degree();
        // Bucket counts indexed by degree.
        let mut counts = vec![0usize; max_d + 2];
        for v in 0..n {
            counts[graph.degree(v as VertexId)] += 1;
        }
        // Prefix sums for descending degree: bucket for degree d starts
        // after all buckets of larger degree.
        let mut start = vec![0usize; max_d + 2];
        let mut acc = 0usize;
        for d in (0..=max_d).rev() {
            start[d] = acc;
            acc += counts[d];
        }
        let mut new_to_old = vec![0 as VertexId; n];
        let mut old_to_new = vec![0 as VertexId; n];
        #[allow(clippy::needless_range_loop)] // the index is a vertex ID
        for v in 0..n {
            let d = graph.degree(v as VertexId);
            let slot = start[d];
            start[d] += 1;
            new_to_old[slot] = v as VertexId;
            old_to_new[v] = slot as VertexId;
        }
        Self {
            new_to_old,
            old_to_new,
        }
    }

    /// The identity relabeling over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Maps a sorted-space ID back to the original ID.
    #[inline]
    pub fn to_old(&self, new_id: VertexId) -> VertexId {
        self.new_to_old[new_id as usize]
    }

    /// Maps an original ID to its sorted-space ID.
    #[inline]
    pub fn to_new(&self, old_id: VertexId) -> VertexId {
        self.old_to_new[old_id as usize]
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Returns `true` for a zero-vertex relabeling.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Rebuilds `graph` in the sorted ID space.
    ///
    /// Both endpoints are remapped; adjacency lists keep their original
    /// edge order (remapped), and weights follow their edges.
    pub fn apply(&self, graph: &Csr) -> Csr {
        let n = graph.vertex_count();
        assert_eq!(n, self.len(), "relabeling size must match graph");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for new_id in 0..n {
            acc += graph.degree(self.new_to_old[new_id]);
            offsets.push(acc);
        }
        let mut targets = Vec::with_capacity(graph.edge_count());
        let mut weights = graph
            .is_weighted()
            .then(|| Vec::with_capacity(graph.edge_count()));
        let mut labels = graph
            .is_labeled()
            .then(|| Vec::with_capacity(graph.edge_count()));
        for new_id in 0..n {
            let old = self.new_to_old[new_id];
            for &t in graph.neighbors(old) {
                targets.push(self.old_to_new[t as usize]);
            }
            if let (Some(ws), Some(src)) = (weights.as_mut(), graph.edge_weights(old)) {
                ws.extend_from_slice(src);
            }
            if let (Some(ls), Some(src)) = (labels.as_mut(), graph.edge_labels_of(old)) {
                ls.extend_from_slice(src);
            }
        }
        let sorted = Csr::from_parts(offsets, targets, weights)
            .expect("relabeled graph is structurally valid");
        match labels {
            Some(ls) => sorted
                .with_edge_labels(ls)
                .unwrap_or_else(|e| unreachable!("relabeled labels stay parallel to targets: {e}")),
            None => sorted,
        }
    }
}

/// Relabels `graph` by descending degree, returning the new graph and the
/// mapping needed to translate walk output back to original IDs.
pub fn sort_by_degree(graph: &Csr) -> (Csr, Relabeling) {
    let relabeling = Relabeling::by_descending_degree(graph);
    let sorted = relabeling.apply(graph);
    (sorted, relabeling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    fn star_plus_chain() -> Csr {
        // Vertex 3 is a hub of degree 4; 0,1 degree 1; 2 degree 2; 4 degree 2.
        Csr::from_edges(
            5,
            &[
                (3, 0),
                (3, 1),
                (3, 2),
                (3, 4),
                (2, 3),
                (2, 4),
                (4, 3),
                (4, 2),
                (0, 3),
                (1, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ordering_is_descending_and_stable() {
        let g = star_plus_chain();
        let r = Relabeling::by_descending_degree(&g);
        // Degrees: v0=1? v0 has (0,3): degree 1. v1=1, v2=2, v3=4(+1? (3,*) x4)=4, v4=2.
        // Descending stable order: 3, 2, 4, 0, 1.
        assert_eq!(r.to_old(0), 3);
        assert_eq!(r.to_old(1), 2);
        assert_eq!(r.to_old(2), 4);
        assert_eq!(r.to_old(3), 0);
        assert_eq!(r.to_old(4), 1);
    }

    #[test]
    fn mapping_is_a_bijection() {
        let g = star_plus_chain();
        let r = Relabeling::by_descending_degree(&g);
        for v in 0..g.vertex_count() as VertexId {
            assert_eq!(r.to_new(r.to_old(v)), v);
            assert_eq!(r.to_old(r.to_new(v)), v);
        }
    }

    #[test]
    fn apply_preserves_structure() {
        let g = star_plus_chain();
        let (sorted, r) = sort_by_degree(&g);
        assert_eq!(sorted.vertex_count(), g.vertex_count());
        assert_eq!(sorted.edge_count(), g.edge_count());
        // Every original edge exists in the new ID space.
        for (s, t) in g.edges() {
            assert!(sorted.neighbors(r.to_new(s)).contains(&r.to_new(t)));
        }
        // Degrees are now non-increasing.
        let degs: Vec<_> = (0..sorted.vertex_count())
            .map(|v| sorted.degree(v as VertexId))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn apply_carries_weights() {
        let g = Csr::from_parts(vec![0, 1, 3], vec![1, 0, 0], Some(vec![9.0, 1.0, 2.0])).unwrap();
        let (sorted, r) = sort_by_degree(&g);
        // Old vertex 1 (degree 2) becomes new vertex 0 with its weights.
        assert_eq!(r.to_new(1), 0);
        assert_eq!(sorted.edge_weights(0), Some(&[1.0f32, 2.0][..]));
        assert_eq!(sorted.edge_weights(1), Some(&[9.0f32][..]));
    }

    #[test]
    fn apply_carries_labels() {
        let g = Csr::from_parts(vec![0, 1, 3], vec![1, 0, 0], None)
            .unwrap()
            .with_edge_labels(vec![9, 1, 2])
            .unwrap();
        let (sorted, r) = sort_by_degree(&g);
        // Old vertex 1 (degree 2) becomes new vertex 0 with its labels.
        assert_eq!(r.to_new(1), 0);
        assert_eq!(sorted.edge_labels_of(0), Some(&[1u8, 2][..]));
        assert_eq!(sorted.edge_labels_of(1), Some(&[9u8][..]));
    }

    #[test]
    fn identity_relabeling_is_noop() {
        let g = star_plus_chain();
        let r = Relabeling::identity(g.vertex_count());
        let g2 = r.apply(&g);
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let (sorted, r) = sort_by_degree(&g);
        assert_eq!(sorted.vertex_count(), 0);
        assert!(r.is_empty());
    }
}
