//! Synthetic graph generators.
//!
//! The paper evaluates on five real-world graphs (Table 4) that range up
//! to 58 GB and cannot be redistributed; the reproduction substitutes
//! degree-distribution-matched synthetic analogs (see `presets`).  The
//! scalability study (Figure 11a) explicitly generates synthetic graphs
//! "using the degree distribution of YH", which is exactly what
//! [`configuration_model`] + [`zipf_degree_sequence`] implement.

use crate::csr::Csr;
use crate::VertexId;
use fm_rng::{Rng64, Xorshift64Star};

/// Draws a power-law degree sequence: `P(d) ∝ d^-alpha` over
/// `[min_degree, max_degree]`.
///
/// The sequence is drawn by inverse-CDF lookup over the discrete zipf
/// distribution, so repeated calls with one seed are reproducible.
///
/// # Panics
///
/// Panics if `min_degree == 0` or `min_degree > max_degree`.
pub fn zipf_degree_sequence(
    n: usize,
    alpha: f64,
    min_degree: usize,
    max_degree: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(min_degree >= 1, "walk graphs need min degree 1");
    assert!(min_degree <= max_degree);
    let mut cdf = Vec::with_capacity(max_degree - min_degree + 1);
    let mut acc = 0.0f64;
    for d in min_degree..=max_degree {
        acc += (d as f64).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = Xorshift64Star::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.next_f64() * total;
            let idx = cdf.partition_point(|&c| c <= x).min(cdf.len() - 1);
            min_degree + idx
        })
        .collect()
}

/// Wires an undirected configuration-model graph from a degree sequence.
///
/// Half-edges are shuffled and paired; self-loops are rewired by a fix-up
/// pass and any vertex left without an edge is attached to a random peer,
/// so the result always satisfies the engines' no-sink invariant.  The
/// realized degree of each vertex may deviate from the requested degree
/// by a small constant due to those repairs.
pub fn configuration_model(degrees: &[usize], seed: u64) -> Csr {
    let n = degrees.len();
    let mut half_edges: Vec<VertexId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            half_edges.push(v as VertexId);
        }
    }
    // An odd half-edge count cannot be fully paired; drop one.
    if half_edges.len() % 2 == 1 {
        half_edges.pop();
    }
    let mut rng = Xorshift64Star::new(seed);
    // Fisher-Yates shuffle.
    for i in (1..half_edges.len()).rev() {
        let j = rng.gen_index(i + 1);
        half_edges.swap(i, j);
    }
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(half_edges.len() / 2 * 2);
    for pair in half_edges.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a == b {
            // Rewire self-loop endpoint to a random other vertex (keeps
            // degree mass roughly in place without a quadratic repair).
            if n > 1 {
                let mut c = rng.gen_index(n) as VertexId;
                if c == a {
                    c = (c + 1) % n as VertexId;
                }
                edges.push((a, c));
                edges.push((c, a));
            }
        } else {
            edges.push((a, b));
            edges.push((b, a));
        }
    }
    // Repair sinks: every vertex must keep at least one out-edge.
    let mut has_out = vec![false; n];
    for &(s, _) in &edges {
        has_out[s as usize] = true;
    }
    #[allow(clippy::needless_range_loop)] // the index is a vertex ID
    for v in 0..n {
        if !has_out[v] && n > 1 {
            let mut t = rng.gen_index(n) as VertexId;
            if t as usize == v {
                t = (t + 1) % n as VertexId;
            }
            edges.push((v as VertexId, t));
            edges.push((t, v as VertexId));
        }
    }
    Csr::from_edges(n, &edges).expect("configuration model produces in-range edges")
}

/// Generates a power-law graph in one call.
pub fn power_law(n: usize, alpha: f64, min_degree: usize, max_degree: usize, seed: u64) -> Csr {
    let degrees = zipf_degree_sequence(n, alpha, min_degree, max_degree, seed);
    configuration_model(&degrees, seed.wrapping_add(1))
}

/// Generates an R-MAT graph with `n = 2^scale` vertices and
/// `edge_factor * n` undirected edges.
///
/// `(a, b, c)` are the standard recursive quadrant probabilities (the
/// fourth is `1 - a - b - c`); Graph500 uses `(0.57, 0.19, 0.19)`.
/// Self-loops are dropped and sinks repaired as in
/// [`configuration_model`].
///
/// # Panics
///
/// Panics if the probabilities are out of range.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0);
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = Xorshift64Star::new(seed);
    let mut edges = Vec::with_capacity(m * 2);
    for _ in 0..m {
        let (mut s, mut t) = (0usize, 0usize);
        for _ in 0..scale {
            let x = rng.next_f64();
            let (sb, tb) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            s = (s << 1) | sb;
            t = (t << 1) | tb;
        }
        if s != t {
            edges.push((s as VertexId, t as VertexId));
            edges.push((t as VertexId, s as VertexId));
        }
    }
    let mut has_out = vec![false; n];
    for &(s, _) in &edges {
        has_out[s as usize] = true;
    }
    #[allow(clippy::needless_range_loop)] // the index is a vertex ID
    for v in 0..n {
        if !has_out[v] {
            let t = (v + 1) % n;
            edges.push((v as VertexId, t as VertexId));
            edges.push((t as VertexId, v as VertexId));
        }
    }
    Csr::from_edges(n, &edges).expect("rmat produces in-range edges")
}

/// Grows a Barabási–Albert preferential-attachment graph.
///
/// Starts from a small clique and attaches each new vertex to `m`
/// existing vertices chosen proportionally to their current degree —
/// producing the organic power-law skew of real social networks, as an
/// alternative to the configuration model (which matches a target
/// degree *sequence* but has no growth correlation structure).
///
/// # Panics
///
/// Panics unless `1 <= m < n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m >= 1 && m < n, "need 1 <= m < n");
    let mut rng = Xorshift64Star::new(seed);
    // Repeated-endpoints trick: sampling a uniform element of `ends`
    // is degree-proportional sampling.
    let mut ends: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 vertices.
    for a in 0..=m {
        for b in 0..a {
            edges.push((a as VertexId, b as VertexId));
            edges.push((b as VertexId, a as VertexId));
            ends.push(a as VertexId);
            ends.push(b as VertexId);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m {
            let t = ends[rng.gen_index(ends.len())];
            if t != v as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m {
                // Extremely unlikely; fall back to any distinct vertex.
                let t = rng.gen_index(v) as VertexId;
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for t in chosen {
            edges.push((v as VertexId, t));
            edges.push((t, v as VertexId));
            ends.push(v as VertexId);
            ends.push(t);
        }
    }
    Csr::from_edges(n, &edges).expect("BA edges are in range")
}

/// Rewires a ring lattice into a Watts–Strogatz small-world graph.
///
/// Each forward edge of a `degree`-regular ring is rewired to a uniform
/// random endpoint with probability `beta`; `beta = 0` is the pure
/// lattice (maximum locality), `beta = 1` approaches a random graph.
/// Useful for sweeping the locality axis the UK-vs-FS comparison
/// (Section 5.2) turns on.
///
/// # Panics
///
/// Panics unless `degree` is even, positive, `< n`, and `beta` is in
/// `[0, 1]`.
pub fn watts_strogatz(n: usize, degree: usize, beta: f64, seed: u64) -> Csr {
    assert!(degree > 0 && degree.is_multiple_of(2) && degree < n);
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = Xorshift64Star::new(seed);
    let half = degree / 2;
    let mut edges = Vec::with_capacity(n * degree);
    for v in 0..n {
        for k in 1..=half {
            let mut t = ((v + k) % n) as VertexId;
            if rng.gen_bool(beta) {
                // Rewire; avoid self-loops.
                loop {
                    let cand = rng.gen_index(n) as VertexId;
                    if cand != v as VertexId {
                        t = cand;
                        break;
                    }
                }
            }
            edges.push((v as VertexId, t));
            edges.push((t, v as VertexId));
        }
    }
    Csr::from_edges(n, &edges).expect("WS edges are in range")
}

/// Wires a power-law graph whose edges prefer ID-nearby endpoints.
///
/// Each vertex draws its degree from the same zipf distribution as
/// [`power_law`], but targets are sampled from a window of `window`
/// vertices centered on the source instead of uniformly.  The result has
/// much higher locality and a much larger diameter — the structural
/// signature of web graphs like UK-Union, whose estimated diameter (147)
/// dwarfs Friendster's (32) and which the paper identifies as the reason
/// KnightKing's gap narrows there (Section 5.2).
///
/// # Panics
///
/// Panics if `window < 2` or the zipf parameters are invalid.
pub fn local_power_law(
    n: usize,
    alpha: f64,
    min_degree: usize,
    max_degree: usize,
    window: usize,
    seed: u64,
) -> Csr {
    assert!(window >= 2);
    let degrees = zipf_degree_sequence(n, alpha, min_degree, max_degree, seed);
    let mut rng = Xorshift64Star::new(seed.wrapping_add(0xB10C));
    let mut edges: Vec<(VertexId, VertexId)> =
        Vec::with_capacity(degrees.iter().sum::<usize>() * 2);
    let half = (window / 2) as i64;
    for (v, &d) in degrees.iter().enumerate() {
        for _ in 0..d.div_ceil(2) {
            // Offset in [-half, half] \ {0}.
            let mut off = rng.gen_range(2 * half as u64 + 1) as i64 - half;
            if off == 0 {
                off = 1;
            }
            let t = (v as i64 + off).rem_euclid(n as i64) as VertexId;
            edges.push((v as VertexId, t));
            edges.push((t, v as VertexId));
        }
    }
    Csr::from_edges(n, &edges).expect("windowed edges are in range")
}

/// A ring lattice where each vertex links to its `degree` nearest
/// neighbors (`degree/2` on each side) — every vertex has identical
/// degree, making footprint exactly predictable.
///
/// This is how the cache-sized "toy graphs" of Figure 1 are built: pick
/// `n` so `n * degree * 4` bytes equals the target cache capacity.
///
/// # Panics
///
/// Panics unless `degree` is even, positive, and `< n`.
pub fn regular_ring(n: usize, degree: usize) -> Csr {
    assert!(degree > 0 && degree.is_multiple_of(2) && degree < n);
    let half = degree / 2;
    let mut edges = Vec::with_capacity(n * degree);
    for v in 0..n {
        for k in 1..=half {
            let fwd = ((v + k) % n) as VertexId;
            let back = ((v + n - k) % n) as VertexId;
            edges.push((v as VertexId, fwd));
            edges.push((v as VertexId, back));
        }
    }
    Csr::from_edges(n, &edges).expect("ring edges are in range")
}

/// A star: vertex 0 connects to all others (both directions).
pub fn star(n: usize) -> Csr {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for v in 1..n {
        edges.push((0, v as VertexId));
        edges.push((v as VertexId, 0));
    }
    Csr::from_edges(n, &edges).expect("star edges are in range")
}

/// A bidirectional cycle 0 - 1 - ... - (n-1) - 0.
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3);
    let mut edges = Vec::with_capacity(2 * n);
    for v in 0..n {
        let next = ((v + 1) % n) as VertexId;
        edges.push((v as VertexId, next));
        edges.push((next, v as VertexId));
    }
    Csr::from_edges(n, &edges).expect("cycle edges are in range")
}

/// A complete directed graph (no self-loops).
pub fn complete(n: usize) -> Csr {
    assert!(n >= 2);
    let mut edges = Vec::with_capacity(n * (n - 1));
    for s in 0..n {
        for t in 0..n {
            if s != t {
                edges.push((s as VertexId, t as VertexId));
            }
        }
    }
    Csr::from_edges(n, &edges).expect("complete edges are in range")
}

/// Sizes a [`regular_ring`] so its CSR targets array occupies
/// approximately `bytes` bytes at the given degree.
pub fn ring_sized_to_bytes(bytes: usize, degree: usize) -> Csr {
    let per_vertex = degree * std::mem::size_of::<VertexId>();
    let n = (bytes / per_vertex).max(degree + 1);
    // Ring construction requires degree < n; already ensured by max().
    regular_ring(n, degree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sequence_respects_bounds() {
        let degs = zipf_degree_sequence(10_000, 2.0, 2, 100, 7);
        assert!(degs.iter().all(|&d| (2..=100).contains(&d)));
    }

    #[test]
    fn zipf_sequence_is_skewed() {
        let degs = zipf_degree_sequence(50_000, 2.2, 1, 1000, 7);
        let low = degs.iter().filter(|&&d| d <= 2).count();
        let high = degs.iter().filter(|&&d| d >= 100).count();
        assert!(low > degs.len() / 2, "most vertices should be low-degree");
        assert!(high > 0, "tail should reach high degrees");
        assert!(high < low / 10);
    }

    #[test]
    fn configuration_model_has_no_sinks_or_self_loops() {
        let degs = zipf_degree_sequence(2000, 2.0, 1, 200, 3);
        let g = configuration_model(&degs, 4);
        assert!(g.has_no_sinks());
        for (s, t) in g.edges() {
            assert_ne!(s, t, "self loop survived");
        }
    }

    #[test]
    fn configuration_model_degrees_track_request() {
        let degs = vec![10usize; 500];
        let g = configuration_model(&degs, 11);
        let mean: f64 = (0..500).map(|v| g.degree(v)).sum::<usize>() as f64 / 500.0;
        assert!((mean - 10.0).abs() < 1.0, "mean degree {mean}");
    }

    #[test]
    fn configuration_model_is_symmetric() {
        let degs = zipf_degree_sequence(300, 2.0, 1, 30, 9);
        let g = configuration_model(&degs, 10);
        for (s, t) in g.edges() {
            assert!(g.neighbors(t).contains(&s), "missing reverse of {s}->{t}");
        }
    }

    #[test]
    fn rmat_basics() {
        let g = rmat(8, 8, 0.57, 0.19, 0.19, 5);
        assert_eq!(g.vertex_count(), 256);
        assert!(g.has_no_sinks());
        assert!(g.edge_count() > 256 * 8); // roughly 2 * edge_factor * n
                                           // R-MAT with skewed quadrants concentrates degree on low IDs.
        let d_low: usize = (0..32).map(|v| g.degree(v)).sum();
        let d_high: usize = (224..256).map(|v| g.degree(v)).sum();
        assert!(d_low > d_high * 2, "{d_low} vs {d_high}");
    }

    #[test]
    fn barabasi_albert_grows_a_skewed_connected_graph() {
        let g = barabasi_albert(2000, 3, 7);
        assert!(g.has_no_sinks());
        // Connected by construction.
        let (_, comps) = crate::transform::weakly_connected_components(&g);
        assert_eq!(comps, 1);
        // Early vertices accumulate much higher degree than late ones.
        let early: usize = (0..20).map(|v| g.degree(v)).sum();
        let late: usize = (1980..2000).map(|v| g.degree(v)).sum();
        assert!(early > late * 3, "early {early} vs late {late}");
        // Minimum degree is m (every vertex attached to >= 3).
        assert!((0..2000).all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn watts_strogatz_beta_controls_locality() {
        let lattice = watts_strogatz(2000, 6, 0.0, 3);
        let random = watts_strogatz(2000, 6, 1.0, 3);
        // Beta = 0 keeps the pure lattice: same adjacency sets as the
        // regular ring (edge order differs).
        let ring = regular_ring(2000, 6);
        for v in (0..2000).step_by(97) {
            let mut a = lattice.neighbors(v).to_vec();
            let mut b = ring.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
        let d_lat = crate::stats::estimate_diameter(&lattice, 2, 5);
        let d_rnd = crate::stats::estimate_diameter(&random, 2, 5);
        assert!(d_lat > d_rnd * 5, "lattice {d_lat} vs random {d_rnd}");
        assert!(random.has_no_sinks());
    }

    #[test]
    fn watts_strogatz_small_rewiring_shrinks_diameter() {
        // The signature small-world effect: a few shortcuts collapse the
        // diameter while the graph stays mostly local.
        let lattice = watts_strogatz(1000, 4, 0.0, 9);
        let small_world = watts_strogatz(1000, 4, 0.05, 9);
        let d0 = crate::stats::estimate_diameter(&lattice, 2, 5);
        let d1 = crate::stats::estimate_diameter(&small_world, 2, 5);
        assert!(d1 * 3 < d0, "beta=0.05: {d1} vs lattice {d0}");
    }

    #[test]
    fn local_power_law_has_small_window_locality() {
        let g = local_power_law(10_000, 2.0, 2, 50, 64, 4);
        assert!(g.has_no_sinks());
        // Nearly all edges should span less than the window.
        let near = g
            .edges()
            .filter(|&(s, t)| {
                let d = (s as i64 - t as i64).unsigned_abs() as usize;
                d.min(10_000 - d) <= 32
            })
            .count();
        assert!(near as f64 / g.edge_count() as f64 > 0.99);
    }

    #[test]
    fn local_power_law_has_larger_diameter_than_global() {
        let local = local_power_law(4000, 2.0, 2, 40, 32, 5);
        let global = power_law(4000, 2.0, 2, 40, 5);
        let d_local = crate::stats::estimate_diameter(&local, 3, 9);
        let d_global = crate::stats::estimate_diameter(&global, 3, 9);
        assert!(
            d_local > d_global * 2,
            "local diameter {d_local} vs global {d_global}"
        );
    }

    #[test]
    fn regular_ring_is_regular() {
        let g = regular_ring(100, 6);
        for v in 0..100 {
            assert_eq!(g.degree(v), 6);
        }
        assert!(g.neighbors(0).contains(&1));
        assert!(g.neighbors(0).contains(&99));
    }

    #[test]
    fn ring_sized_to_bytes_hits_target() {
        let g = ring_sized_to_bytes(64 * 1024, 16);
        let bytes = g.edge_count() * std::mem::size_of::<VertexId>();
        assert!((bytes as f64 / (64.0 * 1024.0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn star_cycle_complete_shapes() {
        let s = star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(3), 1);

        let c = cycle(4);
        for v in 0..4 {
            assert_eq!(c.degree(v), 2);
        }

        let k = complete(4);
        for v in 0..4 {
            assert_eq!(k.degree(v), 3);
        }
    }
}
