//! Scaled-down analogs of the paper's evaluation graphs (Table 4).
//!
//! The paper tests on YouTube (YT), Twitter (TW), Friendster (FS),
//! UK-Union (UK), and YahooWeb (YH).  None of these can be shipped with a
//! repository (UK and YH alone are tens of gigabytes), so the benchmark
//! harness substitutes synthetic analogs that preserve each graph's
//! *shape*: average degree, degree-distribution skew (Table 2's
//! per-percentile average degrees), and — for UK — edge locality.
//! Anyone holding the real datasets can load them through [`crate::io`]
//! and run the same harness unchanged.

use crate::csr::Csr;
use crate::synth;

/// Published statistics of a paper graph (Table 4).
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// Vertex count reported in Table 4.
    pub vertices: u64,
    /// Edge count reported in Table 4.
    pub edges: u64,
    /// CSR size reported in Table 4, in bytes.
    pub csr_bytes: u64,
}

/// One of the five evaluation graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperGraph {
    /// YouTube social network (Mislove et al.).
    Youtube,
    /// Twitter follower graph (Kwak et al.).
    Twitter,
    /// Friendster social network.
    Friendster,
    /// UK-Union web graph (high locality, large diameter).
    UkUnion,
    /// Yahoo AltaVista web graph (largest, 58 GB CSR).
    YahooWeb,
}

impl PaperGraph {
    /// All five graphs, in the paper's size order.
    pub const ALL: [PaperGraph; 5] = [
        PaperGraph::Youtube,
        PaperGraph::Twitter,
        PaperGraph::Friendster,
        PaperGraph::UkUnion,
        PaperGraph::YahooWeb,
    ];

    /// The paper's two-letter abbreviation.
    pub fn tag(self) -> &'static str {
        match self {
            PaperGraph::Youtube => "YT",
            PaperGraph::Twitter => "TW",
            PaperGraph::Friendster => "FS",
            PaperGraph::UkUnion => "UK",
            PaperGraph::YahooWeb => "YH",
        }
    }

    /// Table 4 statistics for the real dataset.
    pub fn paper_stats(self) -> PaperStats {
        match self {
            PaperGraph::Youtube => PaperStats {
                vertices: 1_140_000,
                edges: 4_950_000,
                csr_bytes: 50 * 1024 * 1024 + 820 * 1024,
            },
            PaperGraph::Twitter => PaperStats {
                vertices: 41_650_000,
                edges: 1_470_000_000,
                csr_bytes: 11 * (1 << 30) + 400 * (1 << 20),
            },
            PaperGraph::Friendster => PaperStats {
                vertices: 65_610_000,
                edges: 1_810_000_000,
                csr_bytes: 14 * (1 << 30) + 200 * (1 << 20),
            },
            PaperGraph::UkUnion => PaperStats {
                vertices: 131_810_000,
                edges: 5_510_000_000,
                csr_bytes: 42 * (1 << 30) + 512 * (1 << 20),
            },
            PaperGraph::YahooWeb => PaperStats {
                vertices: 720_240_000,
                edges: 6_640_000_000,
                csr_bytes: 57 * (1 << 30) + 512 * (1 << 20),
            },
        }
    }

    /// Generation recipe for the analog at a given scale.
    ///
    /// Each recipe pins the paper's *average degree* (Table 4) and the
    /// tail length (max degree); the zipf exponent is solved numerically
    /// so the realized mean matches the target at every scale.
    fn recipe(self, scale: AnalogScale) -> Recipe {
        let f = scale.vertex_factor();
        match self {
            // avg 4.34; mild head (YT top-1% avg degree 338).
            PaperGraph::Youtube => Recipe {
                n: (2_800_000.0 * f) as usize,
                target_avg: 4.34,
                min_degree: 1,
                max_degree: 3_000,
                window: None,
            },
            // avg 35.3; extreme head (TW top-1% avg 3463).
            PaperGraph::Twitter => Recipe {
                n: (1_150_000.0 * f) as usize,
                target_avg: 35.3,
                min_degree: 1,
                max_degree: 24_000,
                window: None,
            },
            // avg 27.6; broad middle (FS 5-25% bucket holds 41% of edges).
            PaperGraph::Friendster => Recipe {
                n: (1_650_000.0 * f) as usize,
                target_avg: 27.6,
                min_degree: 2,
                max_degree: 5_000,
                window: None,
            },
            // avg 41.8; strong skew AND strong locality (diameter 147).
            PaperGraph::UkUnion => {
                let n = (1_200_000.0 * f) as usize;
                Recipe {
                    n,
                    target_avg: 41.8,
                    min_degree: 1,
                    max_degree: 26_000,
                    // Window scales with |V| so the diameter stays large
                    // (~n / window BFS hops) at every analog scale.
                    window: Some((n / 64).max(64)),
                }
            }
            // avg 9.2; strong skew, largest vertex set.
            PaperGraph::YahooWeb => Recipe {
                n: (3_000_000.0 * f) as usize,
                target_avg: 9.2,
                min_degree: 1,
                max_degree: 12_000,
                window: None,
            },
        }
    }

    /// Generates the analog graph at the given scale (deterministic).
    pub fn analog(self, scale: AnalogScale) -> Csr {
        let r = self.recipe(scale);
        // The tail cannot exceed a fraction of the vertex set.
        let max_degree = r.max_degree.min(r.n / 4).max(r.min_degree + 1);
        let alpha = solve_alpha(r.min_degree, max_degree, r.target_avg);
        let seed = 0xF1A5_u64 ^ (self as u64) << 8 ^ scale.vertex_factor().to_bits();
        match r.window {
            Some(w) => synth::local_power_law(r.n, alpha, r.min_degree, max_degree, w, seed),
            None => synth::power_law(r.n, alpha, r.min_degree, max_degree, seed),
        }
    }
}

/// Mean of the truncated zipf degree distribution `P(d) ∝ d^-alpha`
/// over `[min, max]`.
fn zipf_mean(min: usize, max: usize, alpha: f64) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for d in min..=max {
        let w = (d as f64).powf(-alpha);
        num += d as f64 * w;
        den += w;
    }
    num / den
}

/// Solves for the zipf exponent whose truncated mean hits `target_avg`
/// (bisection; the mean is strictly decreasing in alpha).
fn solve_alpha(min: usize, max: usize, target_avg: f64) -> f64 {
    let (mut lo, mut hi) = (0.2f64, 4.5f64);
    let target = target_avg.clamp(min as f64 + 1e-6, max as f64 - 1e-6);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if zipf_mean(min, max, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[derive(Debug, Clone, Copy)]
struct Recipe {
    n: usize,
    target_avg: f64,
    min_degree: usize,
    max_degree: usize,
    window: Option<usize>,
}

/// How large an analog to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalogScale {
    /// Tiny graphs for unit/integration tests (milliseconds to walk).
    Test,
    /// Default benchmarking scale: CSR footprints comparable to or
    /// larger than a large server LLC, so the baseline's random accesses
    /// really leave the cache (tens of seconds to walk on one core).
    Bench,
    /// Larger sweep scale for the scalability experiments.
    Large,
}

impl AnalogScale {
    fn vertex_factor(self) -> f64 {
        match self {
            AnalogScale::Test => 0.004,
            AnalogScale::Bench => 1.0,
            AnalogScale::Large => 2.0,
        }
    }
}

/// Builds a uniform-degree toy graph whose CSR targets occupy roughly
/// `bytes` bytes — the Figure 1 "toy graphs sized to fit the L1/L2/L3
/// capacities".
pub fn toy_for_cache_bytes(bytes: usize) -> Csr {
    synth::ring_sized_to_bytes(bytes, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn all_analogs_generate_and_have_no_sinks() {
        for g in PaperGraph::ALL {
            let csr = g.analog(AnalogScale::Test);
            assert!(csr.vertex_count() > 1000, "{} too small", g.tag());
            assert!(csr.has_no_sinks(), "{} has sinks", g.tag());
        }
    }

    #[test]
    fn analogs_are_deterministic() {
        let a = PaperGraph::Youtube.analog(AnalogScale::Test);
        let b = PaperGraph::Youtube.analog(AnalogScale::Test);
        assert_eq!(a, b);
    }

    #[test]
    fn average_degrees_track_paper_order() {
        // Paper averages: YT 4.3 < YH 9.2 < FS 27.6 < TW 35.3 < UK 41.8.
        let avg = |g: PaperGraph| stats::avg_degree(&g.analog(AnalogScale::Test));
        let yt = avg(PaperGraph::Youtube);
        let yh = avg(PaperGraph::YahooWeb);
        let fs = avg(PaperGraph::Friendster);
        let tw = avg(PaperGraph::Twitter);
        assert!(yt < yh, "YT {yt} < YH {yh}");
        assert!(yh < fs, "YH {yh} < FS {fs}");
        assert!(fs < tw * 1.5, "FS {fs} should be near TW {tw}");
    }

    #[test]
    fn skew_shape_matches_table2() {
        // Top-5% of vertices should hold a large minority-to-majority of
        // edges on the skewed analogs, mirroring Table 2 (45.6%-69.7%).
        for g in [PaperGraph::Twitter, PaperGraph::YahooWeb] {
            let csr = g.analog(AnalogScale::Test);
            let b = stats::degree_group_stats(&csr, None, &stats::TABLE2_BUCKETS);
            let top5 = b[0].edge_share + b[1].edge_share;
            assert!(top5 > 0.35, "{}: top-5% edge share only {top5:.2}", g.tag());
        }
    }

    #[test]
    fn uk_analog_is_most_local() {
        let uk = PaperGraph::UkUnion.analog(AnalogScale::Test);
        let fs = PaperGraph::Friendster.analog(AnalogScale::Test);
        let d_uk = stats::estimate_diameter(&uk, 2, 3);
        let d_fs = stats::estimate_diameter(&fs, 2, 3);
        assert!(d_uk > d_fs, "UK diameter {d_uk} vs FS {d_fs}");
    }

    #[test]
    fn toy_graph_footprint_matches_cache_budget() {
        let g = toy_for_cache_bytes(1 << 20);
        let target_bytes = g.edge_count() * std::mem::size_of::<crate::VertexId>();
        let ratio = target_bytes as f64 / (1u64 << 20) as f64;
        assert!((ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn paper_stats_are_positive() {
        for g in PaperGraph::ALL {
            let s = g.paper_stats();
            assert!(s.vertices > 0 && s.edges > s.vertices);
        }
    }
}
