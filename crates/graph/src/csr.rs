//! Compressed Sparse Row graph storage.

use crate::{GraphError, VertexId};

/// A directed graph in CSR form.
///
/// `offsets` has `|V| + 1` entries; the out-neighbors of vertex `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`.  Optional per-edge weights are
/// stored in a parallel array.
///
/// # Examples
///
/// ```
/// use fm_graph::Csr;
///
/// // A triangle: 0 -> 1, 1 -> 2, 2 -> 0.
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.neighbors(1), &[2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Option<Vec<f32>>,
    /// Optional per-edge type labels, parallel to `targets`.  Metapath
    /// walks constrain each step to one label; everything else ignores
    /// this sidecar.
    labels: Option<Vec<u8>>,
}

impl Csr {
    /// Builds a CSR graph from raw parts.
    ///
    /// Validates the structural invariants: monotone offsets covering all
    /// of `targets`, every target in range, and weight-array length (when
    /// present) equal to the edge count.
    pub fn from_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::Format("offsets must have |V|+1 entries".into()));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") != targets.len() {
            return Err(GraphError::Format(
                "offsets must start at 0 and end at |E|".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Format("offsets must be monotone".into()));
        }
        let vcount = (offsets.len() - 1) as u64;
        if vcount > VertexId::MAX as u64 {
            return Err(GraphError::TooManyVertices(vcount));
        }
        if let Some(&bad) = targets.iter().find(|&&t| (t as u64) >= vcount) {
            return Err(GraphError::VertexOutOfRange {
                vid: bad as u64,
                vertex_count: vcount,
            });
        }
        if let Some(w) = &weights {
            if w.len() != targets.len() {
                return Err(GraphError::Format("weights length must equal |E|".into()));
            }
        }
        Ok(Self {
            offsets,
            targets,
            weights,
            labels: None,
        })
    }

    /// Builds an unweighted CSR graph from an edge list.
    ///
    /// Edge order within each adjacency list follows the input order.
    pub fn from_edges(
        vertex_count: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        if vertex_count as u64 > VertexId::MAX as u64 {
            return Err(GraphError::TooManyVertices(vertex_count as u64));
        }
        let mut degree = vec![0usize; vertex_count];
        for &(s, t) in edges {
            for v in [s, t] {
                if v as usize >= vertex_count {
                    return Err(GraphError::VertexOutOfRange {
                        vid: v as u64,
                        vertex_count: vertex_count as u64,
                    });
                }
            }
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(vertex_count + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; edges.len()];
        for &(s, t) in edges {
            targets[cursor[s as usize]] = t;
            cursor[s as usize] += 1;
        }
        Ok(Self {
            offsets,
            targets,
            weights: None,
            labels: None,
        })
    }

    /// Attaches per-edge type labels, parallel to [`Csr::targets`].
    ///
    /// Returns an error when the label array length differs from the
    /// edge count.
    pub fn with_edge_labels(mut self, labels: Vec<u8>) -> Result<Self, GraphError> {
        if labels.len() != self.targets.len() {
            return Err(GraphError::Format("labels length must equal |E|".into()));
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// The flat per-edge label array, parallel to [`Csr::targets`], if
    /// the graph is labeled.
    #[inline]
    pub fn edge_labels(&self) -> Option<&[u8]> {
        self.labels.as_deref()
    }

    /// Edge labels of `v`, parallel to [`Csr::neighbors`], if labeled.
    #[inline]
    pub fn edge_labels_of(&self, v: VertexId) -> Option<&[u8]> {
        let l = self.labels.as_ref()?;
        let v = v as usize;
        Some(&l[self.offsets[v]..self.offsets[v + 1]])
    }

    /// Returns `true` when per-edge type labels are present.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Out-neighbors of `v`, in storage order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Edge weights of `v`, parallel to [`Csr::neighbors`], if weighted.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        let w = self.weights.as_ref()?;
        let v = v as usize;
        Some(&w[self.offsets[v]..self.offsets[v + 1]])
    }

    /// Returns `true` when per-edge weights are present.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The raw offsets array (`|V| + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw targets array (`|E|` entries).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Offset of vertex `v`'s adjacency list within [`Csr::targets`].
    #[inline]
    pub fn adjacency_start(&self, v: VertexId) -> usize {
        self.offsets[v as usize]
    }

    /// Checks whether the directed edge `u -> v` exists (binary search if
    /// the adjacency list is sorted, linear scan otherwise).
    ///
    /// node2vec's second-order bias needs exactly this connectivity test.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let adj = self.neighbors(u);
        if adj.len() >= 16 && adj.windows(2).all(|w| w[0] <= w[1]) {
            adj.binary_search(&v).is_ok()
        } else {
            adj.contains(&v)
        }
    }

    /// Sorts every adjacency list ascending (invalidates weight pairing,
    /// so only allowed on unweighted graphs).
    ///
    /// Sorted adjacency lists enable O(log d) `has_edge`, which node2vec
    /// engines rely on.
    ///
    /// # Panics
    ///
    /// Panics if the graph is weighted.
    pub fn sort_adjacency_lists(&mut self) {
        assert!(
            self.weights.is_none(),
            "sorting adjacency lists would desynchronize edge weights"
        );
        match self.labels.as_mut() {
            None => {
                for v in 0..self.vertex_count() {
                    let (s, e) = (self.offsets[v], self.offsets[v + 1]);
                    self.targets[s..e].sort_unstable();
                }
            }
            Some(labels) => {
                // Labels must follow their edges: sort (target, label)
                // pairs by target, stably, so equal targets keep their
                // label order deterministic.
                for v in 0..self.offsets.len() - 1 {
                    let (s, e) = (self.offsets[v], self.offsets[v + 1]);
                    let mut row: Vec<(VertexId, u8)> = self.targets[s..e]
                        .iter()
                        .copied()
                        .zip(labels[s..e].iter().copied())
                        .collect();
                    row.sort_by_key(|&(t, _)| t);
                    for (k, (t, l)) in row.into_iter().enumerate() {
                        self.targets[s + k] = t;
                        labels[s + k] = l;
                    }
                }
            }
        }
    }

    /// Iterates over all directed edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.vertex_count()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&t| (v as VertexId, t))
        })
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// In-memory size of the CSR arrays in bytes (the paper's "CSR Size"
    /// column in Table 4).
    pub fn footprint_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
            + self.labels.as_ref().map_or(0, |l| l.len())
    }

    /// Checks that no vertex has degree zero.
    ///
    /// Random walkers on a zero-degree vertex have nowhere to go; the
    /// paper removes such vertices from its datasets (Table 4 note), and
    /// the engines require this invariant.
    pub fn has_no_sinks(&self) -> bool {
        (0..self.vertex_count()).all(|v| self.degree(v as VertexId) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_basic() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
        assert!(g.has_no_sinks());
    }

    #[test]
    fn from_edges_preserves_input_order() {
        let g = Csr::from_edges(4, &[(0, 3), (0, 1), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[3, 1, 2]);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Csr::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vid: 5, .. }));
    }

    #[test]
    fn from_parts_validates_offsets() {
        assert!(Csr::from_parts(vec![0, 2, 1], vec![0, 0], None).is_err());
        assert!(Csr::from_parts(vec![1, 2], vec![0], None).is_err());
        assert!(Csr::from_parts(vec![0, 1], vec![0, 0], None).is_err());
        assert!(Csr::from_parts(vec![], vec![], None).is_err());
    }

    #[test]
    fn from_parts_validates_weights() {
        assert!(Csr::from_parts(vec![0, 1], vec![0], Some(vec![1.0, 2.0])).is_err());
        assert!(Csr::from_parts(vec![0, 1], vec![0], Some(vec![1.0])).is_ok());
    }

    #[test]
    fn empty_vertex_set() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.has_no_sinks());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertex_detected_as_sink() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0)]).unwrap();
        assert!(!g.has_no_sinks());
    }

    #[test]
    fn has_edge_linear_and_sorted_paths() {
        // Small list: linear scan.
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));

        // Large sorted list: binary search path.
        let edges: Vec<(VertexId, VertexId)> = (1..64).map(|t| (0, t)).collect();
        let mut g = Csr::from_edges(64, &edges).unwrap();
        g.sort_adjacency_lists();
        assert!(g.has_edge(0, 33));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let input = vec![(0, 1), (0, 2), (1, 2), (2, 0)];
        let g = Csr::from_edges(3, &input).unwrap();
        let out: Vec<_> = g.edges().collect();
        assert_eq!(out, input);
    }

    #[test]
    fn weighted_accessors() {
        let g = Csr::from_parts(vec![0, 2, 2], vec![1, 1], Some(vec![0.5, 1.5])).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0), Some(&[0.5f32, 1.5][..]));
        assert_eq!(g.edge_weights(1), Some(&[][..]));
    }

    #[test]
    fn footprint_counts_all_arrays() {
        let g = triangle();
        let expect = 4 * std::mem::size_of::<usize>() + 3 * std::mem::size_of::<VertexId>();
        assert_eq!(g.footprint_bytes(), expect);
    }

    #[test]
    fn labels_attach_and_slice() {
        let g = triangle().with_edge_labels(vec![7, 8, 9]).unwrap();
        assert!(g.is_labeled());
        assert_eq!(g.edge_labels(), Some(&[7u8, 8, 9][..]));
        assert_eq!(g.edge_labels_of(1), Some(&[8u8][..]));
        assert!(triangle().with_edge_labels(vec![1, 2]).is_err());
    }

    #[test]
    fn sorting_carries_labels_with_their_edges() {
        let g = Csr::from_edges(4, &[(0, 3), (0, 1), (0, 2), (1, 0), (2, 0), (3, 0)]).unwrap();
        let mut g = g.with_edge_labels(vec![30, 10, 20, 0, 0, 0]).unwrap();
        g.sort_adjacency_lists();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.edge_labels_of(0), Some(&[10u8, 20, 30][..]));
    }

    #[test]
    fn labeled_footprint_includes_sidecar() {
        let g = triangle().with_edge_labels(vec![0, 1, 0]).unwrap();
        let expect = 4 * std::mem::size_of::<usize>() + 3 * std::mem::size_of::<VertexId>() + 3;
        assert_eq!(g.footprint_bytes(), expect);
    }
}
