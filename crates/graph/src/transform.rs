//! Graph transformations used to prepare real datasets for walking.
//!
//! The paper's datasets are cleaned before use ("0-degree vertices
//! removed", Table 4); web graphs additionally need transposition (link
//! direction vs navigation direction) and component extraction so
//! walkers cannot get trapped.  These helpers cover that pipeline.

use std::collections::VecDeque;

use crate::csr::Csr;
use crate::{GraphError, VertexId};

/// Reverses every edge: `u -> v` becomes `v -> u`.
///
/// Weights follow their edges.
pub fn transpose(graph: &Csr) -> Csr {
    let n = graph.vertex_count();
    let mut degree = vec![0usize; n];
    for &t in graph.targets() {
        degree[t as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0 as VertexId; graph.edge_count()];
    let mut weights = graph
        .is_weighted()
        .then(|| vec![0.0f32; graph.edge_count()]);
    for s in 0..n {
        let ws = graph.edge_weights(s as VertexId);
        for (k, &t) in graph.neighbors(s as VertexId).iter().enumerate() {
            let slot = cursor[t as usize];
            cursor[t as usize] += 1;
            targets[slot] = s as VertexId;
            if let (Some(out), Some(src)) = (weights.as_mut(), ws) {
                out[slot] = src[k];
            }
        }
    }
    Csr::from_parts(offsets, targets, weights).expect("transpose is structurally valid")
}

/// Makes the graph undirected by adding every reverse edge that is
/// missing (deduplicated).
pub fn symmetrize(graph: &Csr) -> Result<Csr, GraphError> {
    let mut builder = crate::builder::GraphBuilder::new();
    // Preserve the vertex count even if trailing vertices are isolated.
    if graph.vertex_count() > 0 {
        builder.add_edge(
            (graph.vertex_count() - 1) as VertexId,
            (graph.vertex_count() - 1) as VertexId,
        );
    }
    for (s, t) in graph.edges() {
        builder.add_edge(s, t);
    }
    builder
        .symmetric(true)
        .dedup(true)
        .drop_self_loops(true)
        .build()
}

/// Labels weakly connected components, treating edges as undirected;
/// returns `(labels, component_count)`.
pub fn weakly_connected_components(graph: &Csr) -> (Vec<u32>, usize) {
    let n = graph.vertex_count();
    const UNSEEN: u32 = u32::MAX;
    let mut label = vec![UNSEEN; n];
    // Undirected reachability needs in-edges too.
    let reversed = transpose(graph);
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != UNSEEN {
            continue;
        }
        label[start] = count;
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &w in graph.neighbors(u).iter().chain(reversed.neighbors(u)) {
                if label[w as usize] == UNSEEN {
                    label[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Extracts the induced subgraph of the largest weakly connected
/// component, returning the subgraph and the kept original vertex IDs
/// (`kept[new_id] = old_id`).
pub fn largest_component(graph: &Csr) -> Result<(Csr, Vec<VertexId>), GraphError> {
    let n = graph.vertex_count();
    if n == 0 {
        return Ok((Csr::from_edges(0, &[])?, Vec::new()));
    }
    let (labels, count) = weakly_connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");
    keep_vertices(graph, |v| labels[v as usize] == biggest)
}

/// Removes every vertex whose *total* (in + out) degree is below
/// `min_total_degree`, iterating until stable (a k-core-style peel).
pub fn peel_low_degree(
    graph: &Csr,
    min_total_degree: usize,
) -> Result<(Csr, Vec<VertexId>), GraphError> {
    let mut current = graph.clone();
    let mut kept: Vec<VertexId> = (0..graph.vertex_count() as VertexId).collect();
    loop {
        let reversed = transpose(&current);
        let violating: Vec<bool> = (0..current.vertex_count())
            .map(|v| {
                current.degree(v as VertexId) + reversed.degree(v as VertexId) < min_total_degree
            })
            .collect();
        if !violating.iter().any(|&b| b) {
            return Ok((current, kept));
        }
        let (next, kept_local) = keep_vertices(&current, |v| !violating[v as usize])?;
        kept = kept_local.iter().map(|&nv| kept[nv as usize]).collect();
        current = next;
        if current.vertex_count() == 0 {
            return Ok((current, kept));
        }
    }
}

/// Induced subgraph over the vertices satisfying `keep`.
fn keep_vertices(
    graph: &Csr,
    keep: impl Fn(VertexId) -> bool,
) -> Result<(Csr, Vec<VertexId>), GraphError> {
    let n = graph.vertex_count();
    let mut remap = vec![VertexId::MAX; n];
    let mut kept = Vec::new();
    for v in 0..n as VertexId {
        if keep(v) {
            remap[v as usize] = kept.len() as VertexId;
            kept.push(v);
        }
    }
    let mut offsets = Vec::with_capacity(kept.len() + 1);
    let mut targets = Vec::new();
    let mut weights = graph.is_weighted().then(Vec::new);
    offsets.push(0usize);
    for &old in &kept {
        let ws = graph.edge_weights(old);
        for (k, &t) in graph.neighbors(old).iter().enumerate() {
            if remap[t as usize] != VertexId::MAX {
                targets.push(remap[t as usize]);
                if let (Some(out), Some(src)) = (weights.as_mut(), ws) {
                    out.push(src[k]);
                }
            }
        }
        offsets.push(targets.len());
    }
    Ok((Csr::from_parts(offsets, targets, weights)?, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn transpose_reverses_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let t = transpose(&g);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    fn transpose_is_involutive() {
        let g = synth::power_law(300, 2.0, 1, 30, 4);
        let tt = transpose(&transpose(&g));
        // Same adjacency as the original up to in-list ordering.
        for v in 0..300 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn transpose_carries_weights() {
        let g = Csr::from_parts(vec![0, 2, 2], vec![1, 1], Some(vec![3.0, 7.0])).unwrap();
        let t = transpose(&g);
        assert_eq!(t.edge_weights(1), Some(&[3.0f32, 7.0][..]));
    }

    #[test]
    fn symmetrize_adds_missing_reverses() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let s = symmetrize(&g).unwrap();
        assert!(s.has_edge(1, 0));
        assert!(s.has_edge(2, 1));
        assert_eq!(s.vertex_count(), 3);
        assert_eq!(s.edge_count(), 4);
    }

    #[test]
    fn components_found_correctly() {
        // Two triangles plus an isolated vertex.
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[6], labels[0]);
        assert_ne!(labels[6], labels[3]);
    }

    #[test]
    fn directed_chains_are_weakly_connected() {
        let g = Csr::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn largest_component_extraction() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]).unwrap();
        let (sub, kept) = largest_component(&g).unwrap();
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(sub.edge_count(), 3);
        assert!(sub.has_no_sinks());
    }

    #[test]
    fn peel_removes_pendant_chains() {
        // A triangle with a pendant path 3-4.
        let g = Csr::from_edges(
            5,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 0),
                (0, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 3),
            ],
        )
        .unwrap();
        let (core, kept) = peel_low_degree(&g, 4).unwrap();
        // Vertices 3 and 4 peel away; the triangle survives (total
        // degree 4 each: 2 out + 2 in after 3 is gone... vertex 2 had
        // an extra edge to 3).
        assert!(kept.len() <= 3, "kept {kept:?}");
        assert!(core.vertex_count() <= 3);
    }

    #[test]
    fn peel_to_empty_is_safe() {
        let g = synth::cycle(6);
        let (core, kept) = peel_low_degree(&g, 100).unwrap();
        assert_eq!(core.vertex_count(), 0);
        assert!(kept.is_empty());
    }

    #[test]
    fn empty_graph_transforms() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(transpose(&g).vertex_count(), 0);
        let (sub, kept) = largest_component(&g).unwrap();
        assert_eq!(sub.vertex_count(), 0);
        assert!(kept.is_empty());
    }
}
