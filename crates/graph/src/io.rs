//! Graph IO: text edge lists and a compact binary format.
//!
//! The text parser accepts the whitespace-separated `src dst [weight]`
//! format used by SNAP and the Laboratory for Web Algorithmics exports
//! (the paper's data sources), with `#` / `%` comment lines.  The binary
//! format is a straightforward little-endian CSR dump so that the analog
//! graphs used by the benchmark harness can be generated once and
//! memory-mapped-fast reloaded.

use std::io::{BufRead, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::{GraphError, VertexId};

const MAGIC: &[u8; 4] = b"FMG1";

/// Options controlling text edge-list parsing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Mirror each edge (treat the input as undirected).
    pub symmetric: bool,
    /// Drop duplicate edges after symmetrization.
    pub dedup: bool,
    /// Drop self-loops.
    pub drop_self_loops: bool,
    /// Renumber vertices densely, removing isolated IDs.
    pub compact: bool,
}

/// Parses a text edge list from any reader.
///
/// Blank lines and lines starting with `#` or `%` are skipped.  A third
/// column, if present, is ignored (weights in text inputs are not
/// round-tripped; use the binary format for weighted graphs).
pub fn parse_edge_list<R: BufRead>(reader: R, opts: ParseOptions) -> Result<Csr, GraphError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let s = parse_vid(parts.next(), idx + 1)?;
        let t = parse_vid(parts.next(), idx + 1)?;
        builder.add_edge(s, t);
    }
    builder
        .symmetric(opts.symmetric)
        .dedup(opts.dedup)
        .drop_self_loops(opts.drop_self_loops)
        .compact(opts.compact)
        .build()
}

fn parse_vid(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex IDs".into(),
    })?;
    tok.parse::<VertexId>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {tok:?}: {e}"),
    })
}

/// Reads a text edge list from a file.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, opts: ParseOptions) -> Result<Csr, GraphError> {
    let path = path.as_ref();
    let file =
        std::fs::File::open(path).map_err(|e| GraphError::io_at(path, None, e))?;
    parse_edge_list(std::io::BufReader::new(file), opts)
}

/// Writes a graph as a text edge list (one `src dst` pair per line).
pub fn write_edge_list<W: Write>(graph: &Csr, mut writer: W) -> Result<(), GraphError> {
    for (s, t) in graph.edges() {
        writeln!(writer, "{s} {t}")?;
    }
    Ok(())
}

/// Encodes a graph into the binary CSR format.
pub fn encode_binary(graph: &Csr) -> Vec<u8> {
    let weighted = graph.is_weighted();
    let mut buf = Vec::with_capacity(
        4 + 1 + 16 + (graph.vertex_count() + 1) * 8 + graph.edge_count() * 4,
    );
    buf.extend_from_slice(MAGIC);
    buf.push(weighted as u8);
    buf.extend_from_slice(&(graph.vertex_count() as u64).to_le_bytes());
    buf.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    for &o in graph.offsets() {
        buf.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &t in graph.targets() {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    if weighted {
        for v in 0..graph.vertex_count() {
            for &w in graph.edge_weights(v as VertexId).expect("weighted") {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    buf
}

/// A little-endian read cursor over a byte slice.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let mut bytes = [0u8; N];
        bytes.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        bytes
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

/// Decodes a graph from the binary CSR format.
pub fn decode_binary(data: &[u8]) -> Result<Csr, GraphError> {
    if data.len() < 21 {
        return Err(GraphError::Format("truncated header".into()));
    }
    let mut r = Reader { data, pos: 0 };
    if &r.take::<4>() != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let weighted = match r.take::<1>()[0] {
        0 => false,
        1 => true,
        b => return Err(GraphError::Format(format!("bad weight flag {b}"))),
    };
    let vcount64 = u64::from_le_bytes(r.take());
    let ecount64 = u64::from_le_bytes(r.take());
    // Checked arithmetic: a hostile header can carry counts whose byte
    // size overflows usize, which with wrapping math would pass the
    // length check and then panic (or over-allocate) below.
    let need = vcount64
        .checked_add(1)
        .and_then(|v| v.checked_mul(8))
        .and_then(|v| {
            let per_edge = if weighted { 8u64 } else { 4u64 };
            ecount64.checked_mul(per_edge).and_then(|e| v.checked_add(e))
        })
        .filter(|&n| n <= usize::MAX as u64)
        .ok_or_else(|| {
            GraphError::Format(format!(
                "header counts overflow: {vcount64} vertices, {ecount64} edges"
            ))
        })?;
    if (r.remaining() as u64) < need {
        return Err(GraphError::Format(format!(
            "need {need} payload bytes, have {}",
            r.remaining()
        )));
    }
    let vcount = vcount64 as usize;
    let ecount = ecount64 as usize;
    let mut offsets = Vec::with_capacity(vcount + 1);
    for _ in 0..=vcount {
        offsets.push(u64::from_le_bytes(r.take()) as usize);
    }
    let mut targets = Vec::with_capacity(ecount);
    for _ in 0..ecount {
        targets.push(u32::from_le_bytes(r.take()));
    }
    let weights = weighted.then(|| {
        (0..ecount)
            .map(|_| f32::from_le_bytes(r.take()))
            .collect()
    });
    Csr::from_parts(offsets, targets, weights)
}

/// Saves a graph to a binary file.
pub fn save_binary<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<(), GraphError> {
    let path = path.as_ref();
    let bytes = encode_binary(graph);
    let mut f =
        std::fs::File::create(path).map_err(|e| GraphError::io_at(path, None, e))?;
    f.write_all(&bytes)
        .map_err(|e| GraphError::io_at(path, None, e))?;
    Ok(())
}

/// Loads a graph from a binary file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Csr, GraphError> {
    let path = path.as_ref();
    let mut f =
        std::fs::File::open(path).map_err(|e| GraphError::io_at(path, None, e))?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)
        .map_err(|e| GraphError::io_at(path, None, e))?;
    decode_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn parse_basic_edge_list() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = parse_edge_list(text.as_bytes(), ParseOptions::default()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn parse_with_options() {
        let text = "5 7\n7 5\n5 5\n";
        let opts = ParseOptions {
            symmetric: true,
            dedup: true,
            drop_self_loops: true,
            compact: true,
        };
        let g = parse_edge_list(text.as_bytes(), opts).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_third_column_ignored() {
        let text = "0 1 0.5\n1 0 2.0\n";
        let g = parse_edge_list(text.as_bytes(), ParseOptions::default()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        let err = parse_edge_list(text.as_bytes(), ParseOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn parse_missing_column() {
        let err = parse_edge_list("42\n".as_bytes(), ParseOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn text_roundtrip() {
        let g = synth::power_law(100, 2.0, 1, 20, 5);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = parse_edge_list(&out[..], ParseOptions::default()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = synth::rmat(6, 4, 0.57, 0.19, 0.19, 2);
        let bytes = encode_binary(&g);
        let g2 = decode_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let g = Csr::from_parts(vec![0, 2, 3], vec![1, 1, 0], Some(vec![1.0, 2.5, -3.0])).unwrap();
        let bytes = encode_binary(&g);
        let g2 = decode_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = synth::cycle(4);
        let bytes = encode_binary(&g);
        assert!(decode_binary(&bytes[..10]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_binary(&bad).is_err());
        bad = bytes.to_vec();
        bad[4] = 7; // bad weight flag
        assert!(decode_binary(&bad).is_err());
    }

    #[test]
    fn binary_rejects_oversized_counts_without_allocating() {
        // A header claiming u64::MAX vertices must fail cleanly: with
        // wrapping arithmetic the byte-size computation overflows, the
        // length check passes, and decoding panics or over-allocates.
        let g = synth::cycle(4);
        let mut bytes = encode_binary(&g);
        bytes[5..13].copy_from_slice(&u64::MAX.to_le_bytes()); // vcount
        assert!(matches!(decode_binary(&bytes), Err(GraphError::Format(_))));
        let mut bytes = encode_binary(&g);
        bytes[13..21].copy_from_slice(&(u64::MAX / 2).to_le_bytes()); // ecount
        assert!(matches!(decode_binary(&bytes), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_every_truncation() {
        let g = synth::power_law(40, 2.0, 1, 8, 3);
        let bytes = encode_binary(&g);
        for len in 0..bytes.len() {
            assert!(
                decode_binary(&bytes[..len]).is_err(),
                "truncation to {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn fuzz_corrupt_headers_never_panic() {
        // ~50 seeded header mutations: every outcome must be a clean
        // Err or a structurally valid Csr — never a panic or a wild
        // allocation.  A tiny inline LCG keeps the crate dependency-free.
        let g = synth::power_law(60, 2.0, 1, 12, 11);
        let bytes = encode_binary(&g);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..50 {
            let mut m = bytes.clone();
            let header_len = 21.min(m.len());
            match next() % 3 {
                0 => {
                    // Flip one random header byte.
                    let i = (next() as usize) % header_len;
                    m[i] ^= 1 << (next() % 8);
                }
                1 => {
                    // Overwrite a count field with a random u64.
                    let field = if next() % 2 == 0 { 5 } else { 13 };
                    let v = next() | (next() << 31);
                    m[field..field + 8].copy_from_slice(&v.to_le_bytes());
                }
                _ => {
                    // Truncate somewhere inside the header or payload.
                    let len = (next() as usize) % m.len();
                    m.truncate(len);
                }
            }
            // Must not panic; Ok is acceptable only if the mutation was
            // semantically neutral and the graph still validates.
            if let Ok(decoded) = decode_binary(&m) {
                assert!(decoded.vertex_count() <= g.vertex_count() + 1, "case {case}");
            }
        }
    }

    #[test]
    fn io_errors_carry_paths() {
        let missing = std::path::Path::new("/nonexistent/fm-graph-io-test/g.bin");
        let err = load_binary(missing).unwrap_err();
        match &err {
            GraphError::IoAt { path, .. } => assert_eq!(path, missing),
            other => panic!("expected IoAt, got {other}"),
        }
        assert!(err.to_string().contains("/nonexistent/fm-graph-io-test/g.bin"));
        assert!(err.io_source().is_some());
    }

    #[test]
    fn file_roundtrip() {
        let g = synth::power_law(50, 2.0, 1, 10, 8);
        let dir = std::env::temp_dir().join("fm_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(path).ok();
    }
}
