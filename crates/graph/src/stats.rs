//! Degree-percentile statistics (the machinery behind the paper's Table 2).
//!
//! Table 2 groups each graph's vertices into four buckets by degree
//! percentile — top <1%, 1%~5%, 5%~25%, 25%~100% — and reports each
//! bucket's average degree, share of total edges, and share of walker
//! visits.  These statistics justify FlashMob's frequency-aware grouping:
//! the top 5% of vertices attract 45-70% of all visits.

use crate::csr::Csr;
use crate::VertexId;

/// The paper's four degree-percentile bucket boundaries (fractions of
/// |V|, cumulative, over the degree-descending vertex order).
pub const TABLE2_BUCKETS: [f64; 4] = [0.01, 0.05, 0.25, 1.0];

/// Statistics for one degree-percentile bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStats {
    /// Upper cumulative fraction of vertices this bucket ends at.
    pub upper_fraction: f64,
    /// Number of vertices in the bucket.
    pub vertex_count: usize,
    /// Average out-degree within the bucket (the paper's `D̄`).
    pub avg_degree: f64,
    /// Fraction of all edges owned by the bucket (the paper's `|E|` row).
    pub edge_share: f64,
    /// Fraction of all walker visits landing in the bucket (the paper's
    /// `|W|` row); `None` when no visit counts were supplied.
    pub visit_share: Option<f64>,
}

/// Computes per-bucket statistics for a graph.
///
/// `visits[v]` — if provided — is the number of walker-steps that departed
/// from vertex `v`.  `boundaries` is a cumulative fraction list like
/// [`TABLE2_BUCKETS`]; it must be strictly increasing and end at 1.0.
///
/// The graph does *not* need to be pre-sorted by degree: the function
/// ranks vertices internally (stable, degree-descending), matching how
/// the paper assigns percentiles.
///
/// # Panics
///
/// Panics if `boundaries` is malformed or `visits` has the wrong length.
pub fn degree_group_stats(
    graph: &Csr,
    visits: Option<&[u64]>,
    boundaries: &[f64],
) -> Vec<BucketStats> {
    assert!(!boundaries.is_empty(), "need at least one bucket");
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "boundaries must be strictly increasing"
    );
    assert!(
        (boundaries.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-12,
        "last boundary must be 1.0"
    );
    if let Some(v) = visits {
        assert_eq!(v.len(), graph.vertex_count(), "visits length must be |V|");
    }

    let n = graph.vertex_count();
    if n == 0 {
        return boundaries
            .iter()
            .map(|&b| BucketStats {
                upper_fraction: b,
                vertex_count: 0,
                avg_degree: 0.0,
                edge_share: 0.0,
                visit_share: visits.map(|_| 0.0),
            })
            .collect();
    }

    // Rank vertices by descending degree (stable).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    let total_edges = graph.edge_count().max(1) as f64;
    let total_visits = visits.map(|v| v.iter().sum::<u64>().max(1) as f64);

    let mut out = Vec::with_capacity(boundaries.len());
    let mut start = 0usize;
    for &b in boundaries {
        // Bucket covers ranked vertices [start, end); ensure the final
        // bucket absorbs rounding leftovers.
        let end = if (b - 1.0).abs() < 1e-12 {
            n
        } else {
            ((n as f64 * b).round() as usize).clamp(start, n)
        };
        let members = &order[start..end];
        let edge_sum: usize = members.iter().map(|&v| graph.degree(v)).sum();
        let visit_sum: Option<u64> = visits.map(|vs| members.iter().map(|&v| vs[v as usize]).sum());
        out.push(BucketStats {
            upper_fraction: b,
            vertex_count: members.len(),
            avg_degree: if members.is_empty() {
                0.0
            } else {
                edge_sum as f64 / members.len() as f64
            },
            edge_share: edge_sum as f64 / total_edges,
            visit_share: visit_sum
                .map(|s| s as f64 / total_visits.expect("set together with visits")),
        });
        start = end;
    }
    out
}

/// Fraction of vertices whose out-degree equals `d`.
pub fn degree_fraction(graph: &Csr, d: usize) -> f64 {
    if graph.vertex_count() == 0 {
        return 0.0;
    }
    let hits = (0..graph.vertex_count())
        .filter(|&v| graph.degree(v as VertexId) == d)
        .count();
    hits as f64 / graph.vertex_count() as f64
}

/// Average out-degree of the whole graph.
pub fn avg_degree(graph: &Csr) -> f64 {
    if graph.vertex_count() == 0 {
        return 0.0;
    }
    graph.edge_count() as f64 / graph.vertex_count() as f64
}

/// Estimates the graph's effective diameter by BFS from `samples` seed
/// vertices, returning the maximum distance observed.
///
/// The paper uses estimated diameter to explain UK's stronger locality
/// (Section 5.2: UK diameter ≈ 147 vs FS ≈ 32).
pub fn estimate_diameter(graph: &Csr, samples: usize, seed: u64) -> usize {
    use fm_rng::{Rng64, Xorshift64Star};
    let n = graph.vertex_count();
    if n == 0 {
        return 0;
    }
    let mut rng = Xorshift64Star::new(seed);
    let mut best = 0usize;
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for _ in 0..samples {
        let src = rng.gen_index(n) as VertexId;
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            best = best.max(du as usize);
            for &w in graph.neighbors(u) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    queue.push_back(w);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn buckets_partition_all_vertices() {
        let g = synth::power_law(1000, 2.0, 1, 100, 1);
        let stats = degree_group_stats(&g, None, &TABLE2_BUCKETS);
        assert_eq!(stats.len(), 4);
        let total: usize = stats.iter().map(|b| b.vertex_count).sum();
        assert_eq!(total, 1000);
        let edge_total: f64 = stats.iter().map(|b| b.edge_share).sum();
        assert!((edge_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn avg_degree_decreases_across_buckets() {
        let g = synth::power_law(5000, 2.1, 1, 500, 2);
        let stats = degree_group_stats(&g, None, &TABLE2_BUCKETS);
        for w in stats.windows(2) {
            assert!(
                w[0].avg_degree >= w[1].avg_degree,
                "{} < {}",
                w[0].avg_degree,
                w[1].avg_degree
            );
        }
    }

    #[test]
    fn skewed_graph_concentrates_edges_on_top_bucket() {
        let g = synth::power_law(10_000, 2.0, 1, 1000, 3);
        let stats = degree_group_stats(&g, None, &TABLE2_BUCKETS);
        // Top 5% of vertices should own a large minority of edges.
        assert!(stats[0].edge_share + stats[1].edge_share > 0.3);
        // Bottom 75% should own well under half.
        assert!(stats[3].edge_share < 0.5);
    }

    #[test]
    fn visit_share_follows_supplied_counts() {
        let g = synth::star(10); // vertex 0 is the hub
        let mut visits = vec![1u64; 10];
        visits[0] = 91; // hub gets 91 of 100 visits
        let stats = degree_group_stats(&g, Some(&visits), &[0.1, 1.0]);
        // Hub is the top-degree vertex -> first bucket.
        assert_eq!(stats[0].vertex_count, 1);
        assert!((stats[0].visit_share.unwrap() - 0.91).abs() < 1e-9);
        assert!((stats[1].visit_share.unwrap() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn uniform_graph_spreads_edges_by_count() {
        let g = synth::regular_ring(1000, 4);
        let stats = degree_group_stats(&g, None, &TABLE2_BUCKETS);
        assert!((stats[3].edge_share - 0.75).abs() < 0.01);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = crate::csr::Csr::from_edges(0, &[]).unwrap();
        let stats = degree_group_stats(&g, None, &TABLE2_BUCKETS);
        assert!(stats.iter().all(|b| b.vertex_count == 0));
    }

    #[test]
    fn diameter_of_cycle() {
        let g = synth::cycle(20);
        assert_eq!(estimate_diameter(&g, 4, 1), 10);
    }

    #[test]
    fn degree_fraction_counts() {
        let g = synth::star(5);
        assert!((degree_fraction(&g, 1) - 0.8).abs() < 1e-12);
        assert!((degree_fraction(&g, 4) - 0.2).abs() < 1e-12);
    }
}
