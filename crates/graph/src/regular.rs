//! Direct-indexed storage for uniform-degree vertex ranges.
//!
//! Real-world graphs' long tails produce huge runs of equal-degree
//! vertices once sorted by degree (degree-1 vertices alone make up 3.5% to
//! 49.3% of the paper's five graphs).  For a partition whose vertices all
//! share one degree `d`, CSR's offsets array is pure overhead: the
//! adjacency list of the partition's `i`-th vertex simply starts at
//! `i * d`.  Dropping the offsets both halves the random reads per sample
//! (no degree lookup) and shrinks the working set — the paper measures
//! 13-33% fewer L2/L3 misses from this layout (Section 5.2).

use crate::csr::Csr;
use crate::VertexId;

/// Adjacency storage for a contiguous vertex range of uniform out-degree.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedDegreeSlab {
    /// First vertex ID covered by this slab (in the sorted ID space).
    base: VertexId,
    /// Number of vertices covered.
    vertex_count: usize,
    /// The shared out-degree.
    degree: usize,
    /// Flattened targets: vertex `base + i` owns `targets[i*d .. (i+1)*d]`.
    targets: Vec<VertexId>,
}

impl FixedDegreeSlab {
    /// Extracts the slab for `graph`'s vertices `[base, base + count)`.
    ///
    /// Returns `None` if any vertex in the range deviates from the degree
    /// of the first one (the range is not uniform).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the graph.
    pub fn from_csr(graph: &Csr, base: VertexId, count: usize) -> Option<Self> {
        assert!(count > 0, "slab range must be non-empty");
        assert!(
            base as usize + count <= graph.vertex_count(),
            "slab range exceeds graph"
        );
        let degree = graph.degree(base);
        let mut targets = Vec::with_capacity(count * degree);
        for i in 0..count {
            let v = base + i as VertexId;
            if graph.degree(v) != degree {
                return None;
            }
            targets.extend_from_slice(graph.neighbors(v));
        }
        Some(Self {
            base,
            vertex_count: count,
            degree,
            targets,
        })
    }

    /// First vertex covered.
    #[inline]
    pub fn base(&self) -> VertexId {
        self.base
    }

    /// Number of vertices covered.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// The uniform out-degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Out-neighbors of the vertex with global ID `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the slab's range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = (v - self.base) as usize;
        assert!(i < self.vertex_count, "vertex outside slab");
        &self.targets[i * self.degree..(i + 1) * self.degree]
    }

    /// The `k`-th out-neighbor of global vertex `v`, by pure arithmetic —
    /// the single-random-access sampling path that motivates this layout.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-range `v` or `k`.
    #[inline]
    pub fn neighbor(&self, v: VertexId, k: usize) -> VertexId {
        let i = (v - self.base) as usize;
        debug_assert!(i < self.vertex_count && k < self.degree);
        self.targets[i * self.degree + k]
    }

    /// Flat targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Heap footprint in bytes: note the absence of any offsets array.
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_graph() -> Csr {
        // 4 vertices, all degree 2.
        Csr::from_edges(
            4,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 0),
                (3, 0),
                (3, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn extracts_uniform_range() {
        let g = uniform_graph();
        let slab = FixedDegreeSlab::from_csr(&g, 0, 4).unwrap();
        assert_eq!(slab.degree(), 2);
        assert_eq!(slab.vertex_count(), 4);
        for v in 0..4 {
            assert_eq!(slab.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn arithmetic_indexing_matches_csr() {
        let g = uniform_graph();
        let slab = FixedDegreeSlab::from_csr(&g, 1, 3).unwrap();
        for v in 1..4u32 {
            for k in 0..2 {
                assert_eq!(slab.neighbor(v, k), g.neighbors(v)[k]);
            }
        }
    }

    #[test]
    fn rejects_nonuniform_range() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 0), (2, 0)]).unwrap();
        assert!(FixedDegreeSlab::from_csr(&g, 0, 3).is_none());
        assert!(FixedDegreeSlab::from_csr(&g, 1, 2).is_some());
    }

    #[test]
    fn footprint_has_no_offsets() {
        let g = uniform_graph();
        let slab = FixedDegreeSlab::from_csr(&g, 0, 4).unwrap();
        assert_eq!(slab.footprint_bytes(), 8 * std::mem::size_of::<VertexId>());
        assert!(slab.footprint_bytes() < g.footprint_bytes());
    }

    #[test]
    #[should_panic(expected = "slab range exceeds graph")]
    fn out_of_range_panics() {
        let g = uniform_graph();
        let _ = FixedDegreeSlab::from_csr(&g, 2, 3);
    }

    #[test]
    fn degree_one_slab() {
        let g = Csr::from_edges(3, &[(0, 2), (1, 2), (2, 0)]).unwrap();
        let slab = FixedDegreeSlab::from_csr(&g, 0, 2).unwrap();
        assert_eq!(slab.degree(), 1);
        assert_eq!(slab.neighbor(0, 0), 2);
        assert_eq!(slab.neighbor(1, 0), 2);
    }
}
