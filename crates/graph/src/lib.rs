//! Graph storage, generation, IO, and statistics for FlashMob-RS.
//!
//! This crate provides every graph-side substrate the FlashMob paper
//! depends on:
//!
//! * [`csr::Csr`] — the standard Compressed Sparse Row layout used by all
//!   engines for general (irregular-degree) vertex ranges.
//! * [`regular::FixedDegreeSlab`] — the simplified direct-indexed layout
//!   FlashMob uses for uniform-degree low-degree partitions (Section 4.2,
//!   "DS allows FlashMob to exploit ... simpler indexing").
//! * [`relabel`] — degree-descending vertex relabeling via O(|V| + D)
//!   counting sort (Section 4.1, "Vertex ordering"; Section 5.2 reports
//!   7.7 s for the 6.6B-edge YahooWeb graph).
//! * [`builder::GraphBuilder`] — edge-list accumulation with optional
//!   deduplication and symmetrization.
//! * [`synth`] — synthetic generators: configuration-model power-law
//!   graphs, R-MAT, regular rings, stars, paths, completes.
//! * [`presets`] — scaled-down analogs of the paper's five evaluation
//!   graphs (Table 4) plus the cache-sized toy graphs of Figure 1.
//! * [`stats`] — the degree-percentile bucket machinery behind Table 2.
//! * [`io`] — text edge-list parsing and a compact binary format.

pub mod bloom;
pub mod builder;
pub mod csr;
pub mod io;
pub mod presets;
pub mod regular;
pub mod relabel;
pub mod stats;
pub mod synth;
pub mod transform;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use regular::FixedDegreeSlab;

/// Vertex identifier.
///
/// `u32` covers every graph in the paper's evaluation except raw YahooWeb
/// (720M vertices still fits); it halves walker-array traffic relative to
/// `u64`, which is exactly the compactness the paper's shuffle stage
/// depends on.
pub type VertexId = u32;

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex ID outside `[0, |V|)`.
    VertexOutOfRange {
        /// The offending vertex ID.
        vid: u64,
        /// The number of vertices in the graph.
        vertex_count: u64,
    },
    /// The graph would exceed the `VertexId` address space.
    TooManyVertices(u64),
    /// A text edge list failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Binary format corruption.
    Format(String),
    /// An underlying IO failure.
    Io(std::io::Error),
    /// An IO failure with the file (and, when known, offset) attached.
    IoAt {
        /// The file being read or written.
        path: std::path::PathBuf,
        /// Byte offset of the failed access, when known.
        offset: Option<u64>,
        /// The underlying IO error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vid, vertex_count } => {
                write!(f, "vertex {vid} out of range (|V| = {vertex_count})")
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the u32 vertex ID space")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(m) => write!(f, "bad binary graph: {m}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::IoAt {
                path,
                offset,
                source,
            } => match offset {
                Some(off) => write!(
                    f,
                    "io error at {} (offset {off}): {source}",
                    path.display()
                ),
                None => write!(f, "io error at {}: {source}", path.display()),
            },
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::IoAt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl GraphError {
    /// Attaches a file path (and optional byte offset) to an IO error.
    pub fn io_at(
        path: impl Into<std::path::PathBuf>,
        offset: Option<u64>,
        source: std::io::Error,
    ) -> Self {
        GraphError::IoAt {
            path: path.into(),
            offset,
            source,
        }
    }

    /// The underlying `io::Error`, if this is an IO failure.
    pub fn io_source(&self) -> Option<&std::io::Error> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::IoAt { source, .. } => Some(source),
            _ => None,
        }
    }
}
