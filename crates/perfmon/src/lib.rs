//! Hardware performance-counter groups over raw `perf_event_open`.
//!
//! The repo's cache-efficiency claims are otherwise backed by two
//! proxies — the software hierarchy simulator (`fm-memsim`) and
//! wall-clock stage timers (`fm-telemetry`).  This crate adds the
//! ground truth: real cycles, instructions, LLC and dTLB traffic,
//! read from the PMU around the same stage boundaries the telemetry
//! spans already mark.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.**  The workspace builds without network
//!    access, so the `perf_event_open(2)` ABI is declared by hand in
//!    [`mod@syscall`] — the only module in the workspace allowed to
//!    issue raw syscalls (enforced by the `perf-syscall` audit lint).
//! 2. **Graceful degradation.**  Containers, CI runners, and non-Linux
//!    hosts usually refuse perf access (`perf_event_paranoid`, seccomp,
//!    or no PMU at all).  Every entry point funnels that into
//!    [`PerfError::Unsupported`]; callers run identically with the
//!    feature absent, and every test in the workspace passes without
//!    perf access.
//! 3. **RAII.**  A [`CounterGroup`] owns its descriptors; drop closes
//!    them.  Counters are per-thread (`pid=0, cpu=-1`, no inherit), so
//!    a group measures exactly the thread that created it — the
//!    engine's coordinator thread, in practice.
//!
//! Events that the host PMU cannot schedule (LLC events under many
//! hypervisors, stalled-cycles on most aarch64 parts) are marked
//! unavailable per event rather than failing the group; reads report
//! zero for them and [`CounterGroup::available`] says so.

mod syscall;

use std::fmt;

/// The fixed event set every group requests, in read order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwEvent {
    /// Retired CPU cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    Cycles,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    Instructions,
    /// Last-level cache read accesses (`LL | READ | ACCESS`).
    LlcLoads,
    /// Last-level cache read misses (`LL | READ | MISS`).
    LlcMisses,
    /// Data-TLB read misses (`DTLB | READ | MISS`).
    DtlbMisses,
    /// Backend stall cycles (`PERF_COUNT_HW_STALLED_CYCLES_BACKEND`).
    StalledBackend,
}

const TYPE_HARDWARE: u32 = 0;
const TYPE_HW_CACHE: u32 = 3;

impl HwEvent {
    /// Number of events in the fixed set.
    pub const COUNT: usize = 6;

    /// All events, in the order counters are laid out in [`HwCounters`].
    pub const ALL: [HwEvent; HwEvent::COUNT] = [
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::LlcLoads,
        HwEvent::LlcMisses,
        HwEvent::DtlbMisses,
        HwEvent::StalledBackend,
    ];

    /// Dense index into [`HwCounters::counts`].
    pub fn index(self) -> usize {
        match self {
            HwEvent::Cycles => 0,
            HwEvent::Instructions => 1,
            HwEvent::LlcLoads => 2,
            HwEvent::LlcMisses => 3,
            HwEvent::DtlbMisses => 4,
            HwEvent::StalledBackend => 5,
        }
    }

    /// Stable snake_case label used by exporters and reports.
    pub fn label(self) -> &'static str {
        match self {
            HwEvent::Cycles => "cycles",
            HwEvent::Instructions => "instructions",
            HwEvent::LlcLoads => "llc_loads",
            HwEvent::LlcMisses => "llc_misses",
            HwEvent::DtlbMisses => "dtlb_misses",
            HwEvent::StalledBackend => "stalled_backend",
        }
    }

    /// The `perf_event_attr` (type, config) pair for this event.
    ///
    /// Cache configs encode `id | (op << 8) | (result << 16)` per
    /// `perf_event.h`: LL=2, DTLB=3; op READ=0; result ACCESS=0,
    /// MISS=1.
    fn spec(self) -> (u32, u64) {
        match self {
            HwEvent::Cycles => (TYPE_HARDWARE, 0),
            HwEvent::Instructions => (TYPE_HARDWARE, 1),
            HwEvent::LlcLoads => (TYPE_HW_CACHE, 0x2),
            HwEvent::LlcMisses => (TYPE_HW_CACHE, 0x1_0002),
            HwEvent::DtlbMisses => (TYPE_HW_CACHE, 0x1_0003),
            HwEvent::StalledBackend => (TYPE_HARDWARE, 8),
        }
    }
}

/// Why hardware counters could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// The host cannot provide counters at all (non-Linux, seccomp,
    /// `perf_event_paranoid`, no PMU).  The documented contract is that
    /// callers treat this as "run without counters", never as failure.
    Unsupported {
        /// Human-readable cause, suitable for a one-line notice.
        reason: String,
    },
    /// A counter existed but an operation on it failed (should not
    /// happen on a healthy kernel; surfaced rather than hidden).
    Io {
        /// The operation that failed (`"read"`, `"ioctl"`, ...).
        op: &'static str,
        /// The failing OS error, formatted.
        msg: String,
    },
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Unsupported { reason } => {
                write!(f, "hardware counters unavailable: {reason}")
            }
            PerfError::Io { op, msg } => write!(f, "perf {op} failed: {msg}"),
        }
    }
}

impl std::error::Error for PerfError {}

fn io_err(op: &'static str, e: std::io::Error) -> PerfError {
    PerfError::Io {
        op,
        msg: e.to_string(),
    }
}

/// A set of counter deltas (or totals), one slot per [`HwEvent`].
///
/// Values are raw counts — **not** rescaled for multiplexing.  The
/// enabled/running times ride along so consumers can compute the
/// multiplex fraction themselves (`time_running_ns < time_enabled_ns`
/// means the PMU rotated the group out part of the time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// Raw counts, indexed by [`HwEvent::index`].
    pub counts: [u64; HwEvent::COUNT],
    /// Wall time the group was enabled, in nanoseconds.
    pub time_enabled_ns: u64,
    /// Wall time the group was actually counting, in nanoseconds.
    pub time_running_ns: u64,
}

impl HwCounters {
    /// The count for one event.
    pub fn get(&self, e: HwEvent) -> u64 {
        self.counts[e.index()]
    }

    /// Accumulates another delta into this one.
    pub fn add(&mut self, other: &HwCounters) {
        for i in 0..HwEvent::COUNT {
            self.counts[i] += other.counts[i];
        }
        self.time_enabled_ns += other.time_enabled_ns;
        self.time_running_ns += other.time_running_ns;
    }

    /// True if every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// LLC read miss rate (`llc_misses / llc_loads`), if loads were
    /// observed.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        let loads = self.get(HwEvent::LlcLoads);
        if loads == 0 {
            None
        } else {
            Some(self.get(HwEvent::LlcMisses) as f64 / loads as f64)
        }
    }

    /// Instructions per cycle, if cycles were observed.
    pub fn ipc(&self) -> Option<f64> {
        let cycles = self.get(HwEvent::Cycles);
        if cycles == 0 {
            None
        } else {
            Some(self.get(HwEvent::Instructions) as f64 / cycles as f64)
        }
    }

    /// Fraction of enabled time the group was actually counting
    /// (1.0 = never multiplexed), if it was enabled at all.
    pub fn running_fraction(&self) -> Option<f64> {
        if self.time_enabled_ns == 0 {
            None
        } else {
            Some(self.time_running_ns as f64 / self.time_enabled_ns as f64)
        }
    }
}

/// A raw totals snapshot, used to form deltas between two reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct Snapshot {
    raw: [u64; HwEvent::COUNT],
    time_enabled_ns: u64,
    time_running_ns: u64,
}

/// An open, per-thread group of hardware counters (RAII: descriptors
/// close on drop).
///
/// The group is created **disabled**; call [`CounterGroup::enable`] to
/// start counting.  All reads return totals since the last
/// [`CounterGroup::reset`] (or creation); [`CounterGroup::delta_since`]
/// turns consecutive reads into per-interval deltas.
pub struct CounterGroup {
    leader: syscall::RawFd,
    /// Every owned fd, leader first.
    fds: Vec<syscall::RawFd>,
    /// Kernel counter ID -> event index, for group-read slot matching.
    ids: Vec<(u64, usize)>,
    available: [bool; HwEvent::COUNT],
}

impl CounterGroup {
    /// Opens the standard six-event group for the calling thread.
    ///
    /// Per-event failures (a PMU without LLC events, say) degrade that
    /// event to "unavailable"; only a host that can schedule **no**
    /// hardware event at all — or refuses permission outright — yields
    /// [`PerfError::Unsupported`].
    pub fn standard() -> Result<Self, PerfError> {
        let mut group = CounterGroup {
            leader: -1,
            fds: Vec::new(),
            ids: Vec::new(),
            available: [false; HwEvent::COUNT],
        };
        let mut last_err: Option<std::io::Error> = None;
        for ev in HwEvent::ALL {
            let (type_, config) = ev.spec();
            let is_leader = group.leader < 0;
            let parent = if is_leader { -1 } else { group.leader };
            match syscall::open(type_, config, parent, is_leader) {
                Ok(fd) => {
                    if is_leader {
                        group.leader = fd;
                    }
                    group.fds.push(fd);
                    group.available[ev.index()] = true;
                    match syscall::id(fd) {
                        Ok(id) => group.ids.push((id, ev.index())),
                        Err(e) => return Err(io_err("ioctl(ID)", e)),
                    }
                }
                Err(e) => {
                    // Permission-shaped errors mean no event will ever
                    // open; stop probing and report the degradation.
                    let errno = e.raw_os_error();
                    let fatal = matches!(errno, Some(1) /* EPERM */ | Some(13) /* EACCES */ | Some(38) /* ENOSYS */)
                        || e.kind() == std::io::ErrorKind::Unsupported;
                    if fatal {
                        return Err(PerfError::Unsupported {
                            reason: format!("perf_event_open({}): {e}", ev.label()),
                        });
                    }
                    last_err = Some(e);
                }
            }
        }
        if group.leader < 0 {
            let detail = last_err
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no events attempted".to_string());
            return Err(PerfError::Unsupported {
                reason: format!("no hardware event could be opened ({detail})"),
            });
        }
        Ok(group)
    }

    /// Whether this event opened on this host.
    pub fn available(&self, e: HwEvent) -> bool {
        self.available[e.index()]
    }

    /// Events that opened, in canonical order.
    pub fn available_events(&self) -> Vec<HwEvent> {
        HwEvent::ALL
            .into_iter()
            .filter(|e| self.available(*e))
            .collect()
    }

    /// Starts (or restarts) the whole group.
    pub fn enable(&self) -> Result<(), PerfError> {
        syscall::enable_group(self.leader).map_err(|e| io_err("ioctl(ENABLE)", e))
    }

    /// Stops the whole group; totals freeze until re-enabled.
    pub fn disable(&self) -> Result<(), PerfError> {
        syscall::disable_group(self.leader).map_err(|e| io_err("ioctl(DISABLE)", e))
    }

    /// Zeroes every counter in the group (times are not reset by the
    /// kernel; use deltas for intervals).
    pub fn reset(&self) -> Result<(), PerfError> {
        syscall::reset_group(self.leader).map_err(|e| io_err("ioctl(RESET)", e))
    }

    /// Reads current totals for the whole group.
    pub fn snapshot(&self) -> Result<Snapshot, PerfError> {
        // [nr, time_enabled, time_running] + (value, id) per event.
        let mut buf = [0u64; 3 + HwEvent::COUNT * syscall::READ_FORMAT_WORDS_PER_EVENT];
        let words = syscall::read_group(self.leader, &mut buf).map_err(|e| io_err("read", e))?;
        let nr = buf[0] as usize;
        if words < 3
            || nr > HwEvent::COUNT
            || 3 + nr * syscall::READ_FORMAT_WORDS_PER_EVENT > words
        {
            return Err(PerfError::Io {
                op: "read",
                msg: format!("short group read: {words} words for {nr} counters"),
            });
        }
        let mut snap = Snapshot {
            time_enabled_ns: buf[1],
            time_running_ns: buf[2],
            ..Snapshot::default()
        };
        for slot in 0..nr {
            let value = buf[3 + slot * 2];
            let id = buf[3 + slot * 2 + 1];
            if let Some(&(_, idx)) = self.ids.iter().find(|(i, _)| *i == id) {
                snap.raw[idx] = value;
            }
        }
        Ok(snap)
    }

    /// Reads the group and returns the delta since `prev`, then
    /// advances `prev` to the new reading.  Counts saturate at zero if
    /// the kernel ever reports a smaller total (reset between reads).
    pub fn delta_since(&self, prev: &mut Snapshot) -> Result<HwCounters, PerfError> {
        let now = self.snapshot()?;
        let mut delta = HwCounters {
            time_enabled_ns: now.time_enabled_ns.saturating_sub(prev.time_enabled_ns),
            time_running_ns: now.time_running_ns.saturating_sub(prev.time_running_ns),
            ..HwCounters::default()
        };
        for i in 0..HwEvent::COUNT {
            delta.counts[i] = now.raw[i].saturating_sub(prev.raw[i]);
        }
        *prev = now;
        Ok(delta)
    }
}

impl Drop for CounterGroup {
    fn drop(&mut self) {
        // Members first, leader last (closing the leader re-parents
        // siblings on old kernels; ordering avoids relying on that).
        for &fd in self.fds.iter().skip(1).chain(self.fds.first()) {
            syscall::close_quiet(fd);
        }
    }
}

/// True if this host can open hardware counters right now.
pub fn available() -> bool {
    CounterGroup::standard().is_ok()
}

/// `None` if counters work; otherwise the one-line degradation reason.
pub fn unavailable_reason() -> Option<String> {
    match CounterGroup::standard() {
        Ok(_) => None,
        Err(e) => Some(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_table_is_dense_and_labeled() {
        for (i, ev) in HwEvent::ALL.into_iter().enumerate() {
            assert_eq!(ev.index(), i);
            assert!(!ev.label().is_empty());
            let (type_, _) = ev.spec();
            assert!(type_ == TYPE_HARDWARE || type_ == TYPE_HW_CACHE);
        }
    }

    #[test]
    fn counters_arithmetic() {
        let mut a = HwCounters::default();
        assert!(a.is_zero());
        assert_eq!(a.llc_miss_rate(), None);
        assert_eq!(a.ipc(), None);
        let mut b = HwCounters::default();
        b.counts[HwEvent::Cycles.index()] = 100;
        b.counts[HwEvent::Instructions.index()] = 250;
        b.counts[HwEvent::LlcLoads.index()] = 10;
        b.counts[HwEvent::LlcMisses.index()] = 4;
        b.time_enabled_ns = 50;
        b.time_running_ns = 25;
        a.add(&b);
        a.add(&b);
        assert_eq!(a.get(HwEvent::Cycles), 200);
        assert_eq!(a.ipc(), Some(2.5));
        assert_eq!(a.llc_miss_rate(), Some(0.4));
        assert_eq!(a.running_fraction(), Some(0.5));
        assert!(!a.is_zero());
    }

    /// The cornerstone of the degradation contract: constructing a
    /// group never panics, and failure is always the typed
    /// `Unsupported` (containers and CI hosts routinely land here).
    #[test]
    fn standard_group_never_panics() {
        match CounterGroup::standard() {
            Ok(g) => {
                assert!(!g.available_events().is_empty());
                drop(g);
            }
            Err(PerfError::Unsupported { reason }) => {
                assert!(!reason.is_empty());
            }
            Err(other) => panic!("open must degrade to Unsupported, got {other}"),
        }
    }

    /// When counters do work, a busy loop must retire instructions and
    /// consecutive deltas must be monotone (non-negative).
    #[test]
    fn busy_loop_counts_instructions_when_available() {
        let Ok(group) = CounterGroup::standard() else {
            return; // degradation covered by standard_group_never_panics
        };
        group.enable().unwrap();
        let mut prev = group.snapshot().unwrap();
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let d1 = group.delta_since(&mut prev).unwrap();
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let d2 = group.delta_since(&mut prev).unwrap();
        group.disable().unwrap();
        if group.available(HwEvent::Instructions) {
            assert!(d1.get(HwEvent::Instructions) > 0, "busy loop retired nothing");
            assert!(d2.get(HwEvent::Instructions) > 0);
        }
    }

    #[test]
    fn availability_probes_agree() {
        assert_eq!(available(), unavailable_reason().is_none());
    }
}
