//! Raw `perf_event_open` syscall shim — the only file in the workspace
//! permitted to issue raw syscalls (the `perf-syscall` audit lint in
//! `crates/audit` confines the `syscall(` / `perf_event_open` tokens to
//! this module).  Everything here is a thin typed wrapper over four
//! kernel entry points: `perf_event_open(2)` itself (which has no libc
//! wrapper), plus `ioctl`/`read`/`close` on the returned descriptors.
//! No policy lives here; RAII ownership, event selection, and the
//! degradation contract are built one layer up in
//! [`crate::CounterGroup`].
//!
//! On non-Linux targets (and Linux architectures whose
//! `perf_event_open` syscall number we do not know) every function
//! returns `ErrorKind::Unsupported`, which the layer above folds into
//! [`crate::PerfError::Unsupported`] — callers degrade, never fail.

/// A raw perf file descriptor, valid on the thread that opened it.
pub(crate) type RawFd = i32;

#[cfg(target_os = "linux")]
pub(crate) use linux::*;
#[cfg(not(target_os = "linux"))]
pub(crate) use stub::*;

#[cfg(target_os = "linux")]
mod linux {
    use super::RawFd;
    use std::ffi::{c_int, c_long, c_ulong};
    use std::io;

    /// `perf_event_attr` at `PERF_ATTR_SIZE_VER0` (64 bytes).  Every
    /// field this crate needs — type/config, the read format, and the
    /// disabled/exclude bits — predates Linux 2.6.32, so pinning the
    /// oldest ABI revision keeps the struct accepted by every kernel
    /// (newer kernels zero-extend the tail).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    const ATTR_SIZE_VER0: u32 = 64;

    /// `PERF_FORMAT_TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING | ID |
    /// GROUP`: one group read returns `[nr, time_enabled, time_running,
    /// (value, id) * nr]`.
    pub(crate) const READ_FORMAT_WORDS_PER_EVENT: usize = 2;
    const READ_FORMAT: u64 = 0xF;

    // attr.flags is a C bitfield; bit order follows perf_event.h
    // declaration order (LSB first).
    const FLAG_DISABLED: u64 = 1 << 0;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    // ioctl request codes on perf descriptors: _IO('$', n), and
    // _IOR('$', 7, u64) for ID.
    const IOC_ENABLE: c_ulong = 0x2400;
    const IOC_DISABLE: c_ulong = 0x2401;
    const IOC_RESET: c_ulong = 0x2403;
    const IOC_ID: c_ulong = 0x8008_2407;
    /// Apply an enable/disable/reset to the whole group, not one fd.
    const IOC_FLAG_GROUP: c_ulong = 1;

    #[cfg(target_arch = "x86_64")]
    const NR_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(any(
        target_arch = "aarch64",
        target_arch = "riscv64",
        target_arch = "loongarch64"
    ))]
    const NR_PERF_EVENT_OPEN: c_long = 241;
    #[cfg(not(any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64",
        target_arch = "loongarch64"
    )))]
    const NR_PERF_EVENT_OPEN: c_long = -1;

    extern "C" {
        // std already links libc on every Linux target; declaring the
        // four symbols directly keeps the workspace free of external
        // crates.  SAFETY: the declarations match the libc prototypes,
        // and every call site documents its own kernel contract.
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn unsupported(what: &str) -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, what.to_string())
    }

    /// Opens one counter for the calling thread, on any CPU.
    ///
    /// `group_fd` is `-1` for a group leader (which is created
    /// disabled, so the group starts atomically on the first
    /// [`enable_group`]) or the leader's fd for a member (created
    /// enabled, slaved to the leader's state).
    pub(crate) fn open(type_: u32, config: u64, group_fd: RawFd, leader: bool) -> io::Result<RawFd> {
        if NR_PERF_EVENT_OPEN < 0 {
            return Err(unsupported("perf_event_open: unknown syscall number on this arch"));
        }
        let mut flags = FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV;
        if leader {
            flags |= FLAG_DISABLED;
        }
        let attr = PerfEventAttr {
            type_,
            size: ATTR_SIZE_VER0,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: READ_FORMAT,
            flags,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
        };
        // SAFETY: `attr` is a valid, fully initialised 64-byte struct
        // outliving the call (the kernel reads `attr.size` bytes); the
        // rest (pid=0, cpu=-1, group_fd, flags=0) are plain scalars.
        let fd = unsafe {
            syscall(
                NR_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0 as c_int,
                -1 as c_int,
                group_fd as c_int,
                0 as c_ulong,
            )
        };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd as RawFd)
        }
    }

    fn ioc_group(fd: RawFd, request: c_ulong) -> io::Result<()> {
        // SAFETY: plain ioctl on an fd this crate opened; the
        // enable/disable/reset requests take a scalar flag argument and
        // touch no user memory.
        let rc = unsafe { ioctl(fd as c_int, request, IOC_FLAG_GROUP) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Starts every counter in the group led by `fd`.
    pub(crate) fn enable_group(fd: RawFd) -> io::Result<()> {
        ioc_group(fd, IOC_ENABLE)
    }

    /// Stops every counter in the group led by `fd`.
    pub(crate) fn disable_group(fd: RawFd) -> io::Result<()> {
        ioc_group(fd, IOC_DISABLE)
    }

    /// Zeroes every counter in the group led by `fd`.
    pub(crate) fn reset_group(fd: RawFd) -> io::Result<()> {
        ioc_group(fd, IOC_RESET)
    }

    /// The kernel-assigned stable ID for one counter fd, used to match
    /// group-read slots back to events regardless of sibling order.
    pub(crate) fn id(fd: RawFd) -> io::Result<u64> {
        let mut out: u64 = 0;
        // SAFETY: PERF_EVENT_IOC_ID writes one u64 through the
        // pointer; `out` is a valid, aligned u64 that outlives the
        // call.
        let rc = unsafe { ioctl(fd as c_int, IOC_ID, &mut out as *mut u64) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(out)
        }
    }

    /// One group read: fills `buf` with `[nr, time_enabled,
    /// time_running, (value, id) * nr]` and returns the number of u64
    /// words the kernel produced.
    pub(crate) fn read_group(fd: RawFd, buf: &mut [u64]) -> io::Result<usize> {
        // SAFETY: the kernel writes at most `buf.len() * 8` bytes into
        // the provided buffer, which is valid, writable, and 8-byte
        // aligned for its whole length.
        let n = unsafe { read(fd as c_int, buf.as_mut_ptr() as *mut u8, buf.len() * 8) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize / 8)
        }
    }

    /// Closes a counter fd, ignoring errors (close on a valid perf fd
    /// only fails if interrupted, and the descriptor is gone either
    /// way).
    pub(crate) fn close_quiet(fd: RawFd) {
        // SAFETY: fd was returned by `open` in this module and is
        // closed exactly once (RAII in CounterGroup::drop).
        let _ = unsafe { close(fd as c_int) };
    }
}

#[cfg(not(target_os = "linux"))]
mod stub {
    use super::RawFd;
    use std::io;

    pub(crate) const READ_FORMAT_WORDS_PER_EVENT: usize = 2;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "perf_event_open is Linux-only".to_string(),
        )
    }

    pub(crate) fn open(_type_: u32, _config: u64, _group_fd: RawFd, _leader: bool) -> io::Result<RawFd> {
        Err(unsupported())
    }

    pub(crate) fn enable_group(_fd: RawFd) -> io::Result<()> {
        Err(unsupported())
    }

    pub(crate) fn disable_group(_fd: RawFd) -> io::Result<()> {
        Err(unsupported())
    }

    pub(crate) fn reset_group(_fd: RawFd) -> io::Result<()> {
        Err(unsupported())
    }

    pub(crate) fn id(_fd: RawFd) -> io::Result<u64> {
        Err(unsupported())
    }

    pub(crate) fn read_group(_fd: RawFd, _buf: &mut [u64]) -> io::Result<usize> {
        Err(unsupported())
    }

    pub(crate) fn close_quiet(_fd: RawFd) {}
}
