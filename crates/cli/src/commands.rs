//! Implementations of the `fmwalk` subcommands.

use std::io::Write;
use std::path::Path;

use flashmob::{
    oocore::{run_ooc_with, DiskGraph, OocOptions, OocStats},
    FaultPolicy, FlashMob, WalkAlgorithm, WalkConfig, WalkOutput,
};
use fm_baseline::{Baseline, BaselineConfig, BaselineKind};
use fm_graph::{io, stats, synth, transform, Csr, VertexId};
use fm_telemetry::{export, tef, Telemetry};

use crate::args::{AlgoChoice, Command, EngineChoice, SynthKind, SynthParams};

/// Process exit-code class of a command failure.
///
/// Scripted callers can dispatch on the code: retry on transient IO,
/// discard the checkpoint directory on corruption, fix the invocation
/// on a plan error.  Usage errors (bad flags) exit with the
/// conventional `EX_USAGE` 64, assigned in `main` before a command
/// ever runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// The environment failed us: missing files, permission errors,
    /// exhausted retries on transient IO.
    Io,
    /// A checkpoint failed CRC/structure validation; the snapshot is
    /// unusable and should be discarded.
    CorruptSnapshot,
    /// The invocation is semantically invalid for this graph or
    /// configuration (planning errors, sink vertices, missing weights,
    /// config/checkpoint mismatches).
    Plan,
    /// Anything else.
    Other,
}

impl ExitKind {
    /// The process exit code for this class.
    pub fn code(self) -> i32 {
        match self {
            ExitKind::Io => 2,
            ExitKind::CorruptSnapshot => 3,
            ExitKind::Plan => 4,
            ExitKind::Other => 1,
        }
    }
}

/// A command-execution failure with a user-facing message and an
/// exit-code class.
#[derive(Debug)]
pub struct CmdError(pub String, pub ExitKind);

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CmdError {}

fn fail(e: impl std::fmt::Display) -> CmdError {
    CmdError(e.to_string(), ExitKind::Other)
}

fn fail_io(e: impl std::fmt::Display) -> CmdError {
    CmdError(e.to_string(), ExitKind::Io)
}

fn fail_plan(e: impl std::fmt::Display) -> CmdError {
    CmdError(e.to_string(), ExitKind::Plan)
}

/// Classifies a graph-storage error: anything carrying an underlying
/// `std::io::Error` is an environment failure, the rest (format,
/// validation) are generic.
fn fail_graph(e: fm_graph::GraphError) -> CmdError {
    let kind = if e.io_source().is_some() {
        ExitKind::Io
    } else {
        ExitKind::Other
    };
    CmdError(e.to_string(), kind)
}

/// Classifies an engine error into its exit class: checkpoint
/// corruption → [`ExitKind::CorruptSnapshot`], IO (including recovery
/// IO and missing snapshots) → [`ExitKind::Io`], config mismatches and
/// planning failures → [`ExitKind::Plan`].
fn fail_walk(e: flashmob::WalkError) -> CmdError {
    use flashmob::{RecoverError, WalkError};
    let kind = match &e {
        WalkError::Graph(g) => {
            if g.io_source().is_some() {
                ExitKind::Io
            } else {
                ExitKind::Other
            }
        }
        WalkError::Recover(r) => {
            if r.is_corrupt() {
                ExitKind::CorruptSnapshot
            } else if matches!(r, RecoverError::Mismatch { .. }) {
                ExitKind::Plan
            } else {
                ExitKind::Io
            }
        }
        _ => ExitKind::Plan,
    };
    CmdError(e.to_string(), kind)
}

/// Classifies a *disk-graph* storage error: a malformed `FMDISK1`
/// header or torn file is corrupt input (exit 3, like a corrupt
/// snapshot), not a generic failure; IO errors stay environment
/// failures (exit 2).
fn fail_disk(e: fm_graph::GraphError) -> CmdError {
    let kind = if e.io_source().is_some() {
        ExitKind::Io
    } else if matches!(e, fm_graph::GraphError::Format(_)) {
        ExitKind::CorruptSnapshot
    } else {
        ExitKind::Other
    };
    CmdError(e.to_string(), kind)
}

/// Whether `path` holds an out-of-core disk graph (`FMDISK1` magic).
fn is_disk_graph(path: &Path) -> bool {
    let mut head = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut head))
        .map(|()| &head == b"FMDISK1\0")
        .unwrap_or(false)
}

/// Loads a graph: binary when the FMG1 magic is present, else text.
pub fn load_graph(path: &Path) -> Result<Csr, CmdError> {
    let head = std::fs::read(path)
        .map_err(|e| fail_io(format!("cannot read {}: {e}", path.display())))?;
    if head.starts_with(b"FMG1") {
        io::decode_binary(&head).map_err(fail_graph)
    } else {
        io::parse_edge_list(&head[..], io::ParseOptions::default()).map_err(fail_graph)
    }
}

/// Executes a parsed command, writing human output to `out`.
pub fn run<W: Write>(cmd: Command, out: &mut W) -> Result<(), CmdError> {
    match cmd {
        Command::Help => {
            write!(out, "{}", crate::USAGE).map_err(fail)?;
            Ok(())
        }
        Command::Convert {
            input,
            output,
            symmetric,
            dedup,
            drop_self_loops,
            compact,
        } => {
            let opts = io::ParseOptions {
                symmetric,
                dedup,
                drop_self_loops,
                compact,
            };
            let text = std::fs::read(&input)
                .map_err(|e| fail_io(format!("cannot read {}: {e}", input.display())))?;
            let graph = if text.starts_with(b"FMG1") {
                // Binary input: apply clean-up passes via the builder.
                let g = io::decode_binary(&text).map_err(fail_graph)?;
                let mut b = fm_graph::GraphBuilder::new();
                for (s, t) in g.edges() {
                    b.add_edge(s, t);
                }
                b.symmetric(symmetric)
                    .dedup(dedup)
                    .drop_self_loops(drop_self_loops)
                    .compact(compact)
                    .build()
                    .map_err(fail)?
            } else {
                io::parse_edge_list(&text[..], opts).map_err(fail_graph)?
            };
            io::save_binary(&graph, &output).map_err(fail_graph)?;
            writeln!(
                out,
                "wrote {}: |V| = {}, |E| = {}",
                output.display(),
                graph.vertex_count(),
                graph.edge_count()
            )
            .map_err(fail)?;
            Ok(())
        }
        Command::Stats {
            graph,
            diameter_samples,
        } => {
            let g = load_graph(&graph)?;
            writeln!(out, "vertices        {}", g.vertex_count()).map_err(fail)?;
            writeln!(out, "edges           {}", g.edge_count()).map_err(fail)?;
            writeln!(out, "avg degree      {:.2}", stats::avg_degree(&g)).map_err(fail)?;
            writeln!(out, "max degree      {}", g.max_degree()).map_err(fail)?;
            writeln!(out, "csr bytes       {}", g.footprint_bytes()).map_err(fail)?;
            writeln!(out, "sinks           {}", !g.has_no_sinks()).map_err(fail)?;
            let (_, components) = transform::weakly_connected_components(&g);
            writeln!(out, "weak components {components}").map_err(fail)?;
            writeln!(
                out,
                "est. diameter   {}",
                stats::estimate_diameter(&g, diameter_samples, 1)
            )
            .map_err(fail)?;
            writeln!(out, "\ndegree buckets (Table 2 style):").map_err(fail)?;
            for b in stats::degree_group_stats(&g, None, &stats::TABLE2_BUCKETS) {
                writeln!(
                    out,
                    "  top {:>5.1}%: avg degree {:>9.1}, edge share {:>5.1}%",
                    b.upper_fraction * 100.0,
                    b.avg_degree,
                    b.edge_share * 100.0
                )
                .map_err(fail)?;
            }
            Ok(())
        }
        Command::Plan {
            graph,
            walkers,
            strategy,
        } => {
            let g = load_graph(&graph)?;
            let n_walkers = walkers.resolve(g.vertex_count()).max(1);
            let cfg = WalkConfig::deepwalk()
                .walkers(n_walkers)
                .strategy(strategy)
                .record_paths(false);
            let engine = FlashMob::new(&g, cfg).map_err(fail_walk)?;
            let plan = engine.plan();
            writeln!(out, "strategy          {strategy:?}").map_err(fail)?;
            writeln!(out, "partitions        {}", plan.partitions.len()).map_err(fail)?;
            writeln!(out, "groups            {}", plan.groups.len()).map_err(fail)?;
            writeln!(out, "shuffle levels    {}", plan.shuffle_levels()).map_err(fail)?;
            writeln!(out, "outer bins        {}", plan.outer_bins).map_err(fail)?;
            writeln!(out, "walker density    {:.4}", plan.density).map_err(fail)?;
            writeln!(
                out,
                "PS edge share     {:.1}%",
                plan.ps_edge_share() * 100.0
            )
            .map_err(fail)?;
            writeln!(
                out,
                "predicted sample  {:.1} ns/step",
                plan.predicted_sample_ns
            )
            .map_err(fail)?;
            Ok(())
        }
        Command::Walk {
            graph,
            engine,
            algo,
            walkers,
            steps,
            seed,
            threads,
            ring_depth,
            strategy,
            output,
            visits,
            stats: show_stats,
            trace,
            metrics,
            progress,
            checkpoint_dir,
            checkpoint_every,
            labels,
            hw_counters,
            oocore_budget,
            fault_rate,
            fault_seed,
            halt_after,
        } => {
            if is_disk_graph(&graph) {
                if engine != EngineChoice::FlashMob {
                    return Err(fail_plan("disk graphs run on --engine flashmob only"));
                }
                if labels > 0 {
                    return Err(fail_plan("disk graphs carry no edge labels"));
                }
                return run_ooc_command(
                    out,
                    OocRun {
                        graph,
                        algo,
                        walkers,
                        steps,
                        seed,
                        threads,
                        budget: oocore_budget,
                        fault_rate,
                        fault_seed,
                        checkpoint: checkpoint_dir.map(|d| (d, checkpoint_every)),
                        halt_after,
                        resume_from: None,
                        output,
                        visits,
                        show_stats,
                        trace,
                        metrics,
                        progress,
                    },
                );
            }
            if oocore_budget > 0 || fault_rate > 0.0 || halt_after > 0 {
                return Err(fail_plan(
                    "--oocore-budget/--fault-rate/--halt-after apply to FMDISK1 disk graphs only (create one with `fmwalk disk`)",
                ));
            }
            let g = with_derived_labels(load_graph(&graph)?, labels)?;
            let n_walkers = walkers.resolve(g.vertex_count()).max(1);
            let algorithm = walk_algorithm(algo);
            let record_paths = output.is_some();
            let record_visits = visits.is_some();
            let mut tel = make_telemetry(
                trace.is_some() || metrics.is_some() || hw_counters,
                progress,
                show_stats,
            );
            if hw_counters {
                // Degradation is part of the contract: unprivileged or
                // PMU-less hosts get a notice on stderr and an otherwise
                // bit-identical run.
                if let Err(reason) = tel.enable_hw_counters() {
                    eprintln!("[fmwalk] {reason}; continuing without");
                }
            }
            let checkpoint = match (checkpoint_dir, checkpoint_every) {
                (None, 0) => None,
                (None, _) => {
                    return Err(fail_plan(
                        "--checkpoint-every requires --checkpoint-dir",
                    ))
                }
                (Some(dir), every) => {
                    if engine != EngineChoice::FlashMob {
                        return Err(fail_plan(
                            "checkpointing requires --engine flashmob",
                        ));
                    }
                    Some(flashmob::CheckpointSpec::new(
                        dir,
                        if every == 0 { 8 } else { every },
                    ))
                }
            };
            let (walk_output, steps_taken, per_step_ns, visits_vec, stats_report): (
                Option<WalkOutput>,
                u64,
                f64,
                Option<Vec<u64>>,
                Option<String>,
            ) = match engine {
                EngineChoice::FlashMob => {
                    let mut cfg = WalkConfig::deepwalk()
                        .walkers(n_walkers)
                        .steps(steps)
                        .seed(seed)
                        .threads(threads)
                        .strategy(strategy)
                        .record_paths(record_paths)
                        .record_visits(record_visits);
                    if ring_depth > 0 {
                        cfg = cfg.ring_depth(ring_depth);
                    }
                    cfg.algorithm = algorithm;
                    let e = FlashMob::new(&g, cfg).map_err(fail_walk)?;
                    let (o, s) = match &checkpoint {
                        Some(spec) => e
                            .run_with_checkpoints_traced(spec, &mut tel)
                            .map_err(fail_walk)?,
                        None => e.run_traced(&mut tel).map_err(fail_walk)?,
                    };
                    let v = s.visits_original(e.relabeling());
                    let report = show_stats.then(|| s.human_summary());
                    (Some(o), s.steps_taken, s.per_step_ns(), v, report)
                }
                EngineChoice::KnightKing | EngineChoice::GraphVite => {
                    let kind = if engine == EngineChoice::KnightKing {
                        BaselineKind::KnightKing
                    } else {
                        BaselineKind::GraphVite
                    };
                    let cfg = BaselineConfig {
                        kind,
                        ..BaselineConfig::knightking_deepwalk()
                    }
                    .algorithm(algorithm)
                    .walkers(n_walkers)
                    .steps(steps)
                    .seed(seed)
                    .threads(threads)
                    .record_paths(record_paths)
                    .record_visits(record_visits);
                    let e = Baseline::new(&g, cfg).map_err(fail_walk)?;
                    let (o, s) = e.run_traced(&mut tel).map_err(fail_walk)?;
                    let report = show_stats.then(|| s.human_summary());
                    (Some(o), s.steps_taken, s.per_step_ns(), s.visits, report)
                }
            };
            report_run(
                out,
                &tel,
                RunReport {
                    walk_output,
                    steps_taken,
                    per_step_ns,
                    visits_vec,
                    stats_report,
                    output,
                    visits,
                    trace,
                    metrics,
                },
            )
        }
        Command::Resume {
            graph,
            dir,
            algo,
            walkers,
            steps,
            seed,
            threads,
            ring_depth,
            strategy,
            output,
            visits,
            stats: show_stats,
            trace,
            metrics,
            progress,
            labels,
            oocore_budget,
            fault_rate,
            fault_seed,
        } => {
            if is_disk_graph(&graph) {
                if labels > 0 {
                    return Err(fail_plan("disk graphs carry no edge labels"));
                }
                return run_ooc_command(
                    out,
                    OocRun {
                        graph,
                        algo,
                        walkers,
                        steps,
                        seed,
                        threads,
                        budget: oocore_budget,
                        fault_rate,
                        fault_seed,
                        checkpoint: None,
                        halt_after: 0,
                        resume_from: Some(dir),
                        output,
                        visits,
                        show_stats,
                        trace,
                        metrics,
                        progress,
                    },
                );
            }
            if oocore_budget > 0 || fault_rate > 0.0 {
                return Err(fail_plan(
                    "--oocore-budget/--fault-rate apply to FMDISK1 disk graphs only",
                ));
            }
            let g = with_derived_labels(load_graph(&graph)?, labels)?;
            let n_walkers = walkers.resolve(g.vertex_count()).max(1);
            let record_paths = output.is_some();
            let record_visits = visits.is_some();
            let mut tel = make_telemetry(trace.is_some() || metrics.is_some(), progress, show_stats);
            let mut cfg = WalkConfig::deepwalk()
                .walkers(n_walkers)
                .steps(steps)
                .seed(seed)
                .threads(threads)
                .strategy(strategy)
                .record_paths(record_paths)
                .record_visits(record_visits);
            if ring_depth > 0 {
                cfg = cfg.ring_depth(ring_depth);
            }
            cfg.algorithm = walk_algorithm(algo);
            let e = FlashMob::new(&g, cfg).map_err(fail_walk)?;
            let (o, s) = e.resume_with(&dir, None, &mut tel).map_err(fail_walk)?;
            writeln!(out, "resumed from {}", dir.display()).map_err(fail)?;
            let v = s.visits_original(e.relabeling());
            let report = show_stats.then(|| s.human_summary());
            report_run(
                out,
                &tel,
                RunReport {
                    walk_output: Some(o),
                    steps_taken: s.steps_taken,
                    per_step_ns: s.per_step_ns(),
                    visits_vec: v,
                    stats_report: report,
                    output,
                    visits,
                    trace,
                    metrics,
                },
            )
        }
        Command::Disk { input, output } => {
            let g = load_graph(&input)?;
            let disk = DiskGraph::create(&g, &output).map_err(fail_disk)?;
            writeln!(
                out,
                "wrote {}: |V| = {}, |E| = {} (FMDISK1, degree-sorted)",
                output.display(),
                disk.vertex_count(),
                disk.edge_count(),
            )
            .map_err(fail)?;
            Ok(())
        }
        Command::Synth {
            kind,
            output,
            params,
        } => {
            let g = generate(kind, &params);
            io::save_binary(&g, &output).map_err(fail_graph)?;
            writeln!(
                out,
                "wrote {}: |V| = {}, |E| = {}, avg degree {:.1}",
                output.display(),
                g.vertex_count(),
                g.edge_count(),
                stats::avg_degree(&g)
            )
            .map_err(fail)?;
            Ok(())
        }
        Command::Profile { out: file, quick } => {
            let grid = if quick {
                fm_profiler::ProfileGrid::tiny()
            } else {
                fm_profiler::ProfileGrid::default()
            };
            writeln!(out, "profiling {} cells...", grid_cells(&grid)).map_err(fail)?;
            let points = fm_profiler::run_profile(&grid);
            let shuffle_ns = fm_profiler::measure_shuffle_ns(100_000, 2048, 3);
            let table =
                fm_profiler::ProfileTable::from_points(&points, shuffle_ns).map_err(fail)?;
            match file {
                Some(path) => {
                    // An unwritable output path is an IO failure (exit 2),
                    // not a generic error — surfaced by the fm-audit scan.
                    let f = std::fs::File::create(&path).map_err(fail_io)?;
                    table.save(std::io::BufWriter::new(f)).map_err(fail_io)?;
                    writeln!(out, "profile written to {}", path.display()).map_err(fail)?;
                }
                None => table.save(&mut *out).map_err(fail)?,
            }
            Ok(())
        }
        Command::Conform {
            full,
            emit_golden,
            programs,
        } => {
            use fm_conformance::runner::{self, AlgoKind, EngineKind, LatticeConfig, Outcome};

            if programs {
                return conform_programs(out, full, emit_golden);
            }

            if emit_golden {
                // Golden digests cover the *full* thread lattice so the
                // quick tier's cells are always a committed subset.
                writeln!(
                    out,
                    "// Paste into crates/conformance/src/golden.rs (GOLDEN table):"
                )
                .map_err(fail)?;
                for engine in EngineKind::ALL {
                    for algo in AlgoKind::ALL {
                        for threads in [1usize, 2, 3, 8] {
                            if let Some(d) = runner::cell_digest(engine, algo, threads) {
                                writeln!(
                                    out,
                                    "    (\"{}\", \"{}\", {}, {:#018x}),",
                                    engine.label(),
                                    algo.label(),
                                    threads,
                                    d
                                )
                                .map_err(fail)?;
                            }
                        }
                    }
                }
                return Ok(());
            }

            let config = if full {
                LatticeConfig::full()
            } else {
                LatticeConfig::quick()
            };
            let report = runner::run_lattice(&config);
            writeln!(
                out,
                "conformance lattice ({} tier): {} cells, per-test alpha {:.2e}",
                if full { "full" } else { "quick" },
                report.cells.len(),
                report.per_test_alpha
            )
            .map_err(fail)?;
            writeln!(
                out,
                "{:<14} {:<9} {:>7}  {:<7} detail",
                "engine", "algo", "threads", "result"
            )
            .map_err(fail)?;
            for cell in &report.cells {
                let (result, detail) = match &cell.outcome {
                    Outcome::Pass {
                        occupancy_p,
                        transition_p,
                        digest,
                        golden_checked,
                    } => (
                        "pass",
                        format!(
                            "p_occ {occupancy_p:.3}, p_tr {transition_p:.3}, \
                             digest {digest:#018x}{}",
                            if *golden_checked { " (golden ok)" } else { "" }
                        ),
                    ),
                    Outcome::Skipped { reason } => ("skip", (*reason).to_string()),
                    Outcome::Fail { reason } => ("FAIL", reason.clone()),
                };
                writeln!(
                    out,
                    "{:<14} {:<9} {:>7}  {:<7} {}",
                    cell.engine.label(),
                    cell.algo.label(),
                    cell.threads,
                    result,
                    detail
                )
                .map_err(fail)?;
            }
            let (passed, skipped, failed) = report.tally();
            writeln!(out, "{passed} passed, {skipped} skipped, {failed} failed").map_err(fail)?;
            if failed > 0 {
                return Err(CmdError(
                    format!("{failed} conformance cell(s) failed; see table above"),
                    ExitKind::Other,
                ));
            }
            Ok(())
        }
        Command::Cachecheck { quick, json } => {
            use fm_profiler::cachecheck;
            let grid = cachecheck::default_grid(quick);
            let n_cells = grid.vp_sizes.len() * grid.degrees.len() * grid.densities.len() * 2;
            writeln!(
                out,
                "cachecheck: {n_cells} cells, memsim (Skylake-SP model) vs hardware counters"
            )
            .map_err(fail)?;
            let report = cachecheck::run(&grid, fm_memsim::HierarchyConfig::skylake_server());
            match &report.hw_reason {
                // Degraded hosts still get the predicted side; the label
                // makes clear no hardware was measured.  Exit 0 either
                // way — cachecheck reports, it does not gate.
                Some(reason) => {
                    writeln!(out, "{reason}; SIMULATION-ONLY report").map_err(fail)?
                }
                None => writeln!(out, "hw events: {}", report.hw_events.join(", "))
                    .map_err(fail)?,
            }
            if json {
                for c in &report.cells {
                    writeln!(out, "{}", cachecheck_json(c)).map_err(fail)?;
                }
            } else {
                let header = format!(
                    "{:>9} {:>6} {:>5} {:<9} {:>10} {:>9} {:>9} {:>9}",
                    "vp", "deg", "dens", "policy", "ns/step", "sim miss", "hw miss", "diverg"
                );
                writeln!(out, "{header}").map_err(fail)?;
                for c in &report.cells {
                    let pct = |v: f64| format!("{:.1}%", v * 100.0);
                    let opt = |v: Option<f64>| {
                        v.map(pct).unwrap_or_else(|| "--".to_string())
                    };
                    writeln!(
                        out,
                        "{:>9} {:>6} {:>5.2} {:<9} {:>10} {:>9} {:>9} {:>9}",
                        c.vp_size,
                        c.degree,
                        c.density,
                        format!("{:?}", c.policy),
                        if c.ns_per_step.is_finite() {
                            format!("{:.1}", c.ns_per_step)
                        } else {
                            "--".to_string()
                        },
                        pct(c.sim_llc_miss_rate),
                        opt(c.hw.as_ref().and_then(|h| h.llc_miss_rate)),
                        opt(c.divergence()),
                    )
                    .map_err(fail)?;
                }
            }
            match report.max_divergence() {
                Some(d) => writeln!(
                    out,
                    "max predicted-vs-measured LLC miss-rate divergence: {:.1}%",
                    d * 100.0
                )
                .map_err(fail)?,
                None => writeln!(
                    out,
                    "no measured side available; predicted columns only"
                )
                .map_err(fail)?,
            }
            Ok(())
        }
        Command::BenchDiff {
            fresh,
            baseline,
            tolerance,
        } => {
            use fm_bench::baseline as ledger;
            // A missing baseline is an environment failure (exit 2),
            // distinct from a regression (exit 1): ci.sh and scripted
            // callers dispatch on the difference.
            let btext = std::fs::read_to_string(&baseline).map_err(|e| {
                fail_io(format!(
                    "cannot read baseline {}: {e} (regenerate with the bench \
                     bins' --json output and commit BENCH_BASELINE.json)",
                    baseline.display()
                ))
            })?;
            let ftext = std::fs::read_to_string(&fresh).map_err(|e| {
                fail_io(format!("cannot read fresh results {}: {e}", fresh.display()))
            })?;
            let b = ledger::parse_jsonl(&btext)
                .map_err(|e| fail(format!("baseline {}: {e}", baseline.display())))?;
            let f = ledger::parse_jsonl(&ftext)
                .map_err(|e| fail(format!("fresh {}: {e}", fresh.display())))?;
            let report = ledger::diff(&b, &f, tolerance);
            writeln!(
                out,
                "bench-diff: {} compared metric(s) across {} baseline / {} fresh \
                 cell(s), tolerance {:.0}%",
                report.lines.len(),
                b.len(),
                f.len(),
                tolerance * 100.0
            )
            .map_err(fail)?;
            for l in &report.lines {
                writeln!(
                    out,
                    "{:<5} {:<20} {:>12.4} -> {:>12.4} ({:>5.2}x)  {}",
                    if l.regressed { "REGR" } else { "ok" },
                    l.metric,
                    l.baseline,
                    l.fresh,
                    l.ratio,
                    l.key
                )
                .map_err(fail)?;
            }
            if report.unmatched_fresh > 0 {
                writeln!(
                    out,
                    "{} fresh cell(s) have no baseline counterpart (new coverage)",
                    report.unmatched_fresh
                )
                .map_err(fail)?;
            }
            if report.unmatched_baseline > 0 {
                writeln!(
                    out,
                    "{} baseline cell(s) not covered by this run",
                    report.unmatched_baseline
                )
                .map_err(fail)?;
            }
            if report.lines.is_empty() {
                writeln!(
                    out,
                    "warning: no comparable cells (identity keys are disjoint)"
                )
                .map_err(fail)?;
            }
            let regressed = report.regressions().count();
            if regressed > 0 {
                return Err(CmdError(
                    format!(
                        "bench-diff: {regressed} metric(s) regressed beyond the \
                         {:.0}% tolerance",
                        tolerance * 100.0
                    ),
                    ExitKind::Other,
                ));
            }
            Ok(())
        }
        Command::TraceCheck { file } => {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| fail_io(format!("cannot read {}: {e}", file.display())))?;
            let report = tef::validate(&text)
                .map_err(|e| fail(format!("{}: invalid trace: {e}", file.display())))?;
            writeln!(
                out,
                "{}: valid Chrome trace, {} events ({} complete spans) across {} lanes",
                file.display(),
                report.events,
                report.complete_events,
                report.lanes
            )
            .map_err(fail)?;
            Ok(())
        }
        Command::Audit {
            root,
            json,
            update_ratchet,
            graph,
            why,
        } => {
            let root = root.unwrap_or_else(|| std::path::PathBuf::from("."));
            // IO/config problems (unreadable tree, bad allow.toml) exit
            // 2; lint findings exit 1.  Scripted callers rely on the
            // distinction, as with the other subcommands.
            let opts = fm_audit::RunOptions {
                update_ratchet,
                graph,
            };
            let report = fm_audit::scan::run(&root, opts)
                .map_err(|e| fail_io(format!("audit: {e}")))?;
            if let Some(query) = &why {
                write!(out, "{}", fm_audit::report::why(&report, query)).map_err(fail)?;
            } else if json {
                let text = fm_audit::report::json(&report);
                // The emitted document must conform to the report
                // schema; a mismatch is an internal error (exit 2), so
                // scripted consumers never see malformed JSON on exit
                // 0/1.
                fm_audit::report::validate_json(&text)
                    .map_err(|e| fail_io(format!("audit: json schema: {e}")))?;
                write!(out, "{text}").map_err(fail)?;
            } else {
                write!(out, "{}", fm_audit::report::human(&report)).map_err(fail)?;
            }
            if !report.clean() {
                return Err(CmdError(
                    format!("audit: {} finding(s)", report.findings.len()),
                    ExitKind::Other,
                ));
            }
            Ok(())
        }
    }
}

fn walk_algorithm(algo: AlgoChoice) -> WalkAlgorithm {
    match algo {
        AlgoChoice::DeepWalk => WalkAlgorithm::DeepWalk,
        AlgoChoice::Node2Vec { p, q } => WalkAlgorithm::Node2Vec { p, q },
        AlgoChoice::Weighted => WalkAlgorithm::Weighted,
        AlgoChoice::Ppr { alpha } => WalkAlgorithm::Ppr { alpha },
        AlgoChoice::EarlyExit => WalkAlgorithm::EarlyExit,
        AlgoChoice::Metapath { pattern } => WalkAlgorithm::Metapath { pattern },
    }
}

/// Applies `--labels K`: attaches `slot % K` edge-type labels over the
/// loaded graph's adjacency (the same deterministic labeling the
/// conformance suite uses), so metapath walks can run on graphs whose
/// storage format carries no type information.  `k == 0` leaves the
/// graph unlabeled.
fn with_derived_labels(g: Csr, k: usize) -> Result<Csr, CmdError> {
    if k == 0 {
        return Ok(g);
    }
    if k > 256 {
        return Err(fail_plan("--labels supports at most 256 edge types"));
    }
    let mut labels = Vec::with_capacity(g.edge_count());
    for u in 0..g.vertex_count() {
        let d = g.degree(u as VertexId);
        for slot in 0..d {
            labels.push((slot % k) as u8);
        }
    }
    g.with_edge_labels(labels).map_err(fail_graph)
}

/// `conform --programs`: the registry/oracle audit plus the
/// program-conformance lattice (PPR, early-exit, metapath vs their
/// analytic oracles across the direct FlashMob engines).
fn conform_programs<W: Write>(out: &mut W, full: bool, emit_golden: bool) -> Result<(), CmdError> {
    use fm_conformance::{
        oracle_backed, program_cell_digest, run_program_lattice, ProgramKind,
        ProgramLatticeConfig, ProgramOutcome, PROGRAM_ENGINES,
    };

    // Registry/oracle audit: every walk program the engine crate
    // registers must be backed by an analytic oracle and lattice cells.
    // A program merged without its oracle fails the build here.
    let missing: Vec<&str> = flashmob::program::REGISTRY
        .iter()
        .copied()
        .filter(|name| !oracle_backed(name))
        .collect();
    if !missing.is_empty() {
        return Err(CmdError(
            format!(
                "program(s) registered without a conformance oracle: {}",
                missing.join(", ")
            ),
            ExitKind::Other,
        ));
    }
    writeln!(
        out,
        "registry audit: {} registered programs, all oracle-backed",
        flashmob::program::REGISTRY.len()
    )
    .map_err(fail)?;

    if emit_golden {
        writeln!(
            out,
            "// Paste into crates/conformance/src/golden.rs (PROGRAM_GOLDEN table):"
        )
        .map_err(fail)?;
        for program in ProgramKind::ALL {
            for engine in PROGRAM_ENGINES {
                for threads in [1usize, 2, 8] {
                    if let Some(d) = program_cell_digest(engine, program, threads) {
                        writeln!(
                            out,
                            "    (\"{}\", \"{}\", {}, {:#018x}),",
                            engine.label(),
                            program.label(),
                            threads,
                            d
                        )
                        .map_err(fail)?;
                    }
                }
            }
        }
        return Ok(());
    }

    let config = if full {
        ProgramLatticeConfig::full()
    } else {
        ProgramLatticeConfig::quick()
    };
    let report = run_program_lattice(&config);
    writeln!(
        out,
        "program lattice ({} tier): {} cells, per-test alpha {:.2e}",
        if full { "full" } else { "quick" },
        report.cells.len(),
        report.per_test_alpha
    )
    .map_err(fail)?;
    writeln!(
        out,
        "{:<14} {:<11} {:>7}  {:<7} detail",
        "engine", "program", "threads", "result"
    )
    .map_err(fail)?;
    for cell in &report.cells {
        let (result, detail) = match &cell.outcome {
            ProgramOutcome::Pass {
                p_values,
                digest,
                golden_checked,
            } => {
                let ps: Vec<String> = p_values.iter().map(|p| format!("{p:.3}")).collect();
                (
                    "pass",
                    format!(
                        "p {}, digest {digest:#018x}{}",
                        ps.join("/"),
                        if *golden_checked { " (golden ok)" } else { "" }
                    ),
                )
            }
            ProgramOutcome::Fail { reason } => ("FAIL", reason.clone()),
        };
        writeln!(
            out,
            "{:<14} {:<11} {:>7}  {:<7} {}",
            cell.engine.label(),
            cell.program.label(),
            cell.threads,
            result,
            detail
        )
        .map_err(fail)?;
    }
    let (passed, failed) = report.tally();
    writeln!(out, "{passed} passed, {failed} failed").map_err(fail)?;
    if failed > 0 {
        return Err(CmdError(
            format!("{failed} program-conformance cell(s) failed; see table above"),
            ExitKind::Other,
        ));
    }
    Ok(())
}

/// Renders one `fmwalk cachecheck --json` record in the shared bench
/// JSONL schema (`fig`/`label` identity plus compared metric fields),
/// so cachecheck output feeds `bench-diff` like any harness binary.
fn cachecheck_json(c: &fm_profiler::cachecheck::CellResult) -> String {
    use fm_telemetry::json;
    let mut fields: Vec<(&str, String)> = vec![
        ("policy", format!("\"{:?}\"", c.policy)),
        ("vp_size", json::num(c.vp_size as f64)),
        ("degree", json::num(c.degree as f64)),
        ("density", json::num(c.density)),
        ("steps", json::num(c.steps as f64)),
        ("sim_llc_miss_rate", json::num(c.sim_llc_miss_rate)),
        ("sim_fills_per_step", json::num(c.sim_fills_per_step)),
    ];
    if c.ns_per_step.is_finite() {
        fields.push(("ns_per_step", json::num(c.ns_per_step)));
    }
    if let Some(h) = &c.hw {
        fields.push(("llc_misses_per_step", json::num(h.llc_misses_per_step)));
        fields.push(("dtlb_misses_per_step", json::num(h.dtlb_misses_per_step)));
        if let Some(v) = h.llc_miss_rate {
            fields.push(("llc_miss_rate", json::num(v)));
        }
        if let Some(v) = h.ipc {
            fields.push(("ipc", json::num(v)));
        }
    }
    if let Some(d) = c.divergence() {
        fields.push(("divergence", json::num(d)));
    }
    fm_bench::json_line("cachecheck", "synthetic-vp", &fields)
}

/// Formats a steps/s rate compactly for the heartbeat line.
fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Everything an out-of-core `walk`/`resume` invocation needs.
struct OocRun {
    graph: std::path::PathBuf,
    algo: AlgoChoice,
    walkers: crate::args::WalkerCount,
    steps: usize,
    seed: u64,
    threads: usize,
    /// Streaming-buffer budget in bytes (0 = 64 MiB default).
    budget: usize,
    fault_rate: f64,
    fault_seed: u64,
    checkpoint: Option<(std::path::PathBuf, usize)>,
    halt_after: u64,
    resume_from: Option<std::path::PathBuf>,
    output: Option<std::path::PathBuf>,
    visits: Option<std::path::PathBuf>,
    show_stats: bool,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
    progress: bool,
}

/// Runs `walk`/`resume` against an `FMDISK1` disk graph: first-order
/// DeepWalk streams partitions; node2vec and PPR go through the
/// triangular bi-block scheduler.  `--fault-rate` injects seeded
/// transient faults into every block read (absorbed by the retry
/// layer and reported in stats/metrics); `--halt-after G` stops
/// deliberately right after checkpoint generation `G` — the scripted
/// crash-drill hook, a success, not an error.
fn run_ooc_command<W: Write>(out: &mut W, a: OocRun) -> Result<(), CmdError> {
    if a.threads > 1 {
        return Err(fail_plan("out-of-core walking is single-threaded"));
    }
    let disk = DiskGraph::open(&a.graph).map_err(fail_disk)?;
    let n_walkers = a.walkers.resolve(disk.vertex_count()).max(1);
    let record_paths = a.output.is_some() || a.visits.is_some();
    let mut cfg = WalkConfig::deepwalk()
        .walkers(n_walkers)
        .steps(a.steps)
        .seed(a.seed)
        .record_paths(record_paths);
    cfg.algorithm = walk_algorithm(a.algo);
    let budget = if a.budget == 0 { 64 << 20 } else { a.budget };
    let mut opts = OocOptions::default();
    if let Some((dir, every)) = a.checkpoint {
        let mut spec = flashmob::CheckpointSpec::new(dir, if every == 0 { 8 } else { every });
        if a.halt_after > 0 {
            spec = spec.halt_after(a.halt_after);
        }
        opts = opts.checkpoint(spec);
    } else if a.halt_after > 0 {
        return Err(fail_plan("--halt-after requires --checkpoint-dir"));
    }
    if a.fault_rate > 0.0 {
        opts = opts.fault(FaultPolicy::transient(a.fault_seed, a.fault_rate));
    }
    if let Some(dir) = &a.resume_from {
        opts = opts.resume_from(dir);
    }
    let mut tel = make_telemetry(
        a.trace.is_some() || a.metrics.is_some(),
        a.progress,
        a.show_stats,
    );
    let (o, stats) = match run_ooc_with(&disk, &cfg, budget, &opts, &mut tel) {
        Ok(v) => v,
        Err(flashmob::WalkError::Halted { generation })
            if a.halt_after > 0 && generation == a.halt_after =>
        {
            writeln!(
                out,
                "halted deliberately after checkpoint generation {generation}"
            )
            .map_err(fail)?;
            return Ok(());
        }
        Err(e) => return Err(fail_walk(e)),
    };
    if let Some(dir) = &a.resume_from {
        writeln!(out, "resumed from {}", dir.display()).map_err(fail)?;
    }
    let per_step_ns = if stats.steps_taken > 0 {
        stats.wall.as_nanos() as f64 / stats.steps_taken as f64
    } else {
        0.0
    };
    let visits_vec = a
        .visits
        .is_some()
        .then(|| o.visit_counts(disk.vertex_count()));
    let stats_report = a.show_stats.then(|| ooc_summary(&stats));
    report_run(
        out,
        &tel,
        RunReport {
            walk_output: Some(o),
            steps_taken: stats.steps_taken,
            per_step_ns,
            visits_vec,
            stats_report,
            output: a.output,
            visits: a.visits,
            trace: a.trace,
            metrics: a.metrics,
        },
    )
}

/// Human `--stats` block for an out-of-core run: streaming volume,
/// bi-block scheduling activity, boundary-buffer occupancy, and the
/// transient IO retries the fault layer absorbed.
fn ooc_summary(s: &OocStats) -> String {
    use std::fmt::Write as _;
    let mut t = String::new();
    let _ = writeln!(
        t,
        "oocore: {} blocks streamed, {:.1} MiB read in {:.1} ms",
        s.blocks_streamed.max(s.partitions_read),
        s.bytes_read as f64 / (1 << 20) as f64,
        s.read_time.as_secs_f64() * 1e3,
    );
    let _ = writeln!(
        t,
        "oocore: {} block pairs scheduled, {} empty slots skipped",
        s.pairs_scheduled, s.pairs_skipped,
    );
    let _ = writeln!(
        t,
        "oocore: {} walker parkings, peak boundary-buffer occupancy {}",
        s.walkers_parked, s.peak_parked,
    );
    let _ = writeln!(t, "oocore: {} transient io retries absorbed", s.io_retries);
    t
}

/// Telemetry is recorded whenever any consumer asked for it; otherwise
/// the recorder stays disabled and the engines take their untraced
/// path.
fn make_telemetry(exporting: bool, progress: bool, show_stats: bool) -> Telemetry {
    let mut tel = if exporting || progress || show_stats {
        Telemetry::new()
    } else {
        Telemetry::off()
    };
    if progress {
        // Live throughput from the step counters, plus an ETA scaled
        // from the per-generation pace so far (unknowable before the
        // first generation completes).
        tel.set_heartbeat(std::time::Duration::from_secs(1), |p| {
            let secs = p.elapsed.as_secs_f64();
            let rate = if secs > 0.0 {
                p.steps_taken as f64 / secs
            } else {
                0.0
            };
            let eta = if p.step > 0 && p.total_steps > p.step {
                let remaining = (p.total_steps - p.step) as f64;
                format!("{:.0}s", secs / p.step as f64 * remaining)
            } else {
                "--".to_string()
            };
            eprintln!(
                "[fmwalk] step {}/{} | {} walker-steps | {} steps/s | ETA {eta}",
                p.step,
                p.total_steps,
                p.steps_taken,
                fmt_rate(rate)
            );
        });
    }
    tel
}

/// Everything the `walk`/`resume` reporting tail needs.
struct RunReport {
    walk_output: Option<WalkOutput>,
    steps_taken: u64,
    per_step_ns: f64,
    visits_vec: Option<Vec<u64>>,
    stats_report: Option<String>,
    output: Option<std::path::PathBuf>,
    visits: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
}

/// Prints the run summary and writes the requested artifact files
/// (shared by `walk` and `resume`).
fn report_run<W: Write>(out: &mut W, tel: &Telemetry, r: RunReport) -> Result<(), CmdError> {
    writeln!(
        out,
        "walked {} walker-steps at {:.1} ns/step",
        r.steps_taken, r.per_step_ns
    )
    .map_err(fail)?;
    if let Some(t) = tel.hw_total() {
        use fm_telemetry::HwEvent;
        let ipc = t
            .ipc()
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "--".to_string());
        let miss = t
            .llc_miss_rate()
            .map(|v| format!("{:.1}%", v * 100.0))
            .unwrap_or_else(|| "--".to_string());
        writeln!(
            out,
            "hw: {} cycles, {} instructions (ipc {}), llc miss {}, {} dtlb misses",
            t.get(HwEvent::Cycles),
            t.get(HwEvent::Instructions),
            ipc,
            miss,
            t.get(HwEvent::DtlbMisses)
        )
        .map_err(fail)?;
    }
    if let Some(report) = r.stats_report {
        write!(out, "{report}").map_err(fail)?;
        if tel.is_on() {
            write!(out, "{}", export::human_summary(tel)).map_err(fail)?;
        }
    }
    if let Some(path) = r.trace {
        let f = std::fs::File::create(&path).map_err(fail_io)?;
        let mut w = std::io::BufWriter::new(f);
        export::write_chrome_trace(&mut w, tel).map_err(fail_io)?;
        w.flush().map_err(fail_io)?;
        writeln!(out, "trace written to {}", path.display()).map_err(fail)?;
    }
    if let Some(path) = r.metrics {
        let f = std::fs::File::create(&path).map_err(fail_io)?;
        let mut w = std::io::BufWriter::new(f);
        export::write_metrics_jsonl(&mut w, tel).map_err(fail_io)?;
        w.flush().map_err(fail_io)?;
        writeln!(out, "metrics written to {}", path.display()).map_err(fail)?;
    }
    if let (Some(path), Some(o)) = (r.output, r.walk_output.as_ref()) {
        let mut f = std::fs::File::create(&path).map_err(fail_io)?;
        let mut buffered = std::io::BufWriter::new(&mut f);
        for walk in o.paths() {
            let line: Vec<String> = walk.iter().map(|v| v.to_string()).collect();
            writeln!(buffered, "{}", line.join(" ")).map_err(fail_io)?;
        }
        writeln!(out, "paths written to {}", path.display()).map_err(fail)?;
    }
    if let (Some(path), Some(v)) = (r.visits, r.visits_vec) {
        let mut f = std::fs::File::create(&path).map_err(fail_io)?;
        let mut buffered = std::io::BufWriter::new(&mut f);
        for (vertex, count) in v.iter().enumerate() {
            writeln!(buffered, "{vertex} {count}").map_err(fail_io)?;
        }
        writeln!(out, "visit counts written to {}", path.display()).map_err(fail)?;
    }
    Ok(())
}

fn grid_cells(grid: &fm_profiler::ProfileGrid) -> usize {
    grid.vp_sizes.len() * grid.degrees.len() * grid.densities.len() * 3
}

fn generate(kind: SynthKind, p: &SynthParams) -> Csr {
    match kind {
        SynthKind::PowerLaw => synth::power_law(p.n, p.alpha, p.min_degree, p.max_degree, p.seed),
        SynthKind::Rmat => synth::rmat(p.scale, p.edge_factor, 0.57, 0.19, 0.19, p.seed),
        SynthKind::BarabasiAlbert => synth::barabasi_albert(p.n, p.m, p.seed),
        SynthKind::WattsStrogatz => synth::watts_strogatz(p.n, p.degree, p.beta, p.seed),
        SynthKind::Ring => synth::regular_ring(p.n, p.degree),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fmwalk_cmd_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn exec(line: &str) -> Result<String, CmdError> {
        let cmd = parse(line.split_whitespace().map(String::from)).expect("parse");
        let mut out = Vec::new();
        run(cmd, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn synth_stats_plan_walk_pipeline() {
        let bin = tmp("pipeline.bin");
        let paths = tmp("pipeline_paths.txt");
        let bins = bin.display().to_string();
        let pathss = paths.display().to_string();

        let msg = exec(&format!("synth power-law {bins} --n 2000 --max-degree 100")).unwrap();
        assert!(msg.contains("|V| = 2000"), "{msg}");

        let msg = exec(&format!("stats {bins}")).unwrap();
        assert!(msg.contains("vertices        2000"), "{msg}");
        assert!(msg.contains("degree buckets"), "{msg}");

        let msg = exec(&format!("plan {bins} --strategy dp")).unwrap();
        assert!(msg.contains("partitions"), "{msg}");

        let msg = exec(&format!(
            "walk {bins} --steps 4 --walkers 500 --output {pathss}"
        ))
        .unwrap();
        assert!(msg.contains("ns/step"), "{msg}");
        let dumped = std::fs::read_to_string(&paths).unwrap();
        assert_eq!(dumped.lines().count(), 500);
        assert_eq!(dumped.lines().next().unwrap().split(' ').count(), 5);

        std::fs::remove_file(bin).ok();
        std::fs::remove_file(paths).ok();
    }

    #[test]
    fn convert_text_to_binary() {
        let txt = tmp("edges.txt");
        let bin = tmp("edges.bin");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n").unwrap();
        let msg = exec(&format!(
            "convert {} {} --symmetric --dedup",
            txt.display(),
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("|E| = 6"), "{msg}");
        let g = load_graph(&bin).unwrap();
        assert_eq!(g.vertex_count(), 3);
        std::fs::remove_file(txt).ok();
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn walk_with_baseline_engine_and_visits() {
        let bin = tmp("baseline.bin");
        let visits = tmp("visits.txt");
        exec(&format!("synth ring {} --n 64 --degree 4", bin.display())).unwrap();
        let msg = exec(&format!(
            "walk {} --engine knightking --steps 3 --walkers 32 --visits {}",
            bin.display(),
            visits.display()
        ))
        .unwrap();
        assert!(msg.contains("96 walker-steps"), "{msg}");
        let dumped = std::fs::read_to_string(&visits).unwrap();
        assert_eq!(dumped.lines().count(), 64);
        std::fs::remove_file(bin).ok();
        std::fs::remove_file(visits).ok();
    }

    #[test]
    fn walk_stats_reports_pool() {
        let bin = tmp("stats_pool.bin");
        exec(&format!("synth ring {} --n 128 --degree 4", bin.display())).unwrap();
        let msg = exec(&format!(
            "walk {} --steps 4 --walkers 64 --threads 2 --stats",
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("stages (ns/step)"), "{msg}");
        assert!(msg.contains("pool: 2 threads spawned"), "{msg}");
        let msg = exec(&format!(
            "walk {} --engine knightking --steps 4 --walkers 64 --threads 2 --stats",
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("pool: 2 threads spawned"), "{msg}");
        std::fs::remove_file(bin).ok();
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn walk_trace_and_metrics_round_trip() {
        let bin = tmp("trace_walk.bin");
        let trace = tmp("trace_walk.json");
        let metrics = tmp("trace_walk.jsonl");
        exec(&format!("synth ring {} --n 128 --degree 4", bin.display())).unwrap();
        let msg = exec(&format!(
            "walk {} --steps 5 --walkers 64 --threads 2 --trace {} --metrics {}",
            bin.display(),
            trace.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(msg.contains("trace written to"), "{msg}");
        assert!(msg.contains("metrics written to"), "{msg}");

        // The emitted trace passes the in-tree TEF checker via the
        // trace-check subcommand.
        let msg = exec(&format!("trace-check {}", trace.display())).unwrap();
        assert!(msg.contains("valid Chrome trace"), "{msg}");

        // Every metrics line parses as JSON, and the partition counters
        // sum exactly to the walked steps (5 steps x 64 walkers on a
        // sink-free ring).
        let dumped = std::fs::read_to_string(&metrics).unwrap();
        let mut partition_steps = 0u64;
        for line in dumped.lines() {
            let v = fm_telemetry::json::parse(line).expect("metrics line is JSON");
            if v.get("kind").and_then(fm_telemetry::json::Value::as_str) == Some("partition") {
                partition_steps +=
                    v.get("steps").and_then(fm_telemetry::json::Value::as_num).unwrap() as u64;
            }
        }
        assert_eq!(partition_steps, 320);

        std::fs::remove_file(bin).ok();
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn trace_check_rejects_garbage() {
        let bad = tmp("bad_trace.json");
        std::fs::write(&bad, "{\"traceEvents\": [{\"ph\": \"X\"}]}").unwrap();
        let err = exec(&format!("trace-check {}", bad.display())).unwrap_err();
        assert!(err.0.contains("invalid trace"), "{}", err.0);
        let err = exec("trace-check /definitely/not/here.json").unwrap_err();
        assert!(err.0.contains("cannot read"), "{}", err.0);
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn walk_stats_is_nan_free_at_zero_steps() {
        // A 1-vertex self-loop ring is degenerate; force zero steps via
        // --steps 0 and make sure the summary stays finite.
        let bin = tmp("zero_steps.bin");
        exec(&format!("synth ring {} --n 32 --degree 2", bin.display())).unwrap();
        let msg = exec(&format!(
            "walk {} --steps 0 --walkers 16 --stats",
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("walked 0 walker-steps"), "{msg}");
        assert!(!msg.contains("NaN") && !msg.contains("inf"), "{msg}");
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn profile_quick_writes_loadable_table() {
        let file = tmp("profile.txt");
        exec(&format!("profile --quick --out {}", file.display())).unwrap();
        use flashmob::cost::CostModel;
        let f = std::fs::File::open(&file).unwrap();
        let table = fm_profiler::ProfileTable::load(std::io::BufReader::new(f)).unwrap();
        assert!(table.shuffle_cost_ns() > 0.0);
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn help_prints_usage() {
        let msg = exec("help").unwrap();
        assert!(msg.contains("USAGE"));
    }

    #[test]
    fn missing_graph_is_a_clean_error() {
        let err = exec("stats /definitely/not/here.bin").unwrap_err();
        assert!(err.0.contains("cannot read"), "{}", err.0);
        assert_eq!(err.1, ExitKind::Io);
        assert_eq!(err.1.code(), 2);
    }

    #[test]
    fn exit_kind_codes_are_stable() {
        assert_eq!(ExitKind::Other.code(), 1);
        assert_eq!(ExitKind::Io.code(), 2);
        assert_eq!(ExitKind::CorruptSnapshot.code(), 3);
        assert_eq!(ExitKind::Plan.code(), 4);
    }

    #[test]
    fn plan_errors_exit_as_plan() {
        let bin = tmp("plan_err.bin");
        exec(&format!("synth ring {} --n 64 --degree 4", bin.display())).unwrap();
        // Weighted walk on an unweighted graph is a configuration error.
        let err = exec(&format!("walk {} --algo weighted --steps 2", bin.display())).unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);
        // Checkpoint flag misuse is caught before any engine runs.
        let err = exec(&format!("walk {} --checkpoint-every 4", bin.display())).unwrap_err();
        assert!(err.0.contains("--checkpoint-dir"), "{}", err.0);
        assert_eq!(err.1, ExitKind::Plan);
        let err = exec(&format!(
            "walk {} --engine knightking --checkpoint-dir d",
            bin.display()
        ))
        .unwrap_err();
        assert!(err.0.contains("--engine flashmob"), "{}", err.0);
        assert_eq!(err.1, ExitKind::Plan);
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn walk_programs_end_to_end() {
        let bin = tmp("programs.bin");
        let paths = tmp("programs_paths.txt");
        exec(&format!("synth ring {} --n 64 --degree 4", bin.display())).unwrap();

        // PPR: full-length paths (restarts never kill walkers).
        let msg = exec(&format!(
            "walk {} --program ppr --alpha 0.3 --steps 4 --walkers 32 --output {}",
            bin.display(),
            paths.display()
        ))
        .unwrap();
        assert!(msg.contains("128 walker-steps"), "{msg}");
        let dumped = std::fs::read_to_string(&paths).unwrap();
        assert_eq!(dumped.lines().count(), 32);
        assert!(dumped.lines().all(|l| l.split(' ').count() == 5));

        // Early-exit: walkers may die early, so paths can be shorter
        // but the run still completes.
        let msg = exec(&format!(
            "walk {} --program early-exit --steps 4 --walkers 32",
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("ns/step"), "{msg}");

        // Metapath with derived labels walks typed edges end to end.
        let msg = exec(&format!(
            "walk {} --program metapath --pattern 0,1 --labels 2 --steps 4 --walkers 32",
            bin.display()
        ))
        .unwrap();
        assert!(msg.contains("ns/step"), "{msg}");

        // Metapath on an unlabeled graph is a configuration error.
        let err = exec(&format!(
            "walk {} --program metapath --steps 2",
            bin.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);

        // More edge types than a u8 can name is rejected up front.
        let err = exec(&format!(
            "walk {} --labels 257 --steps 2",
            bin.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);
        assert!(err.0.contains("--labels"), "{}", err.0);

        // Programs are FlashMob-only; the baselines reject them.
        let err = exec(&format!(
            "walk {} --engine knightking --program ppr --steps 2",
            bin.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);

        std::fs::remove_file(bin).ok();
        std::fs::remove_file(paths).ok();
    }

    #[test]
    fn program_checkpoint_resume_round_trip() {
        // Per-walker program state (the PPR origin) must survive the
        // checkpoint wire format: a resumed run reproduces the
        // uninterrupted paths bit for bit.
        let bin = tmp("prog_ckpt.bin");
        let dir = tmp("prog_ckpt_dir");
        let full = tmp("prog_ckpt_full.txt");
        let resumed = tmp("prog_ckpt_resumed.txt");
        std::fs::remove_dir_all(&dir).ok();
        exec(&format!("synth ring {} --n 64 --degree 4", bin.display())).unwrap();
        let flags = "--program ppr --alpha 0.2 --steps 6 --walkers 32 --seed 13";
        exec(&format!(
            "walk {} {flags} --output {} --checkpoint-dir {} --checkpoint-every 2",
            bin.display(),
            full.display(),
            dir.display()
        ))
        .unwrap();
        let msg = exec(&format!(
            "resume {} {} {flags} --output {}",
            bin.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap();
        assert!(msg.contains("resumed from"), "{msg}");
        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert!(!a.is_empty() && a == b);
        std::fs::remove_file(bin).ok();
        std::fs::remove_file(full).ok();
        std::fs::remove_file(resumed).ok();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn walk_checkpoint_resume_round_trip() {
        let bin = tmp("ckpt_walk.bin");
        let dir = tmp("ckpt_walk_dir");
        let full = tmp("ckpt_full.txt");
        let resumed = tmp("ckpt_resumed.txt");
        std::fs::remove_dir_all(&dir).ok();
        exec(&format!("synth ring {} --n 64 --degree 4", bin.display())).unwrap();
        let walk_flags = "--steps 6 --walkers 32 --seed 11";

        // Checkpointed run completes and leaves snapshots behind.
        let msg = exec(&format!(
            "walk {} {walk_flags} --output {} --checkpoint-dir {} --checkpoint-every 2",
            bin.display(),
            full.display(),
            dir.display()
        ))
        .unwrap();
        assert!(msg.contains("ns/step"), "{msg}");
        assert!(dir.join("MANIFEST").is_file());

        // Resuming from the final checkpoint reproduces the paths file
        // bit for bit (here the walk is already complete, so resume
        // executes zero iterations — the hardest edge case).
        let msg = exec(&format!(
            "resume {} {} {walk_flags} --output {}",
            bin.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap();
        assert!(msg.contains("resumed from"), "{msg}");
        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert!(!a.is_empty() && a == b);

        // A mismatched configuration is rejected as a plan error.
        let err = exec(&format!(
            "resume {} {} --steps 6 --walkers 32 --seed 999 --output {}",
            bin.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);

        // A flipped byte in the snapshot is detected and classified as
        // corruption (exit 3).
        // All generations stay on disk but the manifest references the
        // newest, so corrupt the highest-numbered snapshot file.
        let snap = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "fmck"))
            .max()
            .expect("snapshot file");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        let err = exec(&format!(
            "resume {} {} {walk_flags} --output {}",
            bin.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::CorruptSnapshot, "{}", err.0);
        assert_eq!(err.1.code(), 3);

        // An empty checkpoint directory is an IO-class failure (exit 2).
        let empty = tmp("ckpt_empty_dir");
        std::fs::create_dir_all(&empty).unwrap();
        let err = exec(&format!(
            "resume {} {} {walk_flags}",
            bin.display(),
            empty.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Io, "{}", err.0);

        std::fs::remove_file(bin).ok();
        std::fs::remove_file(full).ok();
        std::fs::remove_file(resumed).ok();
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(empty).ok();
    }

    #[test]
    fn disk_walk_halt_resume_round_trip_under_faults() {
        let bin = tmp("ooc.bin");
        let fmdisk = tmp("ooc.fmdisk");
        let full = tmp("ooc_full.txt");
        let resumed = tmp("ooc_resumed.txt");
        let dir = tmp("ooc_ckpt");
        std::fs::remove_dir_all(&dir).ok();

        exec(&format!(
            "synth power-law {} --n 400 --max-degree 40",
            bin.display()
        ))
        .unwrap();
        let msg = exec(&format!("disk {} {}", bin.display(), fmdisk.display())).unwrap();
        assert!(msg.contains("FMDISK1"), "{msg}");

        // Second-order walk streamed off disk, with injected faults:
        // the bi-block scheduler and retry layer must keep the output
        // identical to a fault-free run.
        let walk_flags = "--algo node2vec --p 0.25 --q 4.0 --walkers 200 \
                          --steps 6 --seed 9 --oocore-budget 4096";
        let msg = exec(&format!(
            "walk {} {walk_flags} --stats --output {}",
            fmdisk.display(),
            full.display()
        ))
        .unwrap();
        assert!(msg.contains("block pairs scheduled"), "{msg}");
        let clean = std::fs::read_to_string(&full).unwrap();
        assert_eq!(clean.lines().count(), 200);

        let msg = exec(&format!(
            "walk {} {walk_flags} --fault-rate 0.15 --fault-seed 7 --stats --output {}",
            fmdisk.display(),
            full.display()
        ))
        .unwrap();
        assert!(!msg.contains("0 transient io retries"), "{msg}");
        assert_eq!(std::fs::read_to_string(&full).unwrap(), clean);

        // Deliberate halt after generation 2, then a faulty resume:
        // bit-exact against the uninterrupted output.
        // Paths recording is part of the config fingerprint, so the
        // halted run must also record them for the resume to match.
        let msg = exec(&format!(
            "walk {} {walk_flags} --checkpoint-dir {} --checkpoint-every 3 --halt-after 2 \
             --output {}",
            fmdisk.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap();
        assert!(msg.contains("halted deliberately"), "{msg}");
        let msg = exec(&format!(
            "resume {} {} {walk_flags} --fault-rate 0.15 --fault-seed 7 --output {}",
            fmdisk.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap();
        assert!(msg.contains("resumed from"), "{msg}");
        assert_eq!(std::fs::read_to_string(&resumed).unwrap(), clean);

        // A mismatched budget is a config mismatch (exit 4).
        let err = exec(&format!(
            "resume {} {} --algo node2vec --p 0.25 --q 4.0 --walkers 200 \
             --steps 6 --seed 9 --oocore-budget 8192 --output {}",
            fmdisk.display(),
            dir.display(),
            resumed.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Plan, "{}", err.0);

        // Persistent faults exhaust the retry budget: IO class (exit 2).
        let err = exec(&format!(
            "walk {} {walk_flags} --fault-rate 1.0",
            fmdisk.display()
        ))
        .unwrap_err();
        assert_eq!(err.1, ExitKind::Io, "{}", err.0);
        assert_eq!(err.1.code(), 2);

        // A truncated disk graph is corrupt input (exit 3), not a panic.
        let bytes = std::fs::read(&fmdisk).unwrap();
        std::fs::write(&fmdisk, &bytes[..bytes.len() - 7]).unwrap();
        let err = exec(&format!("walk {} {walk_flags}", fmdisk.display())).unwrap_err();
        assert_eq!(err.1, ExitKind::CorruptSnapshot, "{}", err.0);
        assert_eq!(err.1.code(), 3);

        std::fs::remove_file(bin).ok();
        std::fs::remove_file(fmdisk).ok();
        std::fs::remove_file(full).ok();
        std::fs::remove_file(resumed).ok();
        std::fs::remove_dir_all(dir).ok();
    }
}
