//! Argument parsing and command implementations for `fmwalk`.
//!
//! The parser is hand-rolled (the workspace's dependency policy admits
//! no CLI crates) but fully unit-tested; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Usage text printed by `fmwalk help` and on parse errors.
pub const USAGE: &str = "\
fmwalk — cache-efficient graph random walks (FlashMob-RS)

USAGE:
  fmwalk convert <in> <out.bin> [--symmetric] [--dedup] [--drop-self-loops] [--compact]
  fmwalk stats <graph> [--diameter-samples N]
  fmwalk plan <graph> [--walkers N | --walkers-mult M] [--strategy dp|ups|uds|manual]
  fmwalk walk <graph> [--engine flashmob|knightking|graphvite]
                      [--algo|--program deepwalk|node2vec|weighted|
                                        ppr|early-exit|metapath]
                      [--p X] [--q X] [--alpha X] [--pattern L,L,...]
                      [--labels K]
                      [--walkers N | --walkers-mult M] [--steps N] [--seed N]
                      [--threads N] [--strategy dp|ups|uds|manual]
                      [--output <paths.txt>] [--visits <visits.txt>] [--stats]
                      [--trace <out.json>] [--metrics <out.jsonl>] [--progress]
                      [--hw-counters]
                      [--checkpoint-dir <dir>] [--checkpoint-every N]
                      [--oocore-budget BYTES] [--fault-rate X]
                      [--fault-seed N] [--halt-after G]
  fmwalk resume <graph> <ckpt-dir> [same flags as walk, minus --engine
                      and the checkpoint flags]
  fmwalk disk <graph> <out.fmdisk>
  fmwalk synth <power-law|rmat|ba|ws|ring> <out.bin>
                      [--n N] [--alpha X] [--min-degree N] [--max-degree N]
                      [--scale N] [--edge-factor N] [--m N] [--beta X]
                      [--degree N] [--seed N]
  fmwalk profile [--out <profile.txt>] [--quick]
  fmwalk conform [--quick | --full] [--emit-golden] [--programs]
  fmwalk cachecheck [--quick] [--json]
  fmwalk bench-diff <fresh.jsonl> [--baseline <file>] [--tolerance X]
  fmwalk trace-check <trace.json>
  fmwalk audit [--root <dir>] [--json] [--update-ratchet] [--graph]
               [--why <query>]
  fmwalk help

Graphs are loaded as the binary format when the file starts with the
FMG1 magic, as a whitespace edge list otherwise.

`walk --trace` writes a Chrome Trace Event Format file (open in
chrome://tracing or Perfetto); `--metrics` writes per-stage and
per-partition counters as JSON Lines; `trace-check` validates a trace
file against the in-tree TEF checker.

`walk --hw-counters` attributes hardware counters (cycles,
instructions, LLC loads/misses, dTLB misses, backend stalls) to
pipeline stages via perf_event and folds them into `--stats`,
`--trace`, and `--metrics` output.  On hosts without perf access the
run degrades with a stderr notice and is otherwise bit-identical.
`cachecheck` cross-validates the memsim cache model against the same
counters on the profiler's synthetic-VP sweep (simulation-only, exit
0, when counters are unavailable).  `bench-diff` compares a fresh
bench `--json` run against the committed `BENCH_BASELINE.json` ledger
with a noise-tolerant threshold (default 50%): exit 0 pass, 1
regression, 2 baseline missing.

`walk --program` (alias of `--algo`) selects a walk program: `ppr`
restarts at the walker's origin with probability `--alpha` (default
0.15); `early-exit` terminates a walker one step after it returns
home; `metapath` follows the cyclic edge-type pattern `--pattern`
(default `0,1`) and needs a labeled graph — `--labels K` derives
`slot % K` edge types at load for graphs without type information.
Programs run on the FlashMob engine (the walker-at-a-time baselines
reject them).  `conform --programs` checks every registered program
against its analytic oracle and committed golden digests, and fails
if any program lacks an oracle.

`walk --checkpoint-dir` writes a crash-consistent checkpoint every
`--checkpoint-every` iterations (default 8); `resume` continues an
interrupted run from the latest checkpoint, bit-identically to the
uninterrupted run.  The `resume` configuration flags must match the
interrupted invocation (thread count may differ).

`disk` converts a graph to the out-of-core FMDISK1 layout; `walk` and
`resume` detect the magic and stream it instead of loading it, with
the adjacency buffer capped by `--oocore-budget` (default 64 MiB).
DeepWalk streams partitions; node2vec and ppr run the triangular
bi-block pair schedule, so a (prev, cur) second-order step always
finds both adjacency lists resident.  `--fault-rate`/`--fault-seed`
inject seeded transient faults into every block read (absorbed by the
bounded-retry layer, counted in `--stats`/`--metrics`); `--halt-after
G` stops deliberately — exit 0 — right after checkpoint generation G,
the scripted crash drill.  Checkpoints cover the parked-walker
boundary buffers and the pair-schedule cursor, so a mid-schedule
resume is bit-exact.  A corrupt or truncated disk graph exits 3.

`audit` runs the fm-audit source scanner over the workspace (SAFETY
comments on every unsafe site, thread/file-IO discipline, cast-free
snapshot codecs, the unwrap ratchet).  `--graph` adds the flow-aware
passes: an in-tree item parser builds a workspace call graph and runs
determinism-taint (clock/entropy/env/hash-order sources must not
reach the deterministic crates), panic-reachability (no panicking
site reachable from the sample loops), rng-purity (RNG seeds flow
from seed + structured indices), and fingerprint-completeness (every
config field the run path reads is folded into the checkpoint
fingerprint).  `--why <query>` prints the offending call path for
findings matching a path/item substring or lint name (implies
--graph).  Exemptions live in audit/allow.toml (optionally scoped to
one item); the ratchet baseline in audit/ratchet.toml only moves down
(`--update-ratchet` refreshes it after removing call sites).  Clean
exits 0, findings exit 1, IO or config errors exit 2.

Exit codes: 0 success, 1 generic failure, 2 IO error, 3 corrupt
checkpoint, 4 invalid plan or configuration, 64 usage error.
";
