//! The `fmwalk` argument grammar.

use std::path::PathBuf;

use flashmob::{MetapathPattern, PlanStrategy, MAX_METAPATH_LEN};

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fmwalk convert`.
    Convert {
        /// Input edge list (text) or binary graph.
        input: PathBuf,
        /// Output binary path.
        output: PathBuf,
        /// Mirror edges.
        symmetric: bool,
        /// Deduplicate edges.
        dedup: bool,
        /// Remove self loops.
        drop_self_loops: bool,
        /// Densely renumber vertices.
        compact: bool,
    },
    /// `fmwalk stats`.
    Stats {
        /// Graph path.
        graph: PathBuf,
        /// BFS sources for the diameter estimate.
        diameter_samples: usize,
    },
    /// `fmwalk plan`.
    Plan {
        /// Graph path.
        graph: PathBuf,
        /// Walker specification.
        walkers: WalkerCount,
        /// Partitioning strategy.
        strategy: PlanStrategy,
    },
    /// `fmwalk walk`.
    Walk {
        /// Graph path.
        graph: PathBuf,
        /// Engine selection.
        engine: EngineChoice,
        /// Algorithm selection.
        algo: AlgoChoice,
        /// Walker specification.
        walkers: WalkerCount,
        /// Steps per walker.
        steps: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads.
        threads: usize,
        /// Forced sample-ring depth (FlashMob only; 0 = planner auto).
        ring_depth: usize,
        /// Partitioning strategy (FlashMob only).
        strategy: PlanStrategy,
        /// Optional path-output file.
        output: Option<PathBuf>,
        /// Optional visit-counts file.
        visits: Option<PathBuf>,
        /// Print execution statistics (stage times, pool accounting).
        stats: bool,
        /// Optional Chrome Trace Event Format output file.
        trace: Option<PathBuf>,
        /// Optional JSONL metrics output file.
        metrics: Option<PathBuf>,
        /// Print a periodic progress heartbeat to stderr.
        progress: bool,
        /// Checkpoint directory (enables crash-safe checkpointing;
        /// FlashMob engine only).
        checkpoint_dir: Option<PathBuf>,
        /// Checkpoint cadence in iterations (0 = default of 8 when a
        /// directory is given).
        checkpoint_every: usize,
        /// Derive `slot % K` edge-type labels at load (`--labels K`;
        /// 0 = leave the graph unlabeled).  Metapath programs need a
        /// labeled graph.
        labels: usize,
        /// Attribute hardware counters (cycles, LLC/dTLB misses) to
        /// stages via perf_event; degrades with a notice when the host
        /// grants no perf access.
        hw_counters: bool,
        /// Out-of-core streaming-buffer budget in bytes (used when the
        /// graph is an `FMDISK1` disk graph; 0 = 64 MiB default).
        oocore_budget: usize,
        /// Transient-fault injection rate for out-of-core block reads
        /// (chaos testing; 0 = off).
        fault_rate: f64,
        /// Seed of the injected fault stream.
        fault_seed: u64,
        /// Stop deliberately right after writing this checkpoint
        /// generation (crash-drill harness; 0 = run to completion).
        halt_after: u64,
    },
    /// `fmwalk resume`: continue an interrupted `walk` from the latest
    /// checkpoint in a directory.  The configuration flags must match
    /// the interrupted run (mismatches are rejected by the checkpoint's
    /// embedded config fingerprint); thread count may differ.
    Resume {
        /// Graph path (same graph as the interrupted run).
        graph: PathBuf,
        /// Checkpoint directory written by `walk --checkpoint-dir`.
        dir: PathBuf,
        /// Algorithm selection.
        algo: AlgoChoice,
        /// Walker specification.
        walkers: WalkerCount,
        /// Steps per walker.
        steps: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads.
        threads: usize,
        /// Forced sample-ring depth (0 = planner auto); may differ from
        /// the interrupted run, since ring depth never changes the walk.
        ring_depth: usize,
        /// Partitioning strategy.
        strategy: PlanStrategy,
        /// Optional path-output file.
        output: Option<PathBuf>,
        /// Optional visit-counts file.
        visits: Option<PathBuf>,
        /// Print execution statistics.
        stats: bool,
        /// Optional Chrome Trace Event Format output file.
        trace: Option<PathBuf>,
        /// Optional JSONL metrics output file.
        metrics: Option<PathBuf>,
        /// Print a periodic progress heartbeat to stderr.
        progress: bool,
        /// Derive `slot % K` edge-type labels at load (must match the
        /// interrupted run; 0 = unlabeled).
        labels: usize,
        /// Out-of-core streaming-buffer budget in bytes; must match the
        /// interrupted run (the checkpoint fingerprint covers it).
        oocore_budget: usize,
        /// Transient-fault injection rate for out-of-core block reads.
        fault_rate: f64,
        /// Seed of the injected fault stream.
        fault_seed: u64,
    },
    /// `fmwalk disk`: convert an in-memory graph (binary or edge list)
    /// into the out-of-core `FMDISK1` disk-graph layout, degree-sorted
    /// for cache-budgeted streaming.
    Disk {
        /// Input graph (binary or edge list).
        input: PathBuf,
        /// Output `.fmdisk` path.
        output: PathBuf,
    },
    /// `fmwalk synth`.
    Synth {
        /// Generator family.
        kind: SynthKind,
        /// Output binary path.
        output: PathBuf,
        /// Generator parameters.
        params: SynthParams,
    },
    /// `fmwalk profile`.
    Profile {
        /// Output file (stdout when absent).
        out: Option<PathBuf>,
        /// Use the small grid.
        quick: bool,
    },
    /// `fmwalk conform`.
    Conform {
        /// Run the full {1, 2, 3, 8}-thread lattice instead of the CI
        /// quick tier's {1, 8}.
        full: bool,
        /// Print golden-table rows for every cell instead of checking.
        emit_golden: bool,
        /// Run the program lattice (PPR, early-exit, metapath vs their
        /// analytic oracles) plus the registry/oracle audit instead of
        /// the classical-algorithm lattice.
        programs: bool,
    },
    /// `fmwalk cachecheck`: cross-validate the memsim cache model
    /// against hardware counters on the profiler's synthetic-VP sweep.
    Cachecheck {
        /// Use the small grid (seconds instead of minutes).
        quick: bool,
        /// Emit JSONL records instead of the human table.
        json: bool,
    },
    /// `fmwalk bench-diff`: compare a fresh JSONL bench run against the
    /// committed baseline ledger.
    BenchDiff {
        /// Fresh results (JSON Lines, the bench bins' `--json` output).
        fresh: PathBuf,
        /// Baseline ledger path.
        baseline: PathBuf,
        /// Fractional regression tolerance (e.g. 0.5 = 50% slower).
        tolerance: f64,
    },
    /// `fmwalk trace-check`.
    TraceCheck {
        /// Chrome-trace JSON file to validate.
        file: PathBuf,
    },
    /// `fmwalk audit`.
    Audit {
        /// Workspace root to scan (current directory when absent).
        root: Option<PathBuf>,
        /// Emit the machine-readable report instead of human lines.
        json: bool,
        /// Rewrite audit/ratchet.toml from measured unwrap counts.
        update_ratchet: bool,
        /// Also run the flow-aware passes (call graph + taint lints).
        graph: bool,
        /// Print the offending call path for findings matching this
        /// query (substring of path/item, or an exact lint name).
        /// Implies --graph.
        why: Option<String>,
    },
    /// `fmwalk help`.
    Help,
}

/// Walkers either as an absolute count or a multiple of |V|.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkerCount {
    /// Absolute number of walkers.
    Absolute(usize),
    /// `mult * |V|` walkers.
    PerVertex(usize),
}

impl WalkerCount {
    /// Resolves against a vertex count.
    pub fn resolve(self, vertices: usize) -> usize {
        match self {
            WalkerCount::Absolute(n) => n,
            WalkerCount::PerVertex(m) => m * vertices,
        }
    }
}

/// Which engine executes the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The FlashMob engine.
    FlashMob,
    /// KnightKing-style baseline.
    KnightKing,
    /// GraphVite-style baseline.
    GraphVite,
}

/// Which algorithm (or walk program) to run.
///
/// The first three are the paper's classical algorithms; the rest are
/// the programmable-walk kernels, selectable through either `--algo`
/// or its alias `--program`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoChoice {
    /// First-order uniform.
    DeepWalk,
    /// Second-order with return/in-out parameters.
    Node2Vec {
        /// Return parameter.
        p: f64,
        /// In-out parameter.
        q: f64,
    },
    /// Static edge weights.
    Weighted,
    /// Personalized PageRank with restart probability `--alpha`.
    Ppr {
        /// Restart probability in `(0, 1]`.
        alpha: f64,
    },
    /// Early-exit walk: dies one iteration after returning home.
    EarlyExit,
    /// Metapath walk over typed edges following `--pattern`.
    Metapath {
        /// The cyclic phase pattern.
        pattern: MetapathPattern,
    },
}

/// Synthetic generator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthKind {
    /// Configuration-model power law.
    PowerLaw,
    /// Recursive-matrix.
    Rmat,
    /// Barabási–Albert.
    BarabasiAlbert,
    /// Watts–Strogatz.
    WattsStrogatz,
    /// Regular ring lattice.
    Ring,
}

/// Generator parameters (superset across families; defaults sensible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Vertex count (power-law/BA/WS/ring).
    pub n: usize,
    /// Power-law exponent.
    pub alpha: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// R-MAT scale (`|V| = 2^scale`).
    pub scale: u32,
    /// R-MAT edges per vertex.
    pub edge_factor: usize,
    /// BA attachment count.
    pub m: usize,
    /// WS rewiring probability.
    pub beta: f64,
    /// Ring/WS degree.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            n: 100_000,
            alpha: 1.9,
            min_degree: 1,
            max_degree: 2_000,
            scale: 16,
            edge_factor: 16,
            m: 4,
            beta: 0.05,
            degree: 16,
            seed: 42,
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

struct Cursor {
    args: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<String> {
        let a = self.args.get(self.pos).cloned();
        self.pos += a.is_some() as usize;
        a
    }

    fn demand(&mut self, what: &str) -> Result<String, ParseError> {
        self.next().ok_or_else(|| err(format!("missing {what}")))
    }

    fn value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, ParseError> {
        let raw = self.demand(&format!("value for {flag}"))?;
        raw.parse()
            .map_err(|_| err(format!("bad value {raw:?} for {flag}")))
    }
}

/// Parses an argument vector (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseError> {
    let mut c = Cursor {
        args: args.into_iter().collect(),
        pos: 0,
    };
    let cmd = match c.next().as_deref() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(other) => other.to_string(),
    };
    match cmd.as_str() {
        "convert" => {
            let input = PathBuf::from(c.demand("input path")?);
            let output = PathBuf::from(c.demand("output path")?);
            let (mut symmetric, mut dedup, mut drop_self_loops, mut compact) =
                (false, false, false, false);
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--symmetric" => symmetric = true,
                    "--dedup" => dedup = true,
                    "--drop-self-loops" => drop_self_loops = true,
                    "--compact" => compact = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Convert {
                input,
                output,
                symmetric,
                dedup,
                drop_self_loops,
                compact,
            })
        }
        "stats" => {
            let graph = PathBuf::from(c.demand("graph path")?);
            let mut diameter_samples = 4usize;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--diameter-samples" => diameter_samples = c.value("--diameter-samples")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Stats {
                graph,
                diameter_samples,
            })
        }
        "plan" => {
            let graph = PathBuf::from(c.demand("graph path")?);
            let mut walkers = WalkerCount::PerVertex(1);
            let mut strategy = PlanStrategy::DynamicProgramming;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--walkers" => walkers = WalkerCount::Absolute(c.value("--walkers")?),
                    "--walkers-mult" => {
                        walkers = WalkerCount::PerVertex(c.value("--walkers-mult")?)
                    }
                    "--strategy" => strategy = parse_strategy(&c.demand("strategy")?)?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Plan {
                graph,
                walkers,
                strategy,
            })
        }
        "walk" => {
            let graph = PathBuf::from(c.demand("graph path")?);
            let mut engine = EngineChoice::FlashMob;
            let mut algo_name = "deepwalk".to_string();
            let (mut p, mut q) = (1.0f64, 1.0f64);
            let mut alpha = 0.15f64;
            let mut pattern = None;
            let mut labels = 0usize;
            let mut walkers = WalkerCount::PerVertex(1);
            let mut steps = 80usize;
            let mut seed = 1u64;
            let mut threads = 1usize;
            let mut ring_depth = 0usize;
            let mut strategy = PlanStrategy::DynamicProgramming;
            let mut output = None;
            let mut visits = None;
            let mut stats = false;
            let mut trace = None;
            let mut metrics = None;
            let mut progress = false;
            let mut checkpoint_dir = None;
            let mut checkpoint_every = 0usize;
            let mut hw_counters = false;
            let mut oocore_budget = 0usize;
            let mut fault_rate = 0.0f64;
            let mut fault_seed = 1u64;
            let mut halt_after = 0u64;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--checkpoint-dir" => {
                        checkpoint_dir = Some(PathBuf::from(c.demand("checkpoint directory")?))
                    }
                    "--checkpoint-every" => checkpoint_every = c.value("--checkpoint-every")?,
                    "--oocore-budget" => oocore_budget = c.value("--oocore-budget")?,
                    "--fault-rate" => fault_rate = c.value("--fault-rate")?,
                    "--fault-seed" => fault_seed = c.value("--fault-seed")?,
                    "--halt-after" => halt_after = c.value("--halt-after")?,
                    "--engine" => {
                        engine = match c.demand("engine")?.as_str() {
                            "flashmob" => EngineChoice::FlashMob,
                            "knightking" => EngineChoice::KnightKing,
                            "graphvite" => EngineChoice::GraphVite,
                            other => return Err(err(format!("unknown engine {other}"))),
                        }
                    }
                    "--algo" | "--program" => algo_name = c.demand("algorithm")?,
                    "--p" => p = c.value("--p")?,
                    "--q" => q = c.value("--q")?,
                    "--alpha" => alpha = c.value("--alpha")?,
                    "--pattern" => pattern = Some(parse_pattern(&c.value::<String>("pattern")?)?),
                    "--labels" => labels = c.value("--labels")?,
                    "--walkers" => walkers = WalkerCount::Absolute(c.value("--walkers")?),
                    "--walkers-mult" => {
                        walkers = WalkerCount::PerVertex(c.value("--walkers-mult")?)
                    }
                    "--steps" => steps = c.value("--steps")?,
                    "--seed" => seed = c.value("--seed")?,
                    "--threads" => threads = c.value("--threads")?,
                    "--ring-depth" => ring_depth = c.value("--ring-depth")?,
                    "--strategy" => strategy = parse_strategy(&c.demand("strategy")?)?,
                    "--output" => output = Some(PathBuf::from(c.demand("output path")?)),
                    "--visits" => visits = Some(PathBuf::from(c.demand("visits path")?)),
                    "--stats" => stats = true,
                    "--trace" => trace = Some(PathBuf::from(c.demand("trace path")?)),
                    "--metrics" => metrics = Some(PathBuf::from(c.demand("metrics path")?)),
                    "--progress" => progress = true,
                    "--hw-counters" => hw_counters = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            let algo = resolve_algo(&algo_name, p, q, alpha, pattern)?;
            Ok(Command::Walk {
                graph,
                engine,
                algo,
                walkers,
                steps,
                seed,
                threads,
                ring_depth,
                strategy,
                output,
                visits,
                stats,
                trace,
                metrics,
                progress,
                checkpoint_dir,
                checkpoint_every,
                labels,
                hw_counters,
                oocore_budget,
                fault_rate,
                fault_seed,
                halt_after,
            })
        }
        "resume" => {
            let graph = PathBuf::from(c.demand("graph path")?);
            let dir = PathBuf::from(c.demand("checkpoint directory")?);
            let mut algo_name = "deepwalk".to_string();
            let (mut p, mut q) = (1.0f64, 1.0f64);
            let mut alpha = 0.15f64;
            let mut pattern = None;
            let mut labels = 0usize;
            let mut walkers = WalkerCount::PerVertex(1);
            let mut steps = 80usize;
            let mut seed = 1u64;
            let mut threads = 1usize;
            let mut ring_depth = 0usize;
            let mut strategy = PlanStrategy::DynamicProgramming;
            let mut output = None;
            let mut visits = None;
            let mut stats = false;
            let mut trace = None;
            let mut metrics = None;
            let mut progress = false;
            let mut oocore_budget = 0usize;
            let mut fault_rate = 0.0f64;
            let mut fault_seed = 1u64;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--oocore-budget" => oocore_budget = c.value("--oocore-budget")?,
                    "--fault-rate" => fault_rate = c.value("--fault-rate")?,
                    "--fault-seed" => fault_seed = c.value("--fault-seed")?,
                    "--algo" | "--program" => algo_name = c.demand("algorithm")?,
                    "--p" => p = c.value("--p")?,
                    "--q" => q = c.value("--q")?,
                    "--alpha" => alpha = c.value("--alpha")?,
                    "--pattern" => pattern = Some(parse_pattern(&c.value::<String>("pattern")?)?),
                    "--labels" => labels = c.value("--labels")?,
                    "--walkers" => walkers = WalkerCount::Absolute(c.value("--walkers")?),
                    "--walkers-mult" => {
                        walkers = WalkerCount::PerVertex(c.value("--walkers-mult")?)
                    }
                    "--steps" => steps = c.value("--steps")?,
                    "--seed" => seed = c.value("--seed")?,
                    "--threads" => threads = c.value("--threads")?,
                    "--ring-depth" => ring_depth = c.value("--ring-depth")?,
                    "--strategy" => strategy = parse_strategy(&c.demand("strategy")?)?,
                    "--output" => output = Some(PathBuf::from(c.demand("output path")?)),
                    "--visits" => visits = Some(PathBuf::from(c.demand("visits path")?)),
                    "--stats" => stats = true,
                    "--trace" => trace = Some(PathBuf::from(c.demand("trace path")?)),
                    "--metrics" => metrics = Some(PathBuf::from(c.demand("metrics path")?)),
                    "--progress" => progress = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            let algo = resolve_algo(&algo_name, p, q, alpha, pattern)?;
            Ok(Command::Resume {
                graph,
                dir,
                algo,
                walkers,
                steps,
                seed,
                threads,
                ring_depth,
                strategy,
                output,
                visits,
                stats,
                trace,
                metrics,
                progress,
                labels,
                oocore_budget,
                fault_rate,
                fault_seed,
            })
        }
        "disk" => {
            let input = match c.next() {
                Some(p) => PathBuf::from(p),
                None => return Err(err("missing input path")),
            };
            let output = match c.next() {
                Some(p) => PathBuf::from(p),
                None => return Err(err("missing output path")),
            };
            if let Some(flag) = c.next() {
                return Err(err(format!("unknown flag {flag}")));
            }
            Ok(Command::Disk { input, output })
        }
        "synth" => {
            let kind = match c.demand("generator kind")?.as_str() {
                "power-law" => SynthKind::PowerLaw,
                "rmat" => SynthKind::Rmat,
                "ba" => SynthKind::BarabasiAlbert,
                "ws" => SynthKind::WattsStrogatz,
                "ring" => SynthKind::Ring,
                other => return Err(err(format!("unknown generator {other}"))),
            };
            let output = PathBuf::from(c.demand("output path")?);
            let mut params = SynthParams::default();
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--n" => params.n = c.value("--n")?,
                    "--alpha" => params.alpha = c.value("--alpha")?,
                    "--min-degree" => params.min_degree = c.value("--min-degree")?,
                    "--max-degree" => params.max_degree = c.value("--max-degree")?,
                    "--scale" => params.scale = c.value("--scale")?,
                    "--edge-factor" => params.edge_factor = c.value("--edge-factor")?,
                    "--m" => params.m = c.value("--m")?,
                    "--beta" => params.beta = c.value("--beta")?,
                    "--degree" => params.degree = c.value("--degree")?,
                    "--seed" => params.seed = c.value("--seed")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Synth {
                kind,
                output,
                params,
            })
        }
        "profile" => {
            let mut out = None;
            let mut quick = false;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--out" => out = Some(PathBuf::from(c.demand("output path")?)),
                    "--quick" => quick = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Profile { out, quick })
        }
        "conform" => {
            let mut full = false;
            let mut emit_golden = false;
            let mut programs = false;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--quick" => full = false,
                    "--full" => full = true,
                    "--emit-golden" => emit_golden = true,
                    "--programs" => programs = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Conform {
                full,
                emit_golden,
                programs,
            })
        }
        "cachecheck" => {
            let mut quick = false;
            let mut json = false;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--quick" => quick = true,
                    "--json" => json = true,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Cachecheck { quick, json })
        }
        "bench-diff" => {
            let fresh = PathBuf::from(c.demand("fresh results path")?);
            let mut baseline = PathBuf::from("BENCH_BASELINE.json");
            let mut tolerance = fm_bench::baseline::DEFAULT_TOLERANCE;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--baseline" => baseline = PathBuf::from(c.demand("baseline path")?),
                    "--tolerance" => tolerance = c.value("--tolerance")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if !tolerance.is_finite() || tolerance < 0.0 {
                return Err(err("--tolerance must be a finite non-negative fraction"));
            }
            Ok(Command::BenchDiff {
                fresh,
                baseline,
                tolerance,
            })
        }
        "trace-check" => {
            let file = PathBuf::from(c.demand("trace file")?);
            if let Some(flag) = c.next() {
                return Err(err(format!("unknown flag {flag}")));
            }
            Ok(Command::TraceCheck { file })
        }
        "audit" => {
            let mut root = None;
            let mut json = false;
            let mut update_ratchet = false;
            let mut graph = false;
            let mut why = None;
            while let Some(flag) = c.next() {
                match flag.as_str() {
                    "--root" => root = Some(PathBuf::from(c.demand("workspace root")?)),
                    "--json" => json = true,
                    "--update-ratchet" => update_ratchet = true,
                    "--graph" => graph = true,
                    "--why" => why = Some(c.demand("finding query")?),
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Audit {
                root,
                json,
                update_ratchet,
                graph: graph || why.is_some(),
                why,
            })
        }
        other => Err(err(format!("unknown command {other}; try `fmwalk help`"))),
    }
}

/// Resolves an `--algo`/`--program` name plus its parameter flags.
///
/// `pattern` is `Some` only when `--pattern` was given; metapath
/// defaults to the two-phase `0,1` cycle.
fn resolve_algo(
    name: &str,
    p: f64,
    q: f64,
    alpha: f64,
    pattern: Option<MetapathPattern>,
) -> Result<AlgoChoice, ParseError> {
    match name {
        "deepwalk" => Ok(AlgoChoice::DeepWalk),
        "node2vec" => Ok(AlgoChoice::Node2Vec { p, q }),
        "weighted" => Ok(AlgoChoice::Weighted),
        "ppr" => Ok(AlgoChoice::Ppr { alpha }),
        "early-exit" => Ok(AlgoChoice::EarlyExit),
        "metapath" => {
            let pattern = match pattern {
                Some(p) => p,
                None => MetapathPattern::new(&[0, 1])
                    .ok_or_else(|| err("internal: default metapath pattern"))?,
            };
            Ok(AlgoChoice::Metapath { pattern })
        }
        other => Err(err(format!(
            "unknown algorithm or program {other} \
             (deepwalk|weighted|node2vec|ppr|early-exit|metapath)"
        ))),
    }
}

/// Parses a `--pattern` value: comma-separated edge-type labels.
fn parse_pattern(raw: &str) -> Result<MetapathPattern, ParseError> {
    let mut labels = Vec::new();
    for part in raw.split(',') {
        let label: u8 = part.trim().parse().map_err(|_| {
            err(format!(
                "bad label {part:?} in --pattern (want comma-separated integers 0-255)"
            ))
        })?;
        labels.push(label);
    }
    MetapathPattern::new(&labels)
        .ok_or_else(|| err(format!("--pattern needs 1..={MAX_METAPATH_LEN} labels")))
}

fn parse_strategy(raw: &str) -> Result<PlanStrategy, ParseError> {
    match raw {
        "dp" => Ok(PlanStrategy::DynamicProgramming),
        "ups" => Ok(PlanStrategy::UniformPs),
        "uds" => Ok(PlanStrategy::UniformDs),
        "manual" => Ok(PlanStrategy::ManualHeuristic),
        other => Err(err(format!("unknown strategy {other} (dp|ups|uds|manual)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(line: &str) -> Result<Command, ParseError> {
        parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn help_variants() {
        assert_eq!(p("").unwrap(), Command::Help);
        assert_eq!(p("help").unwrap(), Command::Help);
        assert_eq!(p("--help").unwrap(), Command::Help);
    }

    #[test]
    fn convert_full() {
        let cmd = p("convert in.txt out.bin --symmetric --dedup --compact").unwrap();
        match cmd {
            Command::Convert {
                input,
                output,
                symmetric,
                dedup,
                drop_self_loops,
                compact,
            } => {
                assert_eq!(input, PathBuf::from("in.txt"));
                assert_eq!(output, PathBuf::from("out.bin"));
                assert!(symmetric && dedup && compact && !drop_self_loops);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn walk_defaults() {
        match p("walk g.bin").unwrap() {
            Command::Walk {
                engine,
                algo,
                walkers,
                steps,
                threads,
                ..
            } => {
                assert_eq!(engine, EngineChoice::FlashMob);
                assert_eq!(algo, AlgoChoice::DeepWalk);
                assert_eq!(walkers, WalkerCount::PerVertex(1));
                assert_eq!(steps, 80);
                assert_eq!(threads, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn walk_stats_flag() {
        match p("walk g.bin --threads 4 --stats").unwrap() {
            Command::Walk { threads, stats, .. } => {
                assert_eq!(threads, 4);
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
        match p("walk g.bin").unwrap() {
            Command::Walk { stats, .. } => assert!(!stats),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn walk_ring_depth_flag() {
        match p("walk g.bin --ring-depth 8").unwrap() {
            Command::Walk { ring_depth, .. } => assert_eq!(ring_depth, 8),
            other => panic!("{other:?}"),
        }
        // Default: 0 = planner auto.
        match p("walk g.bin").unwrap() {
            Command::Walk { ring_depth, .. } => assert_eq!(ring_depth, 0),
            other => panic!("{other:?}"),
        }
        match p("resume g.bin ck --ring-depth 4").unwrap() {
            Command::Resume { ring_depth, .. } => assert_eq!(ring_depth, 4),
            other => panic!("{other:?}"),
        }
        assert!(p("walk g.bin --ring-depth nope").is_err());
    }

    #[test]
    fn walk_node2vec_with_params() {
        match p("walk g.bin --algo node2vec --p 0.25 --q 4 --steps 40 --engine knightking").unwrap()
        {
            Command::Walk {
                engine,
                algo,
                steps,
                ..
            } => {
                assert_eq!(engine, EngineChoice::KnightKing);
                assert_eq!(algo, AlgoChoice::Node2Vec { p: 0.25, q: 4.0 });
                assert_eq!(steps, 40);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synth_power_law() {
        match p("synth power-law g.bin --n 5000 --alpha 2.1 --seed 9").unwrap() {
            Command::Synth { kind, params, .. } => {
                assert_eq!(kind, SynthKind::PowerLaw);
                assert_eq!(params.n, 5000);
                assert_eq!(params.alpha, 2.1);
                assert_eq!(params.seed, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plan_strategies() {
        for (raw, want) in [
            ("dp", PlanStrategy::DynamicProgramming),
            ("ups", PlanStrategy::UniformPs),
            ("uds", PlanStrategy::UniformDs),
            ("manual", PlanStrategy::ManualHeuristic),
        ] {
            match p(&format!("plan g.bin --strategy {raw}")).unwrap() {
                Command::Plan { strategy, .. } => assert_eq!(strategy, want),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn errors_are_informative() {
        assert!(p("walk").unwrap_err().0.contains("graph path"));
        assert!(p("walk g.bin --engine spark")
            .unwrap_err()
            .0
            .contains("unknown engine"));
        assert!(p("walk g.bin --steps abc")
            .unwrap_err()
            .0
            .contains("bad value"));
        assert!(p("frobnicate").unwrap_err().0.contains("unknown command"));
        assert!(p("synth ring").unwrap_err().0.contains("output path"));
    }

    #[test]
    fn conform_flags() {
        assert_eq!(
            p("conform").unwrap(),
            Command::Conform {
                full: false,
                emit_golden: false,
                programs: false
            }
        );
        assert_eq!(
            p("conform --quick").unwrap(),
            Command::Conform {
                full: false,
                emit_golden: false,
                programs: false
            }
        );
        assert_eq!(
            p("conform --full").unwrap(),
            Command::Conform {
                full: true,
                emit_golden: false,
                programs: false
            }
        );
        assert_eq!(
            p("conform --full --emit-golden").unwrap(),
            Command::Conform {
                full: true,
                emit_golden: true,
                programs: false
            }
        );
        assert_eq!(
            p("conform --programs").unwrap(),
            Command::Conform {
                full: false,
                emit_golden: false,
                programs: true
            }
        );
        assert!(p("conform --fast").unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn walk_program_flags() {
        // `--program` is an alias for `--algo`, covering the walk
        // programs; `--alpha` parameterizes PPR (default 0.15).
        match p("walk g.bin --program ppr").unwrap() {
            Command::Walk { algo, .. } => assert_eq!(algo, AlgoChoice::Ppr { alpha: 0.15 }),
            other => panic!("{other:?}"),
        }
        match p("walk g.bin --program ppr --alpha 0.4").unwrap() {
            Command::Walk { algo, .. } => assert_eq!(algo, AlgoChoice::Ppr { alpha: 0.4 }),
            other => panic!("{other:?}"),
        }
        match p("walk g.bin --algo early-exit").unwrap() {
            Command::Walk { algo, .. } => assert_eq!(algo, AlgoChoice::EarlyExit),
            other => panic!("{other:?}"),
        }
        // Classical algorithms remain reachable through the alias.
        match p("walk g.bin --program node2vec --p 0.5").unwrap() {
            Command::Walk { algo, .. } => {
                assert_eq!(algo, AlgoChoice::Node2Vec { p: 0.5, q: 1.0 });
            }
            other => panic!("{other:?}"),
        }
        assert!(p("walk g.bin --program frobwalk")
            .unwrap_err()
            .0
            .contains("unknown algorithm or program"));
    }

    #[test]
    fn walk_metapath_pattern_and_labels() {
        match p("walk g.bin --program metapath --pattern 2,0,1 --labels 3").unwrap() {
            Command::Walk { algo, labels, .. } => {
                assert_eq!(
                    algo,
                    AlgoChoice::Metapath {
                        pattern: MetapathPattern::new(&[2, 0, 1]).expect("pattern")
                    }
                );
                assert_eq!(labels, 3);
            }
            other => panic!("{other:?}"),
        }
        // Default pattern is the two-phase 0,1 cycle; default labels 0.
        match p("walk g.bin --program metapath").unwrap() {
            Command::Walk { algo, labels, .. } => {
                assert_eq!(
                    algo,
                    AlgoChoice::Metapath {
                        pattern: MetapathPattern::new(&[0, 1]).expect("pattern")
                    }
                );
                assert_eq!(labels, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(p("walk g.bin --pattern 1,x")
            .unwrap_err()
            .0
            .contains("bad label"));
        assert!(p("walk g.bin --pattern 1,2,3,4,5,6,7,8,9")
            .unwrap_err()
            .0
            .contains("--pattern needs"));
        // Resume accepts the same program flags (it must rebuild the
        // interrupted run's configuration exactly).
        match p("resume g.bin ck --program ppr --alpha 0.25 --labels 2").unwrap() {
            Command::Resume { algo, labels, .. } => {
                assert_eq!(algo, AlgoChoice::Ppr { alpha: 0.25 });
                assert_eq!(labels, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn walk_telemetry_flags() {
        match p("walk g.bin --trace t.json --metrics m.jsonl --progress").unwrap() {
            Command::Walk {
                trace,
                metrics,
                progress,
                ..
            } => {
                assert_eq!(trace, Some(PathBuf::from("t.json")));
                assert_eq!(metrics, Some(PathBuf::from("m.jsonl")));
                assert!(progress);
            }
            other => panic!("{other:?}"),
        }
        match p("walk g.bin").unwrap() {
            Command::Walk {
                trace,
                metrics,
                progress,
                ..
            } => {
                assert!(trace.is_none() && metrics.is_none() && !progress);
            }
            other => panic!("{other:?}"),
        }
        assert!(p("walk g.bin --trace").unwrap_err().0.contains("trace path"));
    }

    #[test]
    fn audit_command() {
        assert_eq!(
            p("audit").unwrap(),
            Command::Audit {
                root: None,
                json: false,
                update_ratchet: false,
                graph: false,
                why: None
            }
        );
        assert_eq!(
            p("audit --root /tmp/ws --json --update-ratchet --graph").unwrap(),
            Command::Audit {
                root: Some(PathBuf::from("/tmp/ws")),
                json: true,
                update_ratchet: true,
                graph: true,
                why: None
            }
        );
        // --why implies --graph (a call path needs the call graph).
        assert_eq!(
            p("audit --why sample.rs").unwrap(),
            Command::Audit {
                root: None,
                json: false,
                update_ratchet: false,
                graph: true,
                why: Some("sample.rs".to_string())
            }
        );
        assert!(p("audit --bogus").unwrap_err().0.contains("unknown flag"));
        assert!(p("audit --root").unwrap_err().0.contains("workspace root"));
        assert!(p("audit --why").unwrap_err().0.contains("finding query"));
    }

    #[test]
    fn walk_hw_counters_flag() {
        match p("walk g.bin --hw-counters").unwrap() {
            Command::Walk { hw_counters, .. } => assert!(hw_counters),
            other => panic!("{other:?}"),
        }
        match p("walk g.bin").unwrap() {
            Command::Walk { hw_counters, .. } => assert!(!hw_counters),
            other => panic!("{other:?}"),
        }
        // Resume does not take the flag (checkpointed replay must stay
        // bit-identical to the interrupted invocation's flag set).
        assert!(p("resume g.bin ck --hw-counters")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn cachecheck_command() {
        assert_eq!(
            p("cachecheck").unwrap(),
            Command::Cachecheck {
                quick: false,
                json: false
            }
        );
        assert_eq!(
            p("cachecheck --quick --json").unwrap(),
            Command::Cachecheck {
                quick: true,
                json: true
            }
        );
        assert!(p("cachecheck --bogus").unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn bench_diff_command() {
        match p("bench-diff fresh.jsonl").unwrap() {
            Command::BenchDiff {
                fresh,
                baseline,
                tolerance,
            } => {
                assert_eq!(fresh, PathBuf::from("fresh.jsonl"));
                assert_eq!(baseline, PathBuf::from("BENCH_BASELINE.json"));
                assert_eq!(tolerance, fm_bench::baseline::DEFAULT_TOLERANCE);
            }
            other => panic!("{other:?}"),
        }
        match p("bench-diff f.jsonl --baseline b.json --tolerance 0.25").unwrap() {
            Command::BenchDiff {
                baseline,
                tolerance,
                ..
            } => {
                assert_eq!(baseline, PathBuf::from("b.json"));
                assert_eq!(tolerance, 0.25);
            }
            other => panic!("{other:?}"),
        }
        assert!(p("bench-diff").unwrap_err().0.contains("fresh results"));
        assert!(p("bench-diff f --tolerance -1")
            .unwrap_err()
            .0
            .contains("non-negative"));
        assert!(p("bench-diff f --tolerance x")
            .unwrap_err()
            .0
            .contains("bad value"));
    }

    #[test]
    fn trace_check_command() {
        assert_eq!(
            p("trace-check out.json").unwrap(),
            Command::TraceCheck {
                file: PathBuf::from("out.json")
            }
        );
        assert!(p("trace-check").unwrap_err().0.contains("trace file"));
        assert!(p("trace-check a.json --x")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn walk_checkpoint_flags() {
        match p("walk g.bin --checkpoint-dir ck --checkpoint-every 16").unwrap() {
            Command::Walk {
                checkpoint_dir,
                checkpoint_every,
                ..
            } => {
                assert_eq!(checkpoint_dir, Some(PathBuf::from("ck")));
                assert_eq!(checkpoint_every, 16);
            }
            other => panic!("{other:?}"),
        }
        match p("walk g.bin").unwrap() {
            Command::Walk {
                checkpoint_dir,
                checkpoint_every,
                ..
            } => {
                assert!(checkpoint_dir.is_none());
                assert_eq!(checkpoint_every, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(p("walk g.bin --checkpoint-dir")
            .unwrap_err()
            .0
            .contains("checkpoint directory"));
    }

    #[test]
    fn resume_command() {
        match p("resume g.bin ck --steps 40 --seed 7 --threads 4 --output o.txt").unwrap() {
            Command::Resume {
                graph,
                dir,
                steps,
                seed,
                threads,
                output,
                ..
            } => {
                assert_eq!(graph, PathBuf::from("g.bin"));
                assert_eq!(dir, PathBuf::from("ck"));
                assert_eq!(steps, 40);
                assert_eq!(seed, 7);
                assert_eq!(threads, 4);
                assert_eq!(output, Some(PathBuf::from("o.txt")));
            }
            other => panic!("{other:?}"),
        }
        assert!(p("resume g.bin").unwrap_err().0.contains("checkpoint directory"));
        assert!(p("resume g.bin ck --engine knightking")
            .unwrap_err()
            .0
            .contains("unknown flag"));
    }

    #[test]
    fn walker_count_resolution() {
        assert_eq!(WalkerCount::Absolute(5).resolve(100), 5);
        assert_eq!(WalkerCount::PerVertex(3).resolve(100), 300);
    }
}
