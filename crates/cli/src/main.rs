//! The `fmwalk` binary: parse, run, report.

fn main() {
    let cmd = match fm_cli::parse(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", fm_cli::USAGE);
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = fm_cli::commands::run(cmd, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
