//! The `fmwalk` binary: parse, run, report.
//!
//! Exit codes: 0 success, 64 usage error (bad flags), and for command
//! failures the [`fm_cli::commands::ExitKind`] classes — 2 IO error,
//! 3 corrupt checkpoint, 4 invalid plan/configuration, 1 anything
//! else.

/// Conventional `EX_USAGE` from BSD `sysexits.h`.
const EX_USAGE: i32 = 64;

fn main() {
    let cmd = match fm_cli::parse(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", fm_cli::USAGE);
            std::process::exit(EX_USAGE);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = fm_cli::commands::run(cmd, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(e.1.code());
    }
}
