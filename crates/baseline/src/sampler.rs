//! Whole-graph edge samplers used by the baseline engines.

use fm_graph::{Csr, VertexId};
use fm_memsim::{AccessKind, Probe};
use fm_rng::Rng64;

/// Simulated address bases for the baseline arrays.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineAddrs {
    /// CSR offsets.
    pub offsets: u64,
    /// CSR targets.
    pub targets: u64,
    /// Alias-table probability array (GraphVite).
    pub alias_prob: u64,
    /// Alias-table alias array (GraphVite).
    pub alias_idx: u64,
    /// Cumulative weights (weighted KnightKing walks).
    pub cum_weights: u64,
}

/// How a baseline engine draws one edge.
#[derive(Debug)]
pub enum SamplerKind {
    /// Uniform pick over the adjacency list (KnightKing, unweighted).
    Uniform,
    /// Inverse-transform over per-adjacency cumulative weights
    /// (KnightKing, weighted).
    CumulativeWeights(Vec<f32>),
    /// Per-vertex alias tables flattened over all edges (GraphVite).
    ///
    /// `prob[e]` / `alias[e]` are parallel to the CSR targets array;
    /// `alias[e]` stores an index *within the same adjacency list*.
    Alias {
        /// Scaled acceptance probability per slot.
        prob: Vec<f64>,
        /// In-adjacency alias slot.
        alias: Vec<u32>,
    },
}

impl SamplerKind {
    /// Builds the flattened per-vertex alias tables for a graph.
    ///
    /// Unweighted graphs get uniform tables (every slot accepts), which
    /// is exactly what GraphVite constructs; the traffic cost of reading
    /// the table is what matters.
    pub fn alias_for(graph: &Csr) -> Self {
        let e = graph.edge_count();
        let mut prob = vec![1.0f64; e];
        let mut alias = vec![0u32; e];
        if graph.is_weighted() {
            for v in 0..graph.vertex_count() {
                let off = graph.adjacency_start(v as VertexId);
                let ws = graph.edge_weights(v as VertexId).expect("weighted");
                if ws.is_empty() {
                    continue;
                }
                let weights: Vec<f64> = ws.iter().map(|&w| w as f64).collect();
                if weights.iter().sum::<f64>() <= 0.0 {
                    continue;
                }
                let (p, a) = build_alias_rows(&weights);
                for (i, (pi, ai)) in p.into_iter().zip(a).enumerate() {
                    prob[off + i] = pi;
                    alias[off + i] = ai;
                }
            }
        }
        SamplerKind::Alias { prob, alias }
    }

    /// Builds cumulative-weight storage for a weighted graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    pub fn cumulative_for(graph: &Csr) -> Self {
        assert!(graph.is_weighted(), "cumulative sampler needs weights");
        let mut cum = Vec::with_capacity(graph.edge_count());
        let mut acc = 0.0f32;
        for v in 0..graph.vertex_count() {
            for &w in graph.edge_weights(v as VertexId).expect("weighted") {
                acc += w;
                cum.push(acc);
            }
        }
        SamplerKind::CumulativeWeights(cum)
    }

    /// Draws the slot index `k` (within `v`'s adjacency list).
    ///
    /// The offset lookup is charged as a pointer-chasing access — the
    /// address depends on the previous step's sampled vertex, forming
    /// the dependent-load chain that dominates baseline latency.
    pub fn pick<R: Rng64, P: Probe>(
        &self,
        graph: &Csr,
        v: VertexId,
        rng: &mut R,
        probe: &mut P,
        addr: &BaselineAddrs,
    ) -> usize {
        probe.touch(addr.offsets + 8 * v as u64, 8, AccessKind::PointerChase);
        let off = graph.adjacency_start(v);
        let d = graph.degree(v);
        debug_assert!(d > 0);
        match self {
            SamplerKind::Uniform => rng.gen_index(d),
            SamplerKind::CumulativeWeights(cum) => {
                let lo = if off == 0 { 0.0 } else { cum[off - 1] };
                let hi = cum[off + d - 1];
                let x = lo + rng.next_f64() as f32 * (hi - lo);
                let k = cum[off..off + d].partition_point(|&c| c <= x).min(d - 1);
                probe.touch(
                    addr.cum_weights + 4 * (off + k) as u64,
                    4,
                    AccessKind::Random,
                );
                k
            }
            SamplerKind::Alias { prob, alias } => {
                let slot = rng.gen_index(d);
                probe.touch(
                    addr.alias_prob + 8 * (off + slot) as u64,
                    8,
                    AccessKind::Random,
                );
                probe.touch(
                    addr.alias_idx + 4 * (off + slot) as u64,
                    4,
                    AccessKind::Random,
                );
                if rng.next_f64() < prob[off + slot] {
                    slot
                } else {
                    alias[off + slot] as usize
                }
            }
        }
    }
}

/// Vose's construction returning flat rows (local helper so the flat
/// layout does not depend on `AliasTable`'s internals).
fn build_alias_rows(weights: &[f64]) -> (Vec<f64>, Vec<u32>) {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let scale = n as f64 / total;
    let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
    let mut alias = vec![0u32; n];
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &p) in prob.iter().enumerate() {
        if p < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
        alias[s as usize] = l;
        prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
        if prob[l as usize] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    for &i in small.iter().chain(large.iter()) {
        prob[i as usize] = 1.0;
    }
    (prob, alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;
    use fm_memsim::NullProbe;
    use fm_rng::Xorshift64Star;

    #[test]
    fn uniform_pick_is_uniform() {
        let g = synth::star(9); // hub degree 8
        let s = SamplerKind::Uniform;
        let mut rng = Xorshift64Star::new(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[s.pick(&g, 0, &mut rng, &mut NullProbe, &BaselineAddrs::default())] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 80_000.0 - 0.125).abs() < 0.01);
        }
    }

    #[test]
    fn alias_unweighted_is_uniform() {
        let g = synth::star(5);
        let s = SamplerKind::alias_for(&g);
        let mut rng = Xorshift64Star::new(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[s.pick(&g, 0, &mut rng, &mut NullProbe, &BaselineAddrs::default())] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 40_000.0 - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn alias_weighted_matches_weights() {
        let g = Csr::from_parts(
            vec![0, 3, 4, 5, 6],
            vec![1, 2, 3, 0, 0, 0],
            Some(vec![1.0, 2.0, 1.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        let s = SamplerKind::alias_for(&g);
        let mut rng = Xorshift64Star::new(3);
        let mut counts = [0usize; 3];
        for _ in 0..80_000 {
            counts[s.pick(&g, 0, &mut rng, &mut NullProbe, &BaselineAddrs::default())] += 1;
        }
        let total = 80_000.0;
        assert!((counts[0] as f64 / total - 0.25).abs() < 0.01);
        assert!((counts[1] as f64 / total - 0.50).abs() < 0.01);
        assert!((counts[2] as f64 / total - 0.25).abs() < 0.01);
    }

    #[test]
    fn cumulative_weighted_matches_weights() {
        let g = Csr::from_parts(
            vec![0, 2, 3, 4],
            vec![1, 2, 0, 0],
            Some(vec![3.0, 1.0, 1.0, 1.0]),
        )
        .unwrap();
        let s = SamplerKind::cumulative_for(&g);
        let mut rng = Xorshift64Star::new(4);
        let mut first = 0usize;
        for _ in 0..40_000 {
            if s.pick(&g, 0, &mut rng, &mut NullProbe, &BaselineAddrs::default()) == 0 {
                first += 1;
            }
        }
        assert!((first as f64 / 40_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn alias_touches_more_memory_than_uniform() {
        use fm_memsim::{HierarchyConfig, MemorySystem};
        let g = synth::power_law(500, 2.0, 1, 50, 5);
        let addrs = BaselineAddrs {
            offsets: 0x10_0000,
            targets: 0x20_0000,
            alias_prob: 0x30_0000,
            alias_idx: 0x40_0000,
            cum_weights: 0x50_0000,
        };
        let run = |s: &SamplerKind| {
            let mut probe = MemorySystem::new(HierarchyConfig::skylake_server());
            let mut rng = Xorshift64Star::new(6);
            for v in 0..500u32 {
                let _ = s.pick(&g, v, &mut rng, &mut probe, &addrs);
            }
            probe.stats().accesses
        };
        let uniform = run(&SamplerKind::Uniform);
        let alias = run(&SamplerKind::alias_for(&g));
        assert_eq!(alias, uniform + 2 * 500, "alias adds two touches per pick");
    }
}
