//! Walker-at-a-time baseline engines.
//!
//! The paper compares FlashMob against two 2019-generation systems, both
//! of which process walkers *individually*, following each one wherever
//! it leads — the design whose random whole-graph DRAM accesses FlashMob
//! eliminates:
//!
//! * **KnightKing** (`kind = `[`BaselineKind::KnightKing`]): a general
//!   random-walk engine.  On a single node it moves each walker as far
//!   as possible before taking the next; first-order uniform steps cost
//!   one dependent offset read plus one edge read, and dynamic
//!   (second-order) probabilities use rejection sampling.  Its stock RNG
//!   is the Mersenne Twister — the paper notes swapping in xorshift*
//!   only gains 4-9% because the engine is memory-bound, an ablation
//!   [`BaselineConfig::rng`] reproduces.
//! * **GraphVite** (`kind = `[`BaselineKind::GraphVite`]): the random
//!   walk component of the CPU-GPU node-embedding system.  It finishes
//!   one walker's entire path before starting another and samples edges
//!   through per-vertex **alias tables**, whose extra probability/alias
//!   arrays roughly triple the random traffic per step — which is why
//!   the paper measures KnightKing 2.2-3.8x faster.
//!
//! Both engines share FlashMob's algorithm/stop/init/output types, so
//! every experiment can swap engines without touching the workload.

mod engine;
mod sampler;

pub use engine::{head_to_head_deepwalk, Baseline, BaselineStats};
pub use sampler::SamplerKind;

use flashmob::{StopRule, WalkAlgorithm, WalkerInit};

/// Which baseline system to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// KnightKing-style: direct uniform/rejection sampling, MT19937.
    KnightKing,
    /// GraphVite-style: per-vertex alias tables, MT19937.
    GraphVite,
}

impl BaselineKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::KnightKing => "KnightKing",
            BaselineKind::GraphVite => "GraphVite",
        }
    }
}

/// The pseudo-random generator a baseline uses (Table 5's RNG ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngKind {
    /// The Mersenne Twister both baseline systems ship with.
    Mt19937,
    /// FlashMob's cheaper xorshift* generator.
    XorShift,
}

/// Configuration of a baseline run (mirrors `flashmob::WalkConfig`).
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Emulated system.
    pub kind: BaselineKind,
    /// Transition-probability specification.
    pub algorithm: WalkAlgorithm,
    /// Termination rule.
    pub stop: StopRule,
    /// Number of walkers.
    pub walkers: usize,
    /// Initial placement.
    pub init: WalkerInit,
    /// RNG seed.
    pub seed: u64,
    /// Whether to retain the full path matrix.
    pub record_paths: bool,
    /// Whether to accumulate per-vertex visit counts.
    pub record_visits: bool,
    /// Which RNG to use.
    pub rng: RngKind,
    /// Worker threads for the walker-chunk loop.
    ///
    /// Both emulated systems give each thread its own RNG, so parallel
    /// runs are deterministic per `(seed, threads)` pair but do *not*
    /// reproduce the single-threaded walk path-for-path (unlike
    /// FlashMob's per-partition streams).  Instrumented (`run_probed`)
    /// runs always execute sequentially.
    pub threads: usize,
}

impl BaselineConfig {
    /// KnightKing running DeepWalk with the paper's defaults.
    pub fn knightking_deepwalk() -> Self {
        Self {
            kind: BaselineKind::KnightKing,
            algorithm: WalkAlgorithm::DeepWalk,
            stop: StopRule::FixedSteps(80),
            walkers: 0,
            init: WalkerInit::UniformEdge,
            seed: 1,
            record_paths: true,
            record_visits: false,
            rng: RngKind::Mt19937,
            threads: 1,
        }
    }

    /// GraphVite running DeepWalk.
    pub fn graphvite_deepwalk() -> Self {
        Self {
            kind: BaselineKind::GraphVite,
            ..Self::knightking_deepwalk()
        }
    }

    /// Sets the walker count.
    pub fn walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers;
        self
    }

    /// Sets a fixed step count.
    pub fn steps(mut self, steps: usize) -> Self {
        self.stop = StopRule::FixedSteps(steps);
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the algorithm.
    pub fn algorithm(mut self, algorithm: WalkAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the RNG kind.
    pub fn rng(mut self, rng: RngKind) -> Self {
        self.rng = rng;
        self
    }

    /// Sets path recording.
    pub fn record_paths(mut self, yes: bool) -> Self {
        self.record_paths = yes;
        self
    }

    /// Sets visit counting.
    pub fn record_visits(mut self, yes: bool) -> Self {
        self.record_visits = yes;
        self
    }

    /// Sets the walker initialization.
    pub fn init(mut self, init: WalkerInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Maximum steps any walker can take.
    pub fn max_steps(&self) -> usize {
        match self.stop {
            StopRule::FixedSteps(n) => n,
            StopRule::Geometric { max_steps, .. } => max_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_workload() {
        let c = BaselineConfig::knightking_deepwalk();
        assert_eq!(c.max_steps(), 80);
        assert_eq!(c.rng, RngKind::Mt19937);
        assert_eq!(c.kind.label(), "KnightKing");
    }

    #[test]
    fn builders_compose() {
        let c = BaselineConfig::graphvite_deepwalk()
            .walkers(10)
            .steps(3)
            .rng(RngKind::XorShift);
        assert_eq!(c.walkers, 10);
        assert_eq!(c.max_steps(), 3);
        assert_eq!(c.rng, RngKind::XorShift);
    }
}
