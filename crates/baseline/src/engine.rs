//! The walker-at-a-time baseline execution loop.

use std::time::{Duration, Instant};

use fm_graph::relabel::Relabeling;
use fm_graph::{Csr, VertexId};
use fm_memsim::{AccessKind, AddressSpace, NullProbe, Probe};
use fm_rng::{split_stream, Mt19937, Rng64, Xorshift64Star};
use fm_telemetry::{json, SpanEvent, Stage, Telemetry, NO_STEP};

use flashmob::pool::{DisjointSlice, PoolStats, WorkerPool};

use flashmob::output::WalkOutput;
use flashmob::walker::initialize;
use flashmob::{StopRule, WalkAlgorithm, WalkError, DEAD};

use crate::sampler::{BaselineAddrs, SamplerKind};
use crate::{BaselineConfig, BaselineKind, RngKind};

/// Either baseline RNG behind one dispatch point.
enum AnyRng {
    Mt(Box<Mt19937>),
    Xs(Xorshift64Star),
}

impl Rng64 for AnyRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            AnyRng::Mt(r) => r.next_u64(),
            AnyRng::Xs(r) => r.next_u64(),
        }
    }
}

/// Execution statistics of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Number of walkers.
    pub walkers: usize,
    /// Live walker-steps executed.
    pub steps_taken: u64,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Per-vertex visit counts (original ID space) when requested.
    pub visits: Option<Vec<u64>>,
    /// Worker-pool accounting (zero for sequential runs).
    pub pool: PoolStats,
}

impl BaselineStats {
    /// Average wall-clock nanoseconds per walker-step.
    pub fn per_step_ns(&self) -> f64 {
        if self.steps_taken == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.steps_taken as f64
    }

    /// Fraction of worker capacity spent idle (0.0 for sequential runs
    /// and zero-length walls — never NaN).
    pub fn pool_idle_ratio(&self) -> f64 {
        let denom = self.pool.spawned as f64 * self.wall.as_secs_f64();
        if denom <= 0.0 {
            return 0.0;
        }
        (self.pool.idle.as_secs_f64() / denom).min(1.0)
    }

    /// Human-readable summary; all ratios guarded against
    /// `steps_taken == 0`.
    pub fn human_summary(&self) -> String {
        let mut out = format!(
            "walkers: {}, steps taken: {}, wall: {:.3?}\n",
            self.walkers, self.steps_taken, self.wall
        );
        out.push_str(&format!("per-step: {:.1} ns\n", self.per_step_ns()));
        if self.pool.spawned > 0 {
            out.push_str(&format!(
                "pool: {} threads spawned, {} epochs dispatched, {:.1?} cumulative worker idle (idle ratio {:.1}%)\n",
                self.pool.spawned,
                self.pool.epochs,
                self.pool.idle,
                100.0 * self.pool_idle_ratio(),
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled, no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"walkers\": {}, \"steps_taken\": {}, \"wall_ns\": {}, \"per_step_ns\": {}, \
             \"pool\": {{\"spawned\": {}, \"epochs\": {}, \"idle_ns\": {}, \"idle_ratio\": {}}}}}",
            self.walkers,
            self.steps_taken,
            self.wall.as_nanos(),
            json::num(self.per_step_ns()),
            self.pool.spawned,
            self.pool.epochs,
            self.pool.idle.as_nanos(),
            json::num(self.pool_idle_ratio()),
        )
    }
}

/// A prepared baseline engine.
///
/// Unlike FlashMob, baselines keep the graph in its original vertex
/// order (no locality pre-processing) — we only *store* a relabeling so
/// walk output uses the same API.
#[derive(Debug)]
pub struct Baseline {
    graph: Csr,
    config: BaselineConfig,
    sampler: SamplerKind,
    addrs: BaselineAddrs,
    /// Identity mapping (baselines do not reorder vertices).
    relabel: Relabeling,
}

impl Baseline {
    /// Prepares a baseline engine.
    pub fn new(graph: &Csr, config: BaselineConfig) -> Result<Self, WalkError> {
        if graph.vertex_count() == 0 {
            return Err(WalkError::EmptyGraph);
        }
        if config.walkers == 0 {
            return Err(WalkError::NoWalkers);
        }
        for v in 0..graph.vertex_count() {
            if graph.degree(v as VertexId) == 0 {
                return Err(WalkError::SinkVertex(v as VertexId));
            }
        }
        if matches!(config.algorithm, WalkAlgorithm::Weighted) && !graph.is_weighted() {
            return Err(WalkError::MissingWeights);
        }
        if config.algorithm.is_stateful() || config.algorithm.uses_edge_labels() {
            return Err(WalkError::Planning(format!(
                "the walker-at-a-time baselines do not implement the {} program",
                config.algorithm.name()
            )));
        }
        let mut graph = graph.clone();
        if config.algorithm.is_second_order() {
            if graph.is_weighted() {
                return Err(WalkError::Planning(
                    "node2vec on weighted graphs is not supported".into(),
                ));
            }
            graph.sort_adjacency_lists();
        }
        let sampler = match (config.kind, &config.algorithm) {
            (BaselineKind::GraphVite, _) => SamplerKind::alias_for(&graph),
            (BaselineKind::KnightKing, WalkAlgorithm::Weighted) => {
                SamplerKind::cumulative_for(&graph)
            }
            (BaselineKind::KnightKing, _) => SamplerKind::Uniform,
        };
        let mut space = AddressSpace::new();
        let n = graph.vertex_count() as u64;
        let e = graph.edge_count() as u64;
        let addrs = BaselineAddrs {
            offsets: space.alloc((n + 1) * 8),
            targets: space.alloc(e * 4),
            alias_prob: space.alloc(e * 8),
            alias_idx: space.alloc(e * 4),
            cum_weights: space.alloc(e * 4),
        };
        let relabel = Relabeling::identity(graph.vertex_count());
        Ok(Self {
            graph,
            config,
            sampler,
            addrs,
            relabel,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Runs the walk.
    pub fn run(&self) -> Result<WalkOutput, WalkError> {
        self.run_with_stats().map(|(o, _)| o)
    }

    /// Runs the walk and returns statistics.
    pub fn run_with_stats(&self) -> Result<(WalkOutput, BaselineStats), WalkError> {
        let mut probe = NullProbe;
        self.run_internal(&mut probe, true)
    }

    /// Runs the walk recording telemetry into `tel`.
    ///
    /// Baselines have no vertex partitions, so the partition axis maps
    /// to the *worker chunk* index: chunk `t`'s spans and step counters
    /// land on partition `t`, and the counter totals still sum exactly
    /// to [`BaselineStats::steps_taken`].  Recording does not touch the
    /// walk's RNG streams, so traced output is bit-identical.
    pub fn run_traced(
        &self,
        tel: &mut Telemetry,
    ) -> Result<(WalkOutput, BaselineStats), WalkError> {
        let mut probe = NullProbe;
        self.run_internal_tel(&mut probe, true, tel)
    }

    /// Runs the walk feeding every memory access into `probe`.
    ///
    /// Instrumented runs execute sequentially regardless of the
    /// configured thread count so counter attribution is exact and
    /// identical to the historical single-threaded baseline trace.
    pub fn run_probed<P: Probe>(
        &self,
        probe: &mut P,
    ) -> Result<(WalkOutput, BaselineStats), WalkError> {
        self.run_internal(probe, false)
    }

    /// Builds the configured RNG from a seed value.
    fn make_rng(&self, seed: u64) -> AnyRng {
        match self.config.rng {
            RngKind::Mt19937 => AnyRng::Mt(Box::new(Mt19937::new(seed as u32))),
            RngKind::XorShift => AnyRng::Xs(Xorshift64Star::new(seed)),
        }
    }

    fn run_internal<P: Probe>(
        &self,
        probe: &mut P,
        allow_parallel: bool,
    ) -> Result<(WalkOutput, BaselineStats), WalkError> {
        self.run_internal_tel(probe, allow_parallel, &mut Telemetry::off())
    }

    fn run_internal_tel<P: Probe>(
        &self,
        probe: &mut P,
        allow_parallel: bool,
        tel: &mut Telemetry,
    ) -> Result<(WalkOutput, BaselineStats), WalkError> {
        let start = Instant::now();
        let walkers = self.config.walkers;
        let steps = self.config.max_steps();

        let w0 = initialize(&self.graph, &self.config.init, walkers, self.config.seed);
        let mut rows: Vec<Vec<VertexId>> = if self.config.record_paths {
            vec![vec![DEAD; walkers]; steps + 1]
        } else {
            vec![vec![DEAD; walkers]] // only final positions
        };
        let mut visits = self
            .config
            .record_visits
            .then(|| vec![0u64; self.graph.vertex_count()]);

        let steps_taken;
        let mut pool_stats = PoolStats::default();
        let threads = self.config.threads.max(1).min(walkers.max(1));
        if allow_parallel && threads > 1 {
            // Walker-chunk loop over the persistent pool: contiguous
            // walker ranges, one per worker, each with its own RNG
            // stream — the real systems' per-thread-generator design, so
            // results are deterministic per `(seed, threads)` but not
            // across thread counts.
            let pool = WorkerPool::new(threads);
            let chunk = walkers.div_ceil(threads);
            let bounds: Vec<(usize, usize)> = (0..threads)
                .map(|t| ((t * chunk).min(walkers), ((t + 1) * chunk).min(walkers)))
                .collect();
            let row_ptrs: Vec<DisjointSlice<VertexId>> =
                rows.iter_mut().map(|r| DisjointSlice::new(r)).collect();
            let mut shards: Vec<Vec<u64>> = if visits.is_some() {
                (0..threads)
                    .map(|_| vec![0u64; self.graph.vertex_count()])
                    .collect()
            } else {
                Vec::new()
            };
            let record_visits = visits.is_some();
            let shard_ptr = DisjointSlice::new(&mut shards);
            let taken = std::sync::atomic::AtomicU64::new(0);
            // Per-worker telemetry lanes (spans) and step slots
            // (counters), both single-writer during the dispatch and
            // read back by the coordinator after it returns.
            let traced = tel.is_on();
            let origin = tel.origin();
            let mut chunk_steps = vec![0u64; threads];
            let chunk_ptr = DisjointSlice::new(&mut chunk_steps);
            let lanes = tel.worker_lanes(if traced { threads } else { 0 });
            let lanes_ptr = DisjointSlice::new(lanes);
            pool.run_labeled("baseline-sample", &|t| {
                let (lo, hi) = bounds[t];
                if lo >= hi {
                    return;
                }
                let span_start = traced.then(|| origin.elapsed().as_nanos() as u64);
                // SAFETY: every worker takes column range `[lo, hi)` of
                // each row, and the ranges are pairwise disjoint.
                let mut cols: Vec<&mut [VertexId]> = row_ptrs
                    .iter()
                    .map(|r| unsafe { r.slice_mut(lo, hi - lo) })
                    .collect();
                // SAFETY: visit shard `t` belongs to worker `t` alone.
                let shard = record_visits
                    .then(|| unsafe { &mut shard_ptr.slice_mut(t, 1)[0] });
                let mut rng = self.make_rng(split_stream(self.config.seed, t as u64));
                let local = self.walk_chunk(
                    &w0[lo..hi],
                    &mut cols,
                    shard.map(Vec::as_mut_slice),
                    &mut rng,
                    &mut NullProbe,
                );
                if let Some(start_ns) = span_start {
                    let now = origin.elapsed().as_nanos() as u64;
                    // SAFETY: lane `t` belongs to this worker alone.
                    let lane = unsafe { lanes_ptr.slice_mut(t, 1) };
                    lane[0].record(SpanEvent {
                        stage: Stage::Sample,
                        start_ns,
                        dur_ns: now.saturating_sub(start_ns),
                        thread: t as u32 + 1,
                        step: NO_STEP,
                        partition: t as u32,
                    });
                }
                // SAFETY: step slot `t` belongs to this worker alone.
                unsafe { chunk_ptr.slice_mut(t, 1)[0] = local };
                taken.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
            tel.drain_workers();
            if traced {
                for (t, &steps) in chunk_steps.iter().enumerate() {
                    tel.record_partition_step(t, steps, false);
                }
            }
            steps_taken = taken.into_inner();
            if let Some(vis) = visits.as_deref_mut() {
                for shard in &shards {
                    for (a, b) in vis.iter_mut().zip(shard) {
                        *a += b;
                    }
                }
            }
            pool_stats = pool.stats();
        } else {
            // One generator for the whole (single-threaded) walk,
            // matching the real systems' per-thread RNG; constructing
            // MT19937's 2.5 KiB state per walker would dominate short
            // walks.
            let mut rng = self.make_rng(self.config.seed);
            let mut cols: Vec<&mut [VertexId]> =
                rows.iter_mut().map(Vec::as_mut_slice).collect();
            let span_start = tel.is_on().then(|| tel.now_ns());
            steps_taken =
                self.walk_chunk(&w0, &mut cols, visits.as_deref_mut(), &mut rng, probe);
            if let Some(s) = span_start {
                tel.span_since(Stage::Sample, s, NO_STEP, 0);
                tel.record_partition_step(0, steps_taken, false);
            }
        }

        let wall = start.elapsed();
        let output = WalkOutput::new(rows, walkers, self.relabel.clone());
        let stats = BaselineStats {
            walkers,
            steps_taken,
            wall,
            visits,
            pool: pool_stats,
        };
        Ok((output, stats))
    }

    /// Walks one contiguous chunk of walkers to completion.
    ///
    /// `rows` holds this chunk's column slice of every recorded row.
    /// The defining baseline behavior: each walker runs to completion
    /// before the next starts (GraphVite: per-path; KnightKing: "moves a
    /// walker as much as possible" — identical on one node).
    fn walk_chunk<R: Rng64, P: Probe>(
        &self,
        w0: &[VertexId],
        rows: &mut [&mut [VertexId]],
        mut visits: Option<&mut [u64]>,
        rng: &mut R,
        probe: &mut P,
    ) -> u64 {
        let steps = self.config.max_steps();
        let exit_prob = match self.config.stop {
            StopRule::Geometric { exit_prob, .. } => exit_prob,
            StopRule::FixedSteps(_) => 0.0,
        };
        let bound = if self.config.algorithm.is_second_order() {
            self.config.algorithm.node2vec_bound()
        } else {
            1.0
        };
        let mut steps_taken = 0u64;
        for (j, &start_v) in w0.iter().enumerate() {
            let mut v = start_v;
            let mut prev: Option<VertexId> = None;
            if self.config.record_paths {
                rows[0][j] = v;
            }
            for i in 0..steps {
                if let Some(vis) = visits.as_deref_mut() {
                    vis[v as usize] += 1;
                }
                let next = self.step(v, prev, bound, rng, probe);
                steps_taken += 1;
                probe.step();
                prev = Some(v);
                v = next;
                let died = exit_prob > 0.0 && rng.next_f64() < exit_prob;
                if self.config.record_paths {
                    rows[i + 1][j] = if died { DEAD } else { v };
                }
                if died {
                    v = DEAD;
                    break;
                }
            }
            if !self.config.record_paths {
                rows[0][j] = v;
            }
        }
        steps_taken
    }

    /// One walker-step: pick a slot via the configured sampler, read the
    /// target, applying the second-order bias by rejection when needed.
    fn step<R: Rng64, P: Probe>(
        &self,
        v: VertexId,
        prev: Option<VertexId>,
        bound: f64,
        rng: &mut R,
        probe: &mut P,
    ) -> VertexId {
        let off = self.graph.adjacency_start(v);
        match self.config.algorithm {
            WalkAlgorithm::DeepWalk | WalkAlgorithm::Weighted => {
                let k = self.sampler.pick(&self.graph, v, rng, probe, &self.addrs);
                probe.touch(
                    self.addrs.targets + 4 * (off + k) as u64,
                    4,
                    AccessKind::Random,
                );
                self.graph.targets()[off + k]
            }
            WalkAlgorithm::Node2Vec { p, q } => {
                let t = match prev {
                    Some(t) => t,
                    // First step has no history: uniform.
                    None => {
                        let k = self.sampler.pick(&self.graph, v, rng, probe, &self.addrs);
                        probe.touch(
                            self.addrs.targets + 4 * (off + k) as u64,
                            4,
                            AccessKind::Random,
                        );
                        return self.graph.targets()[off + k];
                    }
                };
                let bound_min = (1.0 / p).min(1.0).min(1.0 / q);
                let mut attempts = 0;
                loop {
                    let k = self.sampler.pick(&self.graph, v, rng, probe, &self.addrs);
                    probe.touch(
                        self.addrs.targets + 4 * (off + k) as u64,
                        4,
                        AccessKind::Random,
                    );
                    let cand = self.graph.targets()[off + k];
                    attempts += 1;
                    let x = rng.next_f64() * bound;
                    // Stratified rejection: draws below the minimum
                    // weight accept without the connectivity check.
                    if x < bound_min || attempts >= 64 {
                        return cand;
                    }
                    let w = if cand == t {
                        1.0 / p
                    } else {
                        probe.touch(self.addrs.offsets + 8 * t as u64, 8, AccessKind::Random);
                        probe.touch(
                            self.addrs.targets + 4 * self.graph.adjacency_start(t) as u64,
                            4,
                            AccessKind::Random,
                        );
                        if self.graph.has_edge(t, cand) {
                            1.0
                        } else {
                            1.0 / q
                        }
                    };
                    if x < w {
                        return cand;
                    }
                }
            }
            // Programs beyond the paper's three algorithms are rejected
            // at construction (`Baseline::new`).
            _ => unreachable!("baseline engines run the paper's algorithms only"),
        }
    }
}

/// Convenience: runs DeepWalk on both the baseline and FlashMob with the
/// same workload and returns `(baseline_ns, flashmob_ns)` per step —
/// used by tests and the Figure 8 harness.
pub fn head_to_head_deepwalk(
    graph: &Csr,
    walkers: usize,
    steps: usize,
    seed: u64,
) -> Result<(f64, f64), WalkError> {
    let b = Baseline::new(
        graph,
        BaselineConfig::knightking_deepwalk()
            .walkers(walkers)
            .steps(steps)
            .seed(seed)
            .record_paths(false),
    )?;
    let (_, bs) = b.run_with_stats()?;
    let f = flashmob::FlashMob::new(
        graph,
        flashmob::WalkConfig::deepwalk()
            .walkers(walkers)
            .steps(steps)
            .seed(seed)
            .record_paths(false),
    )?;
    let (_, fs) = f.run_with_stats()?;
    Ok((bs.per_step_ns(), fs.per_step_ns()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    fn config(walkers: usize, steps: usize) -> BaselineConfig {
        BaselineConfig::knightking_deepwalk()
            .walkers(walkers)
            .steps(steps)
            .seed(11)
    }

    #[test]
    fn paths_follow_edges() {
        let g = synth::power_law(300, 2.0, 1, 30, 2);
        let engine = Baseline::new(&g, config(100, 6)).unwrap();
        let out = engine.run().unwrap();
        for path in out.paths() {
            assert_eq!(path.len(), 7);
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
    }

    #[test]
    fn graphvite_paths_follow_edges() {
        let g = synth::power_law(300, 2.0, 1, 30, 2);
        let mut cfg = config(50, 5);
        cfg.kind = BaselineKind::GraphVite;
        let engine = Baseline::new(&g, cfg).unwrap();
        for path in engine.run().unwrap().paths() {
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = synth::power_law(200, 2.0, 1, 20, 3);
        let engine = Baseline::new(&g, config(50, 4)).unwrap();
        assert_eq!(engine.run().unwrap().paths(), engine.run().unwrap().paths());
    }

    #[test]
    fn rng_kinds_both_work() {
        let g = synth::cycle(32);
        for rng in [RngKind::Mt19937, RngKind::XorShift] {
            let engine = Baseline::new(&g, config(20, 5).rng(rng)).unwrap();
            let (out, stats) = engine.run_with_stats().unwrap();
            assert_eq!(stats.steps_taken, 100);
            assert_eq!(out.paths().len(), 20);
        }
    }

    #[test]
    fn node2vec_runs() {
        let g = synth::power_law(200, 2.0, 2, 30, 7);
        let cfg = config(40, 5).algorithm(WalkAlgorithm::Node2Vec { p: 0.5, q: 2.0 });
        let engine = Baseline::new(&g, cfg).unwrap();
        for path in engine.run().unwrap().paths() {
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
    }

    #[test]
    fn geometric_stop_truncates() {
        let g = synth::cycle(16);
        let mut cfg = config(1000, 50);
        cfg.stop = StopRule::Geometric {
            exit_prob: 0.5,
            max_steps: 50,
        };
        let engine = Baseline::new(&g, cfg).unwrap();
        let (out, stats) = engine.run_with_stats().unwrap();
        assert!(stats.steps_taken < 1000 * 10);
        assert!(out.paths().iter().any(|p| p.len() < 5));
    }

    #[test]
    fn visits_are_departure_counts() {
        let g = synth::cycle(8);
        let engine = Baseline::new(&g, config(10, 3).record_visits(true)).unwrap();
        let (out, stats) = engine.run_with_stats().unwrap();
        let visits = stats.visits.unwrap();
        assert_eq!(visits.iter().sum::<u64>(), 30);
        assert_eq!(visits, out.visit_counts(8));
    }

    #[test]
    fn parallel_walk_is_deterministic_and_valid() {
        let g = synth::power_law(300, 2.0, 1, 30, 2);
        let engine = Baseline::new(&g, config(100, 6).threads(4)).unwrap();
        let (out1, s1) = engine.run_with_stats().unwrap();
        let (out2, _) = engine.run_with_stats().unwrap();
        assert_eq!(out1.paths(), out2.paths(), "same (seed, threads) repeats");
        assert_eq!(s1.pool.spawned, 4, "one spawn per configured thread");
        assert_eq!(s1.pool.epochs, 1, "the whole walk is one dispatch");
        for path in out1.paths() {
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
    }

    #[test]
    fn parallel_visits_merge_correctly() {
        let g = synth::cycle(8);
        let engine = Baseline::new(&g, config(10, 3).record_visits(true).threads(3)).unwrap();
        let (out, stats) = engine.run_with_stats().unwrap();
        let visits = stats.visits.unwrap();
        assert_eq!(visits.iter().sum::<u64>(), 30);
        assert_eq!(visits, out.visit_counts(8));
    }

    #[test]
    fn probed_runs_stay_sequential() {
        use fm_memsim::{HierarchyConfig, MemorySystem};
        let g = synth::power_law(500, 2.0, 1, 30, 4);
        let par = Baseline::new(&g, config(100, 5).record_paths(false).threads(4)).unwrap();
        let seq = Baseline::new(&g, config(100, 5).record_paths(false)).unwrap();
        let mut pp = MemorySystem::new(HierarchyConfig::skylake_server());
        let mut sp = MemorySystem::new(HierarchyConfig::skylake_server());
        let (po, ps) = par.run_probed(&mut pp).unwrap();
        let (so, ss) = seq.run_probed(&mut sp).unwrap();
        assert_eq!(po.paths(), so.paths(), "probed runs ignore thread count");
        assert_eq!(pp.stats().accesses, sp.stats().accesses);
        assert_eq!(ps.pool.spawned, 0, "no pool in instrumented runs");
        assert_eq!(ss.steps_taken, ps.steps_taken);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_run_is_bit_identical_and_counts_exactly() {
        let g = synth::power_law(300, 2.0, 1, 30, 2);
        for threads in [1, 4] {
            let engine = Baseline::new(&g, config(100, 6).threads(threads)).unwrap();
            let (plain, ps) = engine.run_with_stats().unwrap();
            let mut tel = fm_telemetry::Telemetry::new();
            let (traced, ts) = engine.run_traced(&mut tel).unwrap();
            assert_eq!(plain.paths(), traced.paths(), "tracing must not perturb RNG");
            assert_eq!(ps.steps_taken, ts.steps_taken);
            assert_eq!(
                tel.partition_steps_total(),
                ts.steps_taken,
                "chunk counters sum to steps_taken at {threads} threads"
            );
            let sample_spans = tel
                .events()
                .iter()
                .filter(|e| e.stage == Stage::Sample)
                .count();
            assert!(sample_spans >= 1, "at least one Sample span per run");
            if threads > 1 {
                // Worker spans carry the chunk index as partition.
                assert!(tel
                    .events()
                    .iter()
                    .any(|e| e.thread > 0 && e.partition < threads as u32));
            }
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_stats_summaries_are_machine_readable() {
        let g = synth::cycle(16);
        let engine = Baseline::new(&g, config(10, 3).threads(2)).unwrap();
        let (_, stats) = engine.run_with_stats().unwrap();
        let text = stats.human_summary();
        assert!(text.contains("per-step"));
        assert!(text.contains("idle ratio"));
        let parsed = json::parse(&stats.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("steps_taken").and_then(json::Value::as_num),
            Some(stats.steps_taken as f64)
        );
        assert!(parsed.get("pool").is_some());
    }

    #[test]
    fn zero_step_stats_are_nan_free() {
        let stats = BaselineStats {
            walkers: 0,
            steps_taken: 0,
            wall: Duration::ZERO,
            visits: None,
            pool: PoolStats::default(),
        };
        assert_eq!(stats.per_step_ns(), 0.0);
        assert_eq!(stats.pool_idle_ratio(), 0.0);
        let text = stats.human_summary();
        assert!(!text.contains("NaN") && !text.contains("inf"));
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = Csr::from_edges(0, &[]).unwrap();
        assert!(matches!(
            Baseline::new(&empty, config(1, 1)),
            Err(WalkError::EmptyGraph)
        ));
        let sink = Csr::from_edges(2, &[(0, 1)]).unwrap();
        assert!(matches!(
            Baseline::new(&sink, config(1, 1)),
            Err(WalkError::SinkVertex(1))
        ));
    }

    #[test]
    fn stationary_distribution_matches_flashmob() {
        // Both engines walk the same undirected graph; visit frequencies
        // must converge to the same degree-proportional stationary
        // distribution.
        let g = synth::power_law(200, 2.0, 1, 20, 9);
        let walkers = 2000;
        let steps = 20;

        let b = Baseline::new(&g, config(walkers, steps).record_visits(true)).unwrap();
        let (_, bs) = b.run_with_stats().unwrap();
        let bv = bs.visits.unwrap();

        let f = flashmob::FlashMob::new(
            &g,
            flashmob::WalkConfig::deepwalk()
                .walkers(walkers)
                .steps(steps)
                .seed(11)
                .record_visits(true),
        )
        .unwrap();
        let (_, fs) = f.run_with_stats().unwrap();
        let fv = fs.visits_original(f.relabeling()).unwrap();

        let total_b: u64 = bv.iter().sum();
        let total_f: u64 = fv.iter().sum();
        // Compare the top-20 hubs' visit shares.
        let mut hubs: Vec<usize> = (0..g.vertex_count()).collect();
        hubs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v as u32)));
        for &v in hubs.iter().take(20) {
            let pb = bv[v] as f64 / total_b as f64;
            let pf = fv[v] as f64 / total_f as f64;
            assert!(
                (pb - pf).abs() < 0.02 + pb * 0.35,
                "vertex {v}: baseline {pb:.4} vs flashmob {pf:.4}"
            );
        }
    }

    #[test]
    fn probe_shows_pointer_chase_offsets() {
        use fm_memsim::{HierarchyConfig, MemorySystem};
        let g = synth::power_law(2000, 2.0, 1, 50, 4);
        let engine = Baseline::new(&g, config(200, 10).record_paths(false)).unwrap();
        let mut probe = MemorySystem::new(HierarchyConfig::skylake_server());
        let (_, stats) = engine.run_probed(&mut probe).unwrap();
        assert_eq!(probe.stats().steps, stats.steps_taken);
        // Two touches per uniform step: offsets (chase) + target (random).
        assert_eq!(probe.stats().accesses, 2 * stats.steps_taken);
    }
}
