//! Cross-engine conformance: exact Markov-chain oracles, a
//! differential lattice runner, and golden-trace digests.
//!
//! FlashMob's entire design bet (PAPER.md §3) is that reorganizing
//! *when and where* sampling happens — PS/DS policies, the two-pass
//! counting shuffle, NUMA partitioning or replication, out-of-core
//! streaming — must not change *what* is sampled: every engine
//! realizes the same Markov chain.  This crate is the gate that makes
//! that claim testable after every refactor:
//!
//! * [`oracle`] — closed-form one-step transition matrices for
//!   DeepWalk (uniform and weighted) and node2vec (exact p/q biases
//!   with exact connectivity), plus exact k-step occupancy by repeated
//!   matrix application ([`matrix`]).
//! * [`runner`] — sweeps {FlashMob auto/PS/DS, NUMA-P/R, out-of-core,
//!   KnightKing, GraphVite} × {deepwalk, weighted, node2vec} ×
//!   thread counts and chi-square-tests each cell's final occupancy
//!   and last-hop transitions against the oracle, with fixed seeds and
//!   a Bonferroni-corrected alpha (zero flake budget).
//! * [`digest`] / [`golden`] — bit-exact FNV-1a digests of each cell's
//!   path matrix, committed so that a refactor which silently perturbs
//!   RNG stream assignment fails loudly even when the perturbed walk
//!   is statistically indistinguishable.
//! * [`program`] — the same discipline for user-programmable walks:
//!   every `WalkProgram` registered in the engine crate (PPR,
//!   early-exit, metapath) gets an analytic oracle ([`oracle`]),
//!   lattice cells of its own, and committed golden digests; the
//!   registry/oracle audit fails the build for any program without
//!   them.
//!
//! Driven by `fmwalk conform` (quick tier in `ci.sh`, full lattice
//! behind `--full`, program lattice behind `--programs`).

pub mod crash;
pub mod digest;
pub mod golden;
pub mod matrix;
pub mod oracle;
pub mod program;
pub mod runner;

pub use crash::{run_crash_matrix, CrashCase, CrashReport};
pub use digest::{digest_paths, PathDigest};
pub use matrix::StochasticMatrix;
pub use oracle::{
    init_distribution, EarlyExitOracle, EdgeIndex, FirstOrderOracle, MetapathOracle,
    Node2VecOracle, PprOracle,
};
pub use program::{
    labeled_conformance_graph, oracle_backed, program_cell_digest, run_program_lattice,
    ProgramCell, ProgramKind, ProgramLatticeConfig, ProgramOutcome, ProgramReport,
    METAPATH_PATTERN, PPR_ALPHA, PROGRAM_ENGINES,
};
pub use runner::{
    cell_digest, conformance_graph, run_lattice, weighted_conformance_graph, AlgoKind, Cell,
    EngineKind, LatticeConfig, LatticeReport, Outcome,
};
