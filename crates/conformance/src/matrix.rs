//! Sparse row-stochastic matrices and their repeated application.
//!
//! The oracle graphs are tiny (tens of vertices), but the node2vec
//! second-order chain lives on the *edge* state space, which can run to
//! a few thousand states — a sparse representation keeps k-step
//! occupancy computation exact and instant.

/// A sparse row-stochastic matrix: `rows[i]` lists `(j, p)` pairs with
/// `p > 0` and `sum_j p = 1`.
#[derive(Debug, Clone)]
pub struct StochasticMatrix {
    rows: Vec<Vec<(u32, f64)>>,
}

impl StochasticMatrix {
    /// Builds from raw rows, normalizing each and validating that every
    /// row has positive total mass and in-range columns.
    ///
    /// # Panics
    ///
    /// Panics on an empty matrix, a row with no mass (a Markov chain
    /// must leave every state), a negative entry, or an out-of-range
    /// column index.
    pub fn from_rows(mut rows: Vec<Vec<(u32, f64)>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one state");
        let n = rows.len();
        for (i, row) in rows.iter_mut().enumerate() {
            let total: f64 = row.iter().map(|&(_, p)| p).sum();
            assert!(
                total > 0.0 && total.is_finite(),
                "state {i} has no outgoing mass"
            );
            for (j, p) in row.iter_mut() {
                assert!((*j as usize) < n, "state {i} references column {j} >= {n}");
                assert!(*p >= 0.0, "negative transition weight at ({i}, {j})");
                *p /= total;
            }
        }
        Self { rows }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chain has no states (never true for a valid matrix).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One-step transition probability `P(i -> j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.rows[i]
            .iter()
            .find(|&&(c, _)| c as usize == j)
            .map_or(0.0, |&(_, p)| p)
    }

    /// One step of the chain: `pi' = pi * P`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` has the wrong length.
    pub fn apply(&self, pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.rows.len(), "distribution length mismatch");
        let mut next = vec![0.0f64; pi.len()];
        for (i, row) in self.rows.iter().enumerate() {
            let mass = pi[i];
            if mass == 0.0 {
                continue;
            }
            for &(j, p) in row {
                next[j as usize] += mass * p;
            }
        }
        next
    }

    /// `k` steps of the chain from `pi0` (the exact distribution after
    /// `k` transitions).
    pub fn power_apply(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        let mut pi = pi0.to_vec();
        for _ in 0..k {
            pi = self.apply(&pi);
        }
        pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalized() {
        let m = StochasticMatrix::from_rows(vec![vec![(0, 2.0), (1, 2.0)], vec![(0, 5.0)]]);
        assert!((m.prob(0, 0) - 0.5).abs() < 1e-12);
        assert!((m.prob(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.prob(1, 0) - 1.0).abs() < 1e-12);
        assert_eq!(m.prob(1, 1), 0.0);
    }

    #[test]
    fn apply_preserves_mass() {
        let m = StochasticMatrix::from_rows(vec![
            vec![(1, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(2, 1.0)],
        ]);
        let pi = m.power_apply(&[1.0, 0.0, 0.0], 7);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_cycle_alternates() {
        let m = StochasticMatrix::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
        assert_eq!(m.power_apply(&[1.0, 0.0], 3), vec![0.0, 1.0]);
        assert_eq!(m.power_apply(&[1.0, 0.0], 4), vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no outgoing mass")]
    fn empty_row_panics() {
        let _ = StochasticMatrix::from_rows(vec![vec![(0, 1.0)], vec![]]);
    }
}
