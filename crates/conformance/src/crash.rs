//! The crash-recovery conformance matrix.
//!
//! The lattice in [`crate::runner`] proves that every engine produces
//! the committed golden digest when nothing goes wrong.  This module
//! proves the stronger robustness claim: **killing a run at any epoch
//! boundary and resuming it from the latest on-disk checkpoint
//! reproduces the same digest, bit for bit.**
//!
//! For each covered cell (FlashMob auto/PS/DS at 1 and 8 threads, the
//! out-of-core engine, plus the programmable walks — whose per-walker
//! origin state and early-terminated walkers must survive resume) the
//! matrix:
//!
//! 1. runs uninterrupted once to get the reference digest (and checks
//!    it against the committed golden table where an entry exists);
//! 2. re-runs with checkpoints every [`CRASH_EVERY`] iterations and a
//!    programmed halt after generation `k`, for every reachable
//!    generation `k` — including the final one, where the walk is
//!    already complete and resume must execute **zero** iterations;
//! 3. resumes each halted run from its checkpoint directory and
//!    demands digest equality with the uninterrupted reference.
//!
//! Digests fold the full path matrix plus (for FlashMob cells) the
//! per-partition RNG stream ids of every iteration, exactly as the
//! golden lattice does, so a resume that silently re-seeds or replays
//! a partition fails loudly even if the paths happen to look sane.

use std::path::PathBuf;

use fm_graph::{Csr, VertexId};
use flashmob::{
    load_latest,
    oocore::{run_ooc_with, DiskGraph, OocOptions},
    CheckpointSpec, FaultPolicy, FlashMob, PlanStrategy, WalkAlgorithm, WalkConfig, WalkError,
};
use fm_telemetry::Telemetry;

use crate::digest::PathDigest;
use crate::golden;
use crate::program::{program_config, program_graph, ProgramKind, PPR_ALPHA};
use crate::runner::{
    conformance_graph, flashmob_config, ooc_temp_path, AlgoKind, EngineKind, LATTICE_STEPS,
};

/// Fault rate injected into every out-of-core kill/resume run: the
/// reference digest comes from a fault-free run, so digest equality is
/// simultaneously the bit-exact-resume proof and the fault-transparency
/// proof demanded by the retry layer's contract.
pub const CRASH_FAULT_RATE: f64 = 0.15;

/// Seed of the injected fault stream (arbitrary, fixed).
const CRASH_FAULT_SEED: u64 = 7;

/// Checkpoint cadence for the crash matrix.  With [`LATTICE_STEPS`]`
/// = 8` this yields checkpoints after iterations 2, 4, 6 and 8 —
/// generations 1 through 4, the last of which fires when the walk is
/// already complete (the resume-executes-nothing edge case).
pub const CRASH_EVERY: usize = 2;

/// Outcome of one (cell, kill-generation) pair.
#[derive(Debug, Clone)]
pub struct CrashCase {
    /// Engine label (golden-table key).
    pub engine: &'static str,
    /// Algorithm / program label (golden-table key).  DeepWalk covers
    /// the stateless path; the program cases exercise per-walker state
    /// (PPR/early-exit origins) and edge labels (metapath) across the
    /// checkpoint boundary.
    pub algo: &'static str,
    /// Thread count of the interrupted run (resume always uses the
    /// same count here; thread invariance is covered by the lattice).
    pub threads: usize,
    /// Checkpoint generation after which the run was killed.
    pub generation: u64,
    /// Whether the resumed digest matched the uninterrupted one.
    pub ok: bool,
    /// Failure detail, empty when `ok`.
    pub detail: String,
}

/// The full crash-matrix report.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Every (cell, kill point) pair, in sweep order.
    pub cases: Vec<CrashCase>,
}

impl CrashReport {
    /// All failing cases.
    pub fn failures(&self) -> Vec<&CrashCase> {
        self.cases.iter().filter(|c| !c.ok).collect()
    }

    /// Whether every case passed.
    pub fn all_ok(&self) -> bool {
        self.cases.iter().all(|c| c.ok)
    }
}

/// Unique checkpoint directory per (cell, generation) so concurrent
/// test processes never share state.
fn crash_dir(label: &str, threads: usize, generation: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fm-crash-{}-{label}-t{threads}-g{generation}",
        std::process::id()
    ))
}

fn digest_output(paths: &[Vec<VertexId>], extra: &[u64]) -> u64 {
    let mut d = PathDigest::new();
    d.fold_u64(paths.len() as u64);
    for p in paths {
        d.fold_path(p);
    }
    for &x in extra {
        d.fold_u64(x);
    }
    d.finish()
}

fn fail(case: &mut CrashCase, detail: String) {
    case.ok = false;
    case.detail = detail;
}

/// The plan strategy a direct FlashMob engine kind forces.
fn engine_strategy(engine: EngineKind) -> PlanStrategy {
    match engine {
        EngineKind::FlashMobAuto => PlanStrategy::DynamicProgramming,
        EngineKind::FlashMobPs => PlanStrategy::UniformPs,
        _ => PlanStrategy::UniformDs,
    }
}

/// Runs kill-and-resume at every generation for one FlashMob cell
/// (any algorithm or program) and appends the per-generation cases to
/// `out`.  `golden_want` pins the uninterrupted reference digest when
/// a committed entry exists.
fn crash_flashmob_cell(
    engine: EngineKind,
    algo: &'static str,
    threads: usize,
    graph: &Csr,
    config: WalkConfig,
    golden_want: Option<u64>,
    out: &mut Vec<CrashCase>,
) {
    let fm = match FlashMob::new(graph, config) {
        Ok(fm) => fm,
        Err(e) => {
            out.push(CrashCase {
                engine: engine.label(),
                algo,
                threads,
                generation: 0,
                ok: false,
                detail: format!("engine construction failed: {e}"),
            });
            return;
        }
    };
    let mut extra = Vec::new();
    for iter in 0..LATTICE_STEPS {
        extra.extend(fm.partition_stream_ids(iter));
    }

    // Uninterrupted reference, checked against the golden table.
    let reference = match fm.run() {
        Ok(output) => digest_output(&output.paths(), &extra),
        Err(e) => {
            out.push(CrashCase {
                engine: engine.label(),
                algo,
                threads,
                generation: 0,
                ok: false,
                detail: format!("uninterrupted run failed: {e}"),
            });
            return;
        }
    };
    if let Some(want) = golden_want {
        if reference != want {
            out.push(CrashCase {
                engine: engine.label(),
                algo,
                threads,
                generation: 0,
                ok: false,
                detail: format!(
                    "uninterrupted digest {reference:#018x} != golden {want:#018x}"
                ),
            });
            return;
        }
    }

    let generations = (LATTICE_STEPS / CRASH_EVERY) as u64;
    for k in 1..=generations {
        let mut case = CrashCase {
            engine: engine.label(),
            algo,
            threads,
            generation: k,
            ok: true,
            detail: String::new(),
        };
        let dir = crash_dir(&format!("{}-{algo}", engine.label()), threads, k);
        std::fs::remove_dir_all(&dir).ok();
        let spec = CheckpointSpec::new(&dir, CRASH_EVERY).halt_after(k);
        match fm.run_with_checkpoints(&spec) {
            Err(WalkError::Halted { generation }) if generation == k => {}
            Err(e) => fail(&mut case, format!("expected halt at generation {k}, got {e}")),
            Ok(_) => fail(
                &mut case,
                format!("run completed instead of halting at generation {k}"),
            ),
        }
        if case.ok {
            match fm.resume(&dir) {
                Ok((output, _)) => {
                    let got = digest_output(&output.paths(), &extra);
                    if got != reference {
                        fail(
                            &mut case,
                            format!(
                                "resumed digest {got:#018x} != uninterrupted {reference:#018x}"
                            ),
                        );
                    }
                }
                Err(e) => fail(&mut case, format!("resume failed: {e}")),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        out.push(case);
    }
}

/// Kill-and-resume for one DeepWalk FlashMob cell.
fn crash_flashmob(engine: EngineKind, threads: usize, out: &mut Vec<CrashCase>) {
    let graph = conformance_graph();
    let config = flashmob_config(AlgoKind::DeepWalk, threads).strategy(engine_strategy(engine));
    let want = golden::lookup(engine.label(), "deepwalk", threads);
    crash_flashmob_cell(engine, "deepwalk", threads, &graph, config, want, out);
}

/// Kill-and-resume for one program cell: proves per-walker program
/// state (PPR/early-exit origins), early-terminated walkers, and edge
/// labels (metapath) all survive the checkpoint boundary bit-exactly.
fn crash_program(
    engine: EngineKind,
    program: ProgramKind,
    threads: usize,
    out: &mut Vec<CrashCase>,
) {
    let graph = program_graph(program);
    let config = program_config(program, threads).strategy(engine_strategy(engine));
    let want = golden::lookup_program(engine.label(), program.label(), threads);
    crash_flashmob_cell(engine, program.label(), threads, &graph, config, want, out);
}

/// Runs kill-and-resume at every generation for one out-of-core cell,
/// with transient faults injected at [`CRASH_FAULT_RATE`] into every
/// disk-graph read of the interrupted *and* resumed runs.
///
/// The reference digest comes from a fault-free uninterrupted run
/// (pinned to the golden table where an entry exists), so digest
/// equality simultaneously proves bit-exact resume and fault
/// transparency.  Generation 0 is a dedicated no-kill transparency
/// case that also demands the retry layer actually absorbed something.
///
/// Kill generations are discovered by running checkpointed but
/// uninterrupted once and reading back the final on-disk generation:
/// the bi-block scheduler checkpoints on a pair-slot cadence, so the
/// count is not a simple function of [`LATTICE_STEPS`].  The final
/// generation is always written at completion, so `k = G` is the
/// resume-after-complete case in every cell.
fn crash_oocore_cell(
    algo: &'static str,
    config: &WalkConfig,
    budget: usize,
    out: &mut Vec<CrashCase>,
) {
    let label = EngineKind::OutOfCore.label();
    let fault = FaultPolicy::transient(CRASH_FAULT_SEED, CRASH_FAULT_RATE);
    let graph = conformance_graph();
    let setup_fail = |out: &mut Vec<CrashCase>, detail: String| {
        out.push(CrashCase {
            engine: label,
            algo,
            threads: 1,
            generation: 0,
            ok: false,
            detail,
        });
    };
    let path = ooc_temp_path();
    let disk = match DiskGraph::create(&graph, &path) {
        Ok(d) => d,
        Err(e) => {
            setup_fail(out, format!("disk graph creation failed: {e}"));
            return;
        }
    };

    let reference = match run_ooc_with(
        &disk,
        config,
        budget,
        &OocOptions::default(),
        &mut Telemetry::off(),
    ) {
        Ok((output, _)) => digest_output(&output.paths(), &[]),
        Err(e) => {
            std::fs::remove_file(&path).ok();
            setup_fail(out, format!("uninterrupted run failed: {e}"));
            return;
        }
    };
    if let Some(want) = golden::lookup(label, algo, 1) {
        if reference != want {
            std::fs::remove_file(&path).ok();
            setup_fail(
                out,
                format!("uninterrupted digest {reference:#018x} != golden {want:#018x}"),
            );
            return;
        }
    }

    // Generation 0: the pure fault-transparency case (no kill).
    {
        let mut case = CrashCase {
            engine: label,
            algo,
            threads: 1,
            generation: 0,
            ok: true,
            detail: String::new(),
        };
        match run_ooc_with(
            &disk,
            config,
            budget,
            &OocOptions::default().fault(fault),
            &mut Telemetry::off(),
        ) {
            Ok((output, stats)) => {
                let got = digest_output(&output.paths(), &[]);
                if got != reference {
                    fail(
                        &mut case,
                        format!("faulty digest {got:#018x} != clean {reference:#018x}"),
                    );
                } else if stats.io_retries == 0 {
                    fail(
                        &mut case,
                        "fault injection absorbed zero retries — rate misconfigured".into(),
                    );
                }
            }
            Err(e) => fail(&mut case, format!("faulty run failed: {e}")),
        }
        out.push(case);
    }

    // Discover the generation count from an uninterrupted checkpointed
    // run rather than deriving it from the schedule shape.
    let discover_dir = crash_dir(&format!("{label}-{algo}-discover"), 1, 0);
    std::fs::remove_dir_all(&discover_dir).ok();
    let discovered = run_ooc_with(
        &disk,
        config,
        budget,
        &OocOptions::default().checkpoint(CheckpointSpec::new(&discover_dir, CRASH_EVERY)),
        &mut Telemetry::off(),
    )
    .map_err(|e| format!("checkpointed run failed: {e}"))
    .and_then(|_| {
        load_latest(&discover_dir)
            .map(|(generation, _)| generation)
            .map_err(|e| format!("generation discovery failed: {e}"))
    });
    std::fs::remove_dir_all(&discover_dir).ok();
    let generations = match discovered {
        Ok(g) => g,
        Err(detail) => {
            std::fs::remove_file(&path).ok();
            setup_fail(out, detail);
            return;
        }
    };

    for k in 1..=generations {
        let mut case = CrashCase {
            engine: label,
            algo,
            threads: 1,
            generation: k,
            ok: true,
            detail: String::new(),
        };
        let dir = crash_dir(&format!("{label}-{algo}"), 1, k);
        std::fs::remove_dir_all(&dir).ok();
        let spec = CheckpointSpec::new(&dir, CRASH_EVERY).halt_after(k);
        let kill = run_ooc_with(
            &disk,
            config,
            budget,
            &OocOptions::default().checkpoint(spec).fault(fault),
            &mut Telemetry::off(),
        );
        match kill {
            Err(WalkError::Halted { generation }) if generation == k => {}
            Err(e) => fail(&mut case, format!("expected halt at generation {k}, got {e}")),
            Ok(_) => fail(
                &mut case,
                format!("run completed instead of halting at generation {k}"),
            ),
        }
        if case.ok {
            let resumed = run_ooc_with(
                &disk,
                config,
                budget,
                &OocOptions::default().resume_from(&dir).fault(fault),
                &mut Telemetry::off(),
            );
            match resumed {
                Ok((output, _)) => {
                    let got = digest_output(&output.paths(), &[]);
                    if got != reference {
                        fail(
                            &mut case,
                            format!(
                                "resumed digest {got:#018x} != uninterrupted {reference:#018x}"
                            ),
                        );
                    }
                }
                Err(e) => fail(&mut case, format!("resume failed: {e}")),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        out.push(case);
    }
    std::fs::remove_file(&path).ok();
}

/// Budget used by the out-of-core second-order crash cells; matches
/// the conformance lattice so the node2vec reference digest is pinned
/// by the same golden entry, and small enough that the 96-vertex graph
/// splits into several blocks and the pair schedule actually runs.
const CRASH_BIBLOCK_BUDGET: usize = 2 * 1024;

/// The out-of-core crash cells: first-order deepwalk (iteration-cadence
/// checkpoints), second-order node2vec, and origin-stateful PPR (both
/// on the bi-block pair-slot cadence, with parked-walker buffers and
/// the schedule cursor crossing the snapshot boundary).
fn crash_oocore(out: &mut Vec<CrashCase>) {
    let deepwalk = flashmob_config(AlgoKind::DeepWalk, 1);
    crash_oocore_cell("deepwalk", &deepwalk, 64 * 1024, out);
    let node2vec = flashmob_config(AlgoKind::Node2Vec, 1);
    crash_oocore_cell("node2vec", &node2vec, CRASH_BIBLOCK_BUDGET, out);
    let mut ppr = flashmob_config(AlgoKind::DeepWalk, 1);
    ppr.algorithm = WalkAlgorithm::Ppr { alpha: PPR_ALPHA };
    crash_oocore_cell("ppr", &ppr, CRASH_BIBLOCK_BUDGET, out);
}

/// Runs the crash matrix.
///
/// `full` sweeps FlashMob auto/PS/DS at 1 and 8 threads plus the
/// out-of-core engine, and every program × plan policy × {1, 8}
/// threads; the quick tier keeps the auto plan at 1 thread, the
/// out-of-core engine, and the two *stateful* programs (PPR,
/// early-exit) on the auto plan — per-walker origin state must
/// round-trip the checkpoint boundary in every CI run (every kill
/// generation in both tiers).
pub fn run_crash_matrix(full: bool) -> CrashReport {
    let mut cases = Vec::new();
    let engines = [
        EngineKind::FlashMobAuto,
        EngineKind::FlashMobPs,
        EngineKind::FlashMobDs,
    ];
    let threads: &[usize] = if full { &[1, 8] } else { &[1] };
    let engines: &[EngineKind] = if full { &engines } else { &engines[..1] };
    for &engine in engines {
        for &t in threads {
            crash_flashmob(engine, t, &mut cases);
        }
    }
    crash_oocore(&mut cases);
    let programs: &[ProgramKind] = if full {
        &ProgramKind::ALL
    } else {
        &[ProgramKind::Ppr, ProgramKind::EarlyExit]
    };
    for &program in programs {
        for &engine in engines {
            for &t in threads {
                crash_program(engine, program, t, &mut cases);
            }
        }
    }
    CrashReport { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_crash_matrix_is_bit_exact() {
        let report = run_crash_matrix(false);
        let failures: Vec<String> = report
            .failures()
            .iter()
            .map(|c| {
                format!(
                    "{} {} t={} gen={}: {}",
                    c.engine, c.algo, c.threads, c.generation, c.detail
                )
            })
            .collect();
        assert!(report.all_ok(), "crash matrix failures:\n{}", failures.join("\n"));
        // deepwalk auto@1 has 4 kill points and the two stateful
        // programs (ppr, early-exit) on auto@1 add 4 each.
        let fm = report.cases.iter().filter(|c| c.engine != "oocore").count();
        assert_eq!(fm, 12);
        // Each oocore cell contributes a generation-0 fault-transparency
        // case plus one kill point per discovered generation; deepwalk's
        // iteration cadence pins 4, the bi-block pair-slot cadence is
        // schedule-shaped, so only a floor is asserted — including the
        // resume-after-complete final generation.
        let ooc = |algo: &str| {
            report
                .cases
                .iter()
                .filter(|c| c.engine == "oocore" && c.algo == algo)
                .count()
        };
        assert_eq!(ooc("deepwalk"), 5);
        assert!(ooc("node2vec") >= 3, "node2vec cells: {}", ooc("node2vec"));
        assert!(ooc("ppr") >= 3, "ppr cells: {}", ooc("ppr"));
    }
}
