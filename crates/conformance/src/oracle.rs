//! Exact Markov-chain oracles for the supported walk algorithms.
//!
//! Every engine in the repository — FlashMob under any plan policy or
//! thread count, both walker-at-a-time baselines, the NUMA modes, the
//! out-of-core path — claims to sample the *same* chain.  On a small
//! graph that chain is not something to estimate: the one-step
//! transition matrix is a closed-form function of the adjacency
//! structure, and the exact distribution after `k` steps is a `k`-fold
//! vector-matrix product.  These oracles compute both.
//!
//! * First-order chains (DeepWalk uniform, weighted) live on the vertex
//!   set: `P[u][x] = m(u, x) / deg(u)` respectively
//!   `P[u][x] = W(u, x) / W(u)` where `m` counts parallel edges and `W`
//!   sums their weights.
//! * node2vec is a *second-order* chain, which becomes first-order on
//!   the state space of distinct directed edges `(prev, cur)`:
//!   `P[(t, u) -> (u, x)] ∝ m(u, x) · α(t, x)` with
//!   `α = 1/p` if `x = t`, `1` if the edge `t -> x` exists, `1/q`
//!   otherwise — exactly the weights the rejection samplers realize.
//!   The first step has no predecessor and is first-order uniform,
//!   matching every engine's iteration-0 behavior.

use std::collections::BTreeMap;

use fm_graph::{Csr, VertexId};
use flashmob::WalkerInit;

use crate::matrix::StochasticMatrix;

/// The exact initial vertex distribution a [`WalkerInit`] induces.
///
/// `UniformEdge` is degree-proportional by construction (the engines
/// pick a uniform edge slot and take its source); the deterministic
/// inits depend on the walker count through the cyclic assignment.
///
/// # Panics
///
/// Panics on an empty graph, zero walkers, or a `Fixed` list that is
/// empty or out of range.
pub fn init_distribution(graph: &Csr, init: &WalkerInit, walkers: usize) -> Vec<f64> {
    let n = graph.vertex_count();
    assert!(n > 0, "oracle needs a non-empty graph");
    assert!(walkers > 0, "oracle needs at least one walker");
    let mut pi = vec![0.0f64; n];
    match init {
        WalkerInit::UniformVertex => {
            pi.fill(1.0 / n as f64);
        }
        WalkerInit::UniformEdge => {
            let e = graph.edge_count() as f64;
            for (v, slot) in pi.iter_mut().enumerate() {
                *slot = graph.degree(v as VertexId) as f64 / e;
            }
        }
        WalkerInit::EveryVertex => {
            for j in 0..walkers {
                pi[j % n] += 1.0 / walkers as f64;
            }
        }
        WalkerInit::Fixed(starts) => {
            assert!(!starts.is_empty(), "fixed init needs start vertices");
            for j in 0..walkers {
                let v = starts[j % starts.len()] as usize;
                assert!(v < n, "fixed start vertex out of range");
                pi[v] += 1.0 / walkers as f64;
            }
        }
    }
    pi
}

/// Index of the distinct directed edges of a graph, in sorted order.
///
/// Used both as the node2vec state space and as the bin layout for
/// last-hop transition tests.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Collects the distinct edges of `graph`.
    pub fn new(graph: &Csr) -> Self {
        let mut edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Index of edge `(u, v)`, if present.
    pub fn index_of(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.edges.binary_search(&(u, v)).ok()
    }

    /// The edge at `i`.
    pub fn edge(&self, i: usize) -> (VertexId, VertexId) {
        self.edges[i]
    }
}

/// Multiplicity-aggregated adjacency of one vertex: distinct targets
/// with summed edge weights (weight 1 per parallel edge when the graph
/// is unweighted).
fn aggregated_row(graph: &Csr, u: VertexId, weighted: bool) -> BTreeMap<VertexId, f64> {
    let mut row: BTreeMap<VertexId, f64> = BTreeMap::new();
    let neighbors = graph.neighbors(u);
    if weighted {
        let weights = graph
            .edge_weights(u)
            .expect("weighted oracle needs edge weights");
        for (&x, &w) in neighbors.iter().zip(weights) {
            *row.entry(x).or_insert(0.0) += w as f64;
        }
    } else {
        for &x in neighbors {
            *row.entry(x).or_insert(0.0) += 1.0;
        }
    }
    row
}

/// Exact oracle for first-order chains (DeepWalk, weighted DeepWalk).
#[derive(Debug, Clone)]
pub struct FirstOrderOracle {
    matrix: StochasticMatrix,
    edges: EdgeIndex,
}

impl FirstOrderOracle {
    /// Uniform-edge chain: `P[u][x] = m(u, x) / deg(u)`.
    pub fn deepwalk(graph: &Csr) -> Self {
        Self::build(graph, false)
    }

    /// Weight-proportional chain: `P[u][x] = W(u, x) / W(u)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph carries no edge weights.
    pub fn weighted(graph: &Csr) -> Self {
        assert!(graph.is_weighted(), "weighted oracle needs a weighted graph");
        Self::build(graph, true)
    }

    fn build(graph: &Csr, weighted: bool) -> Self {
        let n = graph.vertex_count();
        let rows = (0..n)
            .map(|u| {
                aggregated_row(graph, u as VertexId, weighted)
                    .into_iter()
                    .collect()
            })
            .collect();
        Self {
            matrix: StochasticMatrix::from_rows(rows),
            edges: EdgeIndex::new(graph),
        }
    }

    /// The underlying transition matrix.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// Exact vertex distribution after `k` steps from `pi0`.
    pub fn occupancy(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        self.matrix.power_apply(pi0, k)
    }

    /// Exact distribution of the last hop `(position at k-1, position
    /// at k)` over [`EdgeIndex`] bins, for `k >= 1`.
    pub fn edge_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert!(k >= 1, "a hop needs at least one step");
        let before = self.matrix.power_apply(pi0, k - 1);
        let mut dist = vec![0.0f64; self.edges.len()];
        for (j, slot) in dist.iter_mut().enumerate() {
            let (u, v) = self.edges.edge(j);
            *slot = before[u as usize] * self.matrix.prob(u as usize, v as usize);
        }
        dist
    }

    /// The edge bins [`FirstOrderOracle::edge_distribution`] uses.
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edges
    }
}

/// Exact oracle for the node2vec second-order chain.
#[derive(Debug, Clone)]
pub struct Node2VecOracle {
    /// State space: distinct directed edges `(prev, cur)`.
    edges: EdgeIndex,
    /// Chain over edge states.
    matrix: StochasticMatrix,
    /// First (predecessor-free) step: the first-order uniform chain.
    first: FirstOrderOracle,
    vertex_count: usize,
}

impl Node2VecOracle {
    /// Builds the oracle for return parameter `p` and in-out parameter
    /// `q` on an unweighted graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is weighted (the engines reject that
    /// combination) or has no edges.
    pub fn new(graph: &Csr, p: f64, q: f64) -> Self {
        assert!(
            !graph.is_weighted(),
            "node2vec runs on unweighted graphs only"
        );
        let edges = EdgeIndex::new(graph);
        assert!(!edges.is_empty(), "node2vec oracle needs edges");
        let rows = (0..edges.len())
            .map(|s| {
                let (t, u) = edges.edge(s);
                aggregated_row(graph, u, false)
                    .into_iter()
                    .map(|(x, m)| {
                        let alpha = if x == t {
                            1.0 / p
                        } else if graph.has_edge(t, x) {
                            1.0
                        } else {
                            1.0 / q
                        };
                        let next = edges
                            .index_of(u, x)
                            .expect("target edge must be in the index");
                        (next as u32, m * alpha)
                    })
                    .collect()
            })
            .collect();
        Self {
            matrix: StochasticMatrix::from_rows(rows),
            first: FirstOrderOracle::deepwalk(graph),
            edges,
            vertex_count: graph.vertex_count(),
        }
    }

    /// Exact edge-state distribution after `k >= 1` steps from the
    /// vertex distribution `pi0`.
    pub fn state_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert!(k >= 1, "edge states exist only after the first step");
        // Step 1 is first-order: the state after it is distributed as
        // the first hop of the uniform chain.
        let s1 = self.first.edge_distribution(pi0, 1);
        self.matrix.power_apply(&s1, k - 1)
    }

    /// Exact vertex distribution after `k` steps from `pi0`.
    pub fn occupancy(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        if k == 0 {
            return pi0.to_vec();
        }
        let states = self.state_distribution(pi0, k);
        let mut pi = vec![0.0f64; self.vertex_count];
        for (s, &mass) in states.iter().enumerate() {
            let (_, cur) = self.edges.edge(s);
            pi[cur as usize] += mass;
        }
        pi
    }

    /// The edge-state bins (also the last-hop transition bins).
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edges
    }

    /// The second-order transition matrix over edge states.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    #[test]
    fn cycle_oracle_is_a_rotation() {
        // Directed 4-cycle: occupancy rotates deterministically.
        let g = synth::cycle(4);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let pi0 = vec![1.0, 0.0, 0.0, 0.0];
        // cycle() is undirected (each vertex has prev + next), so just
        // check stochasticity and symmetry instead of a pure rotation.
        let pi = oracle.occupancy(&pi0, 2);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // After 2 steps from vertex 0 on an undirected cycle: half the
        // mass returns (LR/RL), a quarter lands two ahead/behind.
        assert!((pi[0] - 0.5).abs() < 1e-12, "pi = {pi:?}");
        assert!((pi[2] - 0.5).abs() < 1e-12, "pi = {pi:?}");
    }

    #[test]
    fn star_occupancy_alternates() {
        // Star with hub 0: from the hub every walker reaches a leaf,
        // from a leaf every walker returns to the hub.
        let g = synth::star(5);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let hub = init_distribution(&g, &WalkerInit::Fixed(vec![0]), 10);
        let after1 = oracle.occupancy(&hub, 1);
        assert_eq!(after1[0], 0.0);
        let after2 = oracle.occupancy(&hub, 2);
        assert!((after2[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_edge_init_is_stationary_for_deepwalk() {
        // Degree-proportional placement is the stationary distribution
        // of the uniform chain on an undirected graph: occupancy must
        // be invariant at every step.
        let g = synth::power_law(40, 2.0, 1, 10, 3);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 1000);
        let pik = oracle.occupancy(&pi0, 5);
        for (a, b) in pi0.iter().zip(&pik) {
            assert!((a - b).abs() < 1e-12, "stationarity violated");
        }
    }

    #[test]
    fn weighted_oracle_follows_weights() {
        // 0 -> {1 (w=1), 2 (w=4)}; 1, 2 -> 0.
        let g = Csr::from_parts(
            vec![0, 2, 3, 4],
            vec![1, 2, 0, 0],
            Some(vec![1.0, 4.0, 1.0, 1.0]),
        )
        .unwrap();
        let oracle = FirstOrderOracle::weighted(&g);
        assert!((oracle.matrix().prob(0, 1) - 0.2).abs() < 1e-12);
        assert!((oracle.matrix().prob(0, 2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_multiply_probability() {
        // 0 -> 1 twice, 0 -> 2 once.
        let g = Csr::from_edges(3, &[(0, 1), (0, 1), (0, 2), (1, 0), (2, 0)]).unwrap();
        let oracle = FirstOrderOracle::deepwalk(&g);
        assert!((oracle.matrix().prob(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((oracle.matrix().prob(0, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn node2vec_low_p_returns() {
        // Path 0 - 1 - 2. From state (0, 1) with p tiny, the walker
        // almost always returns to 0; with p huge it almost never does.
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let sticky = Node2VecOracle::new(&g, 0.01, 1.0);
        let s = sticky.edge_index().index_of(0, 1).unwrap();
        let back = sticky.edge_index().index_of(1, 0).unwrap();
        assert!(sticky.matrix().prob(s, back) > 0.98);

        let averse = Node2VecOracle::new(&g, 100.0, 1.0);
        assert!(averse.matrix().prob(s, back) < 0.02);
    }

    #[test]
    fn node2vec_step1_matches_first_order() {
        let g = synth::power_law(30, 2.0, 1, 8, 9);
        let n2v = Node2VecOracle::new(&g, 0.25, 4.0);
        let first = FirstOrderOracle::deepwalk(&g);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 100);
        let a = n2v.occupancy(&pi0, 1);
        let b = first.occupancy(&pi0, 1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn node2vec_self_loop_is_distance_zero() {
        // 0 has a self-loop; from state (0, 0) the candidate 0 equals
        // the predecessor, so it gets weight 1/p, while 1 is adjacent
        // to 0 (weight 1).
        let g = Csr::from_edges(2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let oracle = Node2VecOracle::new(&g, 4.0, 0.5);
        let s = oracle.edge_index().index_of(0, 0).unwrap();
        let stay = oracle.edge_index().index_of(0, 0).unwrap();
        let leave = oracle.edge_index().index_of(0, 1).unwrap();
        // Weights: stay = 1/p = 0.25, leave = 1 (0 -> 1 exists).
        assert!((oracle.matrix().prob(s, stay) - 0.2).abs() < 1e-12);
        assert!((oracle.matrix().prob(s, leave) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn occupancy_sums_to_one() {
        let g = synth::power_law(25, 2.0, 1, 6, 11);
        let oracle = Node2VecOracle::new(&g, 0.5, 2.0);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 50);
        for k in 0..6 {
            let pi = oracle.occupancy(&pi0, k);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "k = {k}: total = {total}");
        }
    }
}
