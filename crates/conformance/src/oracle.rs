//! Exact Markov-chain oracles for the supported walk algorithms.
//!
//! Every engine in the repository — FlashMob under any plan policy or
//! thread count, both walker-at-a-time baselines, the NUMA modes, the
//! out-of-core path — claims to sample the *same* chain.  On a small
//! graph that chain is not something to estimate: the one-step
//! transition matrix is a closed-form function of the adjacency
//! structure, and the exact distribution after `k` steps is a `k`-fold
//! vector-matrix product.  These oracles compute both.
//!
//! * First-order chains (DeepWalk uniform, weighted) live on the vertex
//!   set: `P[u][x] = m(u, x) / deg(u)` respectively
//!   `P[u][x] = W(u, x) / W(u)` where `m` counts parallel edges and `W`
//!   sums their weights.
//! * node2vec is a *second-order* chain, which becomes first-order on
//!   the state space of distinct directed edges `(prev, cur)`:
//!   `P[(t, u) -> (u, x)] ∝ m(u, x) · α(t, x)` with
//!   `α = 1/p` if `x = t`, `1` if the edge `t -> x` exists, `1/q`
//!   otherwise — exactly the weights the rejection samplers realize.
//!   The first step has no predecessor and is first-order uniform,
//!   matching every engine's iteration-0 behavior.
//!
//! The programmable-walk scenarios get oracles of their own — the
//! price of entry the `WalkProgram` contract demands:
//!
//! * PPR ([`PprOracle`]) conditions on the walker's origin `o`:
//!   `pi' = (1 - alpha)·(pi · U); pi'[o] += alpha`, summed over the
//!   origin distribution.  The restart edge is *not* a graph edge, so
//!   there is no last-hop transition test; conformance checks
//!   occupancy at two consecutive steps instead.
//! * Early exit ([`EarlyExitOracle`]) is an absorbing chain per
//!   origin: mass that returns to `o` after the iteration-0 grace
//!   step freezes there (the walker records the arrival and dies on
//!   the next iteration, so its final path vertex is `o`).
//! * Metapath ([`MetapathOracle`]) is a time-inhomogeneous chain:
//!   iteration `t` moves uniformly over the edges whose label matches
//!   `pattern[t mod len]`, and mass at a vertex with no allowed edge
//!   is *stuck* — the walker dies there, freezing its final vertex.
//!   Rows may lose all outgoing mass mid-walk, so the oracle iterates
//!   alive/stuck vectors directly instead of building a
//!   [`StochasticMatrix`] (which rightly rejects empty rows).

use std::collections::BTreeMap;

use fm_graph::{Csr, VertexId};
use flashmob::WalkerInit;

use crate::matrix::StochasticMatrix;

/// The exact initial vertex distribution a [`WalkerInit`] induces.
///
/// `UniformEdge` is degree-proportional by construction (the engines
/// pick a uniform edge slot and take its source); the deterministic
/// inits depend on the walker count through the cyclic assignment.
///
/// # Panics
///
/// Panics on an empty graph, zero walkers, or a `Fixed` list that is
/// empty or out of range.
pub fn init_distribution(graph: &Csr, init: &WalkerInit, walkers: usize) -> Vec<f64> {
    let n = graph.vertex_count();
    assert!(n > 0, "oracle needs a non-empty graph");
    assert!(walkers > 0, "oracle needs at least one walker");
    let mut pi = vec![0.0f64; n];
    match init {
        WalkerInit::UniformVertex => {
            pi.fill(1.0 / n as f64);
        }
        WalkerInit::UniformEdge => {
            let e = graph.edge_count() as f64;
            for (v, slot) in pi.iter_mut().enumerate() {
                *slot = graph.degree(v as VertexId) as f64 / e;
            }
        }
        WalkerInit::EveryVertex => {
            for j in 0..walkers {
                pi[j % n] += 1.0 / walkers as f64;
            }
        }
        WalkerInit::Fixed(starts) => {
            assert!(!starts.is_empty(), "fixed init needs start vertices");
            for j in 0..walkers {
                let v = starts[j % starts.len()] as usize;
                assert!(v < n, "fixed start vertex out of range");
                pi[v] += 1.0 / walkers as f64;
            }
        }
    }
    pi
}

/// Index of the distinct directed edges of a graph, in sorted order.
///
/// Used both as the node2vec state space and as the bin layout for
/// last-hop transition tests.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeIndex {
    /// Collects the distinct edges of `graph`.
    pub fn new(graph: &Csr) -> Self {
        let mut edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
        edges.sort_unstable();
        edges.dedup();
        Self { edges }
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Index of edge `(u, v)`, if present.
    pub fn index_of(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.edges.binary_search(&(u, v)).ok()
    }

    /// The edge at `i`.
    pub fn edge(&self, i: usize) -> (VertexId, VertexId) {
        self.edges[i]
    }
}

/// Multiplicity-aggregated adjacency of one vertex: distinct targets
/// with summed edge weights (weight 1 per parallel edge when the graph
/// is unweighted).
fn aggregated_row(graph: &Csr, u: VertexId, weighted: bool) -> BTreeMap<VertexId, f64> {
    let mut row: BTreeMap<VertexId, f64> = BTreeMap::new();
    let neighbors = graph.neighbors(u);
    if weighted {
        let weights = graph
            .edge_weights(u)
            .expect("weighted oracle needs edge weights");
        for (&x, &w) in neighbors.iter().zip(weights) {
            *row.entry(x).or_insert(0.0) += w as f64;
        }
    } else {
        for &x in neighbors {
            *row.entry(x).or_insert(0.0) += 1.0;
        }
    }
    row
}

/// Exact oracle for first-order chains (DeepWalk, weighted DeepWalk).
#[derive(Debug, Clone)]
pub struct FirstOrderOracle {
    matrix: StochasticMatrix,
    edges: EdgeIndex,
}

impl FirstOrderOracle {
    /// Uniform-edge chain: `P[u][x] = m(u, x) / deg(u)`.
    pub fn deepwalk(graph: &Csr) -> Self {
        Self::build(graph, false)
    }

    /// Weight-proportional chain: `P[u][x] = W(u, x) / W(u)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph carries no edge weights.
    pub fn weighted(graph: &Csr) -> Self {
        assert!(graph.is_weighted(), "weighted oracle needs a weighted graph");
        Self::build(graph, true)
    }

    fn build(graph: &Csr, weighted: bool) -> Self {
        let n = graph.vertex_count();
        let rows = (0..n)
            .map(|u| {
                aggregated_row(graph, u as VertexId, weighted)
                    .into_iter()
                    .collect()
            })
            .collect();
        Self {
            matrix: StochasticMatrix::from_rows(rows),
            edges: EdgeIndex::new(graph),
        }
    }

    /// The underlying transition matrix.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }

    /// Exact vertex distribution after `k` steps from `pi0`.
    pub fn occupancy(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        self.matrix.power_apply(pi0, k)
    }

    /// Exact distribution of the last hop `(position at k-1, position
    /// at k)` over [`EdgeIndex`] bins, for `k >= 1`.
    pub fn edge_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert!(k >= 1, "a hop needs at least one step");
        let before = self.matrix.power_apply(pi0, k - 1);
        let mut dist = vec![0.0f64; self.edges.len()];
        for (j, slot) in dist.iter_mut().enumerate() {
            let (u, v) = self.edges.edge(j);
            *slot = before[u as usize] * self.matrix.prob(u as usize, v as usize);
        }
        dist
    }

    /// The edge bins [`FirstOrderOracle::edge_distribution`] uses.
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edges
    }
}

/// Exact oracle for the node2vec second-order chain.
#[derive(Debug, Clone)]
pub struct Node2VecOracle {
    /// State space: distinct directed edges `(prev, cur)`.
    edges: EdgeIndex,
    /// Chain over edge states.
    matrix: StochasticMatrix,
    /// First (predecessor-free) step: the first-order uniform chain.
    first: FirstOrderOracle,
    vertex_count: usize,
}

impl Node2VecOracle {
    /// Builds the oracle for return parameter `p` and in-out parameter
    /// `q` on an unweighted graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is weighted (the engines reject that
    /// combination) or has no edges.
    pub fn new(graph: &Csr, p: f64, q: f64) -> Self {
        assert!(
            !graph.is_weighted(),
            "node2vec runs on unweighted graphs only"
        );
        let edges = EdgeIndex::new(graph);
        assert!(!edges.is_empty(), "node2vec oracle needs edges");
        let rows = (0..edges.len())
            .map(|s| {
                let (t, u) = edges.edge(s);
                aggregated_row(graph, u, false)
                    .into_iter()
                    .map(|(x, m)| {
                        let alpha = if x == t {
                            1.0 / p
                        } else if graph.has_edge(t, x) {
                            1.0
                        } else {
                            1.0 / q
                        };
                        let next = edges
                            .index_of(u, x)
                            .expect("target edge must be in the index");
                        (next as u32, m * alpha)
                    })
                    .collect()
            })
            .collect();
        Self {
            matrix: StochasticMatrix::from_rows(rows),
            first: FirstOrderOracle::deepwalk(graph),
            edges,
            vertex_count: graph.vertex_count(),
        }
    }

    /// Exact edge-state distribution after `k >= 1` steps from the
    /// vertex distribution `pi0`.
    pub fn state_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert!(k >= 1, "edge states exist only after the first step");
        // Step 1 is first-order: the state after it is distributed as
        // the first hop of the uniform chain.
        let s1 = self.first.edge_distribution(pi0, 1);
        self.matrix.power_apply(&s1, k - 1)
    }

    /// Exact vertex distribution after `k` steps from `pi0`.
    pub fn occupancy(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        if k == 0 {
            return pi0.to_vec();
        }
        let states = self.state_distribution(pi0, k);
        let mut pi = vec![0.0f64; self.vertex_count];
        for (s, &mass) in states.iter().enumerate() {
            let (_, cur) = self.edges.edge(s);
            pi[cur as usize] += mass;
        }
        pi
    }

    /// The edge-state bins (also the last-hop transition bins).
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edges
    }

    /// The second-order transition matrix over edge states.
    pub fn matrix(&self) -> &StochasticMatrix {
        &self.matrix
    }
}

/// Exact oracle for personalized-PageRank restart walks.
///
/// The PPR chain is origin-conditioned: a walker that started at `o`
/// teleports back to `o` with probability `alpha` at every step and
/// otherwise moves like the uniform first-order chain.  Occupancy is
/// computed per origin and mixed by the origin distribution.
#[derive(Debug, Clone)]
pub struct PprOracle {
    base: StochasticMatrix,
    edges: EdgeIndex,
    alpha: f64,
}

impl PprOracle {
    /// Builds the oracle for restart probability `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]` (the engine rejects
    /// such configs at construction).
    pub fn new(graph: &Csr, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "ppr restart probability must be in (0, 1]"
        );
        Self {
            base: FirstOrderOracle::deepwalk(graph).matrix().clone(),
            edges: EdgeIndex::new(graph),
            alpha,
        }
    }

    /// Exact vertex distribution after `k` steps, where `pi0` is the
    /// distribution of walker *origins* (= initial positions).
    pub fn occupancy(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(pi0.len(), self.base.len(), "distribution length mismatch");
        if k == 0 {
            return pi0.to_vec();
        }
        let n = pi0.len();
        let mut total = vec![0.0f64; n];
        for (o, &mass) in pi0.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let mut pi = vec![0.0f64; n];
            pi[o] = 1.0;
            for _ in 0..k {
                pi = self.base.apply(&pi);
                for p in pi.iter_mut() {
                    *p *= 1.0 - self.alpha;
                }
                pi[o] += self.alpha;
            }
            for (slot, &p) in total.iter_mut().zip(&pi) {
                *slot += mass * p;
            }
        }
        total
    }

    /// Whether a recorded hop is realizable: a graph edge, or a
    /// restart landing on the walker's origin.
    pub fn hop_allowed(&self, u: VertexId, v: VertexId, origin: VertexId) -> bool {
        v == origin || self.edges.index_of(u, v).is_some()
    }
}

/// Exact oracle for the early-exit walk: a walker that returns to its
/// origin (after the iteration-0 grace step) records the arrival and
/// dies on the next iteration, so the observable per walker is its
/// *final path vertex*.
#[derive(Debug, Clone)]
pub struct EarlyExitOracle {
    base: StochasticMatrix,
}

impl EarlyExitOracle {
    /// Builds the oracle on the uniform first-order chain of `graph`.
    pub fn new(graph: &Csr) -> Self {
        Self {
            base: FirstOrderOracle::deepwalk(graph).matrix().clone(),
        }
    }

    /// Exact distribution of the final path vertex after a `k`-step
    /// budget, where `pi0` is the origin distribution.
    ///
    /// Per origin `o`: step 1 is unconditional (the grace step); from
    /// then on, mass sitting at `o` is absorbed — the walker dies with
    /// final vertex `o` — while the rest keeps moving until the budget
    /// runs out.
    pub fn final_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(pi0.len(), self.base.len(), "distribution length mismatch");
        if k == 0 {
            return pi0.to_vec();
        }
        let n = pi0.len();
        let mut total = vec![0.0f64; n];
        for (o, &mass) in pi0.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            let mut delta = vec![0.0f64; n];
            delta[o] = 1.0;
            // Position after the grace step.
            let mut alive = self.base.apply(&delta);
            let mut absorbed = 0.0f64;
            for _ in 1..k {
                absorbed += alive[o];
                alive[o] = 0.0;
                alive = self.base.apply(&alive);
            }
            // Survivors end wherever step k left them; walkers that
            // reached o earlier (or at step k) end at o.
            for (slot, &p) in total.iter_mut().zip(&alive) {
                *slot += mass * p;
            }
            total[o] += mass * absorbed;
        }
        total
    }
}

/// Exact oracle for metapath walks over typed edges.
///
/// Iteration `t` moves uniformly over the out-edges whose label equals
/// `pattern[t mod len]`; a vertex with no allowed edge kills the
/// walker there (its final path vertex).  The chain is
/// time-inhomogeneous and sub-stochastic per phase, so the oracle
/// iterates alive/stuck mass vectors directly.
#[derive(Debug, Clone)]
pub struct MetapathOracle {
    pattern: Vec<u8>,
    /// `rows[&l][u]` = aggregated `(target, multiplicity)` over the
    /// label-`l` out-edges of `u`.
    rows: BTreeMap<u8, Vec<Vec<(VertexId, f64)>>>,
    vertex_count: usize,
}

impl MetapathOracle {
    /// Builds the oracle for a cyclic `pattern` on a labeled graph.
    ///
    /// # Panics
    ///
    /// Panics when the pattern is empty or the graph carries no edge
    /// labels (the engine rejects both at construction).
    pub fn new(graph: &Csr, pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "metapath pattern must be non-empty");
        assert!(graph.is_labeled(), "metapath oracle needs edge labels");
        let n = graph.vertex_count();
        let mut rows: BTreeMap<u8, Vec<Vec<(VertexId, f64)>>> = BTreeMap::new();
        for &label in pattern {
            if rows.contains_key(&label) {
                continue;
            }
            let per_vertex = (0..n)
                .map(|u| {
                    let u = u as VertexId;
                    let Some(labels) = graph.edge_labels_of(u) else {
                        unreachable!("labeled graph has per-vertex labels")
                    };
                    let mut row: BTreeMap<VertexId, f64> = BTreeMap::new();
                    for (&x, &l) in graph.neighbors(u).iter().zip(labels) {
                        if l == label {
                            *row.entry(x).or_insert(0.0) += 1.0;
                        }
                    }
                    row.into_iter().collect()
                })
                .collect();
            rows.insert(label, per_vertex);
        }
        Self {
            pattern: pattern.to_vec(),
            rows,
            vertex_count: n,
        }
    }

    /// The phase label iteration `t` samples over.
    pub fn label_at(&self, t: usize) -> u8 {
        self.pattern[t % self.pattern.len()]
    }

    /// Whether vertex `u` has any edge allowed at iteration `t`.
    pub fn has_allowed(&self, u: VertexId, t: usize) -> bool {
        !self.rows[&self.label_at(t)][u as usize].is_empty()
    }

    /// Whether the hop `u -> v` is realizable at iteration `t`.
    pub fn hop_allowed(&self, u: VertexId, v: VertexId, t: usize) -> bool {
        self.rows[&self.label_at(t)][u as usize]
            .iter()
            .any(|&(x, _)| x == v)
    }

    /// Exact distribution of the final path vertex after a `k`-step
    /// budget from `pi0`: surviving mass ends wherever phase `k - 1`
    /// left it, stuck mass stays where its phase had no allowed edge.
    pub fn final_distribution(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(pi0.len(), self.vertex_count, "distribution length mismatch");
        let mut alive = pi0.to_vec();
        let mut stuck = vec![0.0f64; self.vertex_count];
        for t in 0..k {
            let rows = &self.rows[&self.label_at(t)];
            let mut next = vec![0.0f64; self.vertex_count];
            for (u, &mass) in alive.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let row = &rows[u];
                if row.is_empty() {
                    stuck[u] += mass;
                    continue;
                }
                let total: f64 = row.iter().map(|&(_, m)| m).sum();
                for &(x, m) in row {
                    next[x as usize] += mass * m / total;
                }
            }
            alive = next;
        }
        for (slot, &s) in alive.iter_mut().zip(&stuck) {
            *slot += s;
        }
        alive
    }

    /// The fraction of `pi0` still walking after `k` iterations.
    pub fn survival(&self, pi0: &[f64], k: usize) -> f64 {
        let mut alive = pi0.to_vec();
        for t in 0..k {
            let rows = &self.rows[&self.label_at(t)];
            let mut next = vec![0.0f64; self.vertex_count];
            for (u, &mass) in alive.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let row = &rows[u];
                if row.is_empty() {
                    continue;
                }
                let total: f64 = row.iter().map(|&(_, m)| m).sum();
                for &(x, m) in row {
                    next[x as usize] += mass * m / total;
                }
            }
            alive = next;
        }
        alive.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    #[test]
    fn cycle_oracle_is_a_rotation() {
        // Directed 4-cycle: occupancy rotates deterministically.
        let g = synth::cycle(4);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let pi0 = vec![1.0, 0.0, 0.0, 0.0];
        // cycle() is undirected (each vertex has prev + next), so just
        // check stochasticity and symmetry instead of a pure rotation.
        let pi = oracle.occupancy(&pi0, 2);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // After 2 steps from vertex 0 on an undirected cycle: half the
        // mass returns (LR/RL), a quarter lands two ahead/behind.
        assert!((pi[0] - 0.5).abs() < 1e-12, "pi = {pi:?}");
        assert!((pi[2] - 0.5).abs() < 1e-12, "pi = {pi:?}");
    }

    #[test]
    fn star_occupancy_alternates() {
        // Star with hub 0: from the hub every walker reaches a leaf,
        // from a leaf every walker returns to the hub.
        let g = synth::star(5);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let hub = init_distribution(&g, &WalkerInit::Fixed(vec![0]), 10);
        let after1 = oracle.occupancy(&hub, 1);
        assert_eq!(after1[0], 0.0);
        let after2 = oracle.occupancy(&hub, 2);
        assert!((after2[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_edge_init_is_stationary_for_deepwalk() {
        // Degree-proportional placement is the stationary distribution
        // of the uniform chain on an undirected graph: occupancy must
        // be invariant at every step.
        let g = synth::power_law(40, 2.0, 1, 10, 3);
        let oracle = FirstOrderOracle::deepwalk(&g);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 1000);
        let pik = oracle.occupancy(&pi0, 5);
        for (a, b) in pi0.iter().zip(&pik) {
            assert!((a - b).abs() < 1e-12, "stationarity violated");
        }
    }

    #[test]
    fn weighted_oracle_follows_weights() {
        // 0 -> {1 (w=1), 2 (w=4)}; 1, 2 -> 0.
        let g = Csr::from_parts(
            vec![0, 2, 3, 4],
            vec![1, 2, 0, 0],
            Some(vec![1.0, 4.0, 1.0, 1.0]),
        )
        .unwrap();
        let oracle = FirstOrderOracle::weighted(&g);
        assert!((oracle.matrix().prob(0, 1) - 0.2).abs() < 1e-12);
        assert!((oracle.matrix().prob(0, 2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_multiply_probability() {
        // 0 -> 1 twice, 0 -> 2 once.
        let g = Csr::from_edges(3, &[(0, 1), (0, 1), (0, 2), (1, 0), (2, 0)]).unwrap();
        let oracle = FirstOrderOracle::deepwalk(&g);
        assert!((oracle.matrix().prob(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((oracle.matrix().prob(0, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn node2vec_low_p_returns() {
        // Path 0 - 1 - 2. From state (0, 1) with p tiny, the walker
        // almost always returns to 0; with p huge it almost never does.
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let sticky = Node2VecOracle::new(&g, 0.01, 1.0);
        let s = sticky.edge_index().index_of(0, 1).unwrap();
        let back = sticky.edge_index().index_of(1, 0).unwrap();
        assert!(sticky.matrix().prob(s, back) > 0.98);

        let averse = Node2VecOracle::new(&g, 100.0, 1.0);
        assert!(averse.matrix().prob(s, back) < 0.02);
    }

    #[test]
    fn node2vec_step1_matches_first_order() {
        let g = synth::power_law(30, 2.0, 1, 8, 9);
        let n2v = Node2VecOracle::new(&g, 0.25, 4.0);
        let first = FirstOrderOracle::deepwalk(&g);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 100);
        let a = n2v.occupancy(&pi0, 1);
        let b = first.occupancy(&pi0, 1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn node2vec_self_loop_is_distance_zero() {
        // 0 has a self-loop; from state (0, 0) the candidate 0 equals
        // the predecessor, so it gets weight 1/p, while 1 is adjacent
        // to 0 (weight 1).
        let g = Csr::from_edges(2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let oracle = Node2VecOracle::new(&g, 4.0, 0.5);
        let s = oracle.edge_index().index_of(0, 0).unwrap();
        let stay = oracle.edge_index().index_of(0, 0).unwrap();
        let leave = oracle.edge_index().index_of(0, 1).unwrap();
        // Weights: stay = 1/p = 0.25, leave = 1 (0 -> 1 exists).
        assert!((oracle.matrix().prob(s, stay) - 0.2).abs() < 1e-12);
        assert!((oracle.matrix().prob(s, leave) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn occupancy_sums_to_one() {
        let g = synth::power_law(25, 2.0, 1, 6, 11);
        let oracle = Node2VecOracle::new(&g, 0.5, 2.0);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 50);
        for k in 0..6 {
            let pi = oracle.occupancy(&pi0, k);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "k = {k}: total = {total}");
        }
    }

    #[test]
    fn ppr_alpha_one_pins_walkers_to_origin() {
        // alpha = 1 teleports every step: occupancy equals the origin
        // distribution at every horizon.
        let g = synth::power_law(30, 2.0, 1, 8, 5);
        let oracle = PprOracle::new(&g, 1.0);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 100);
        for k in [1, 3, 8] {
            let pi = oracle.occupancy(&pi0, k);
            for (a, b) in pi.iter().zip(&pi0) {
                assert!((a - b).abs() < 1e-12, "k = {k}");
            }
        }
    }

    #[test]
    fn ppr_tiny_alpha_approaches_deepwalk() {
        let g = synth::power_law(30, 2.0, 1, 8, 5);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 100);
        let ppr = PprOracle::new(&g, 1e-9).occupancy(&pi0, 4);
        let dw = FirstOrderOracle::deepwalk(&g).occupancy(&pi0, 4);
        for (a, b) in ppr.iter().zip(&dw) {
            assert!((a - b).abs() < 1e-6);
        }
        let total: f64 = ppr.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ppr_hop_allows_restarts_and_edges_only() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let oracle = PprOracle::new(&g, 0.2);
        assert!(oracle.hop_allowed(0, 1, 2), "graph edge");
        assert!(oracle.hop_allowed(0, 2, 2), "restart to origin");
        assert!(!oracle.hop_allowed(0, 2, 1), "neither edge nor origin");
    }

    #[test]
    fn early_exit_star_returns_home() {
        // Origin = hub of a star: step 1 reaches a leaf, step 2 returns
        // to the hub, where the walker is absorbed.  Every final path
        // vertex is the hub for any budget >= 2.
        let g = synth::star(5);
        let oracle = EarlyExitOracle::new(&g);
        let hub = init_distribution(&g, &WalkerInit::Fixed(vec![0]), 10);
        for k in [2, 3, 8] {
            let pi = oracle.final_distribution(&hub, k);
            assert!((pi[0] - 1.0).abs() < 1e-12, "k = {k}: pi = {pi:?}");
        }
        // Budget 1: the grace step runs, nobody has returned yet.
        let pi = oracle.final_distribution(&hub, 1);
        assert_eq!(pi[0], 0.0);
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_exit_mass_is_conserved() {
        let g = synth::power_law(40, 2.0, 2, 10, 3);
        let oracle = EarlyExitOracle::new(&g);
        let pi0 = init_distribution(&g, &WalkerInit::UniformEdge, 1000);
        for k in 0..8 {
            let pi = oracle.final_distribution(&pi0, k);
            let total: f64 = pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "k = {k}");
        }
    }

    fn two_phase_path() -> Csr {
        // 0 -(a)-> 1 -(b)-> 2, plus back-edges labeled so a walker on
        // pattern [a, b] starting at 0 must go 0 -> 1 -> 2 and is then
        // stuck at 2 (vertex 2's only edge is labeled b, but phase 2
        // wants a again).
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        g.with_edge_labels(vec![0, 1, 1, 1]).unwrap()
    }

    #[test]
    fn metapath_deterministic_path_then_stuck() {
        let g = two_phase_path();
        let oracle = MetapathOracle::new(&g, &[0, 1]);
        let pi0 = init_distribution(&g, &WalkerInit::Fixed(vec![0]), 10);
        // Phase 0 (label 0): 0 -> 1.  Phase 1 (label 1): 1 -> 0 or 2.
        let pi = oracle.final_distribution(&pi0, 2);
        assert!((pi[0] - 0.5).abs() < 1e-12, "pi = {pi:?}");
        assert!((pi[2] - 0.5).abs() < 1e-12, "pi = {pi:?}");
        // Phase 2 (label 0 again): 2 has no label-0 edge -> stuck; 0
        // proceeds to 1.
        let pi = oracle.final_distribution(&pi0, 3);
        assert!((pi[2] - 0.5).abs() < 1e-12, "stuck mass stays: {pi:?}");
        assert!((pi[1] - 0.5).abs() < 1e-12, "pi = {pi:?}");
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metapath_structural_predicates() {
        let g = two_phase_path();
        let oracle = MetapathOracle::new(&g, &[0, 1]);
        assert!(oracle.hop_allowed(0, 1, 0), "label-0 edge in phase 0");
        assert!(!oracle.hop_allowed(1, 2, 0), "label-1 edge refused in phase 0");
        assert!(oracle.hop_allowed(1, 2, 1));
        assert!(!oracle.has_allowed(2, 0), "vertex 2 has no label-0 edge");
        assert!(oracle.has_allowed(2, 1));
        assert_eq!(oracle.label_at(5), 1);
    }

    #[test]
    fn metapath_survival_tracks_stuck_mass() {
        let g = two_phase_path();
        let oracle = MetapathOracle::new(&g, &[0, 1]);
        let pi0 = init_distribution(&g, &WalkerInit::Fixed(vec![0]), 10);
        assert!((oracle.survival(&pi0, 2) - 1.0).abs() < 1e-12);
        // Half the mass (at vertex 2) dies in phase 2.
        assert!((oracle.survival(&pi0, 3) - 0.5).abs() < 1e-12);
    }
}
