//! Bit-exact digests of walk output.
//!
//! Statistical tests prove an engine samples the right *distribution*;
//! golden digests prove a refactor did not silently change *which*
//! pseudo-random walk a fixed seed produces.  FNV-1a over the recorded
//! paths (walker by walker, with the path length folded in so empty
//! suffixes cannot alias) gives a stable 64-bit fingerprint that is
//! cheap enough to run over every lattice cell.

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct PathDigest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl PathDigest {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds one `u64` in, little-endian byte order.
    pub fn fold_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one walker path: length first, then every vertex.
    pub fn fold_path(&mut self, path: &[u32]) {
        self.fold_u64(path.len() as u64);
        for &v in path {
            self.fold_u64(v as u64);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for PathDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of a full path matrix (one entry per walker, in walker order).
pub fn digest_paths(paths: &[Vec<u32>]) -> u64 {
    let mut d = PathDigest::new();
    d.fold_u64(paths.len() as u64);
    for p in paths {
        d.fold_path(p);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let paths = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(digest_paths(&paths), digest_paths(&paths));
    }

    #[test]
    fn digest_sees_every_vertex() {
        let a = vec![vec![1, 2, 3]];
        let b = vec![vec![1, 2, 4]];
        assert_ne!(digest_paths(&a), digest_paths(&b));
    }

    #[test]
    fn digest_sees_walker_boundaries() {
        // Same vertex stream, different split across walkers.
        let a = vec![vec![1, 2], vec![3]];
        let b = vec![vec![1], vec![2, 3]];
        assert_ne!(digest_paths(&a), digest_paths(&b));
    }

    #[test]
    fn empty_inputs_are_distinct() {
        let none: Vec<Vec<u32>> = vec![];
        let one_empty = vec![vec![]];
        assert_ne!(digest_paths(&none), digest_paths(&one_empty));
    }

    #[test]
    fn extra_u64_changes_digest() {
        let paths = vec![vec![7, 8]];
        let base = digest_paths(&paths);
        let mut d = PathDigest::new();
        d.fold_u64(paths.len() as u64);
        for p in &paths {
            d.fold_path(p);
        }
        d.fold_u64(42);
        assert_ne!(base, d.finish());
    }
}
