//! The differential conformance runner.
//!
//! Sweeps the full engine/algorithm/thread lattice on one canonical
//! small graph and checks every cell twice:
//!
//! 1. **Statistically**, against the exact oracle.  Two chi-square
//!    tests per cell, both over quantities that are i.i.d. across
//!    walkers (one sample per walker, so Pearson's test is valid,
//!    unlike whole-path visit counts whose within-walker correlation
//!    would wreck the statistic):
//!    * final-step occupancy vs. the oracle's `k`-step distribution;
//!    * the last hop `(position_{k-1}, position_k)` vs. the oracle's
//!      exact last-hop edge distribution.
//!
//!    Seeds are fixed, so every p-value is a deterministic number:
//!    a cell either passes forever or fails forever — zero flake
//!    budget.  The acceptance threshold is Bonferroni-corrected: the
//!    global `ALPHA` is split evenly over every test the lattice runs.
//! 2. **Bit-exactly**, against committed golden digests
//!    ([`crate::golden`]): the FNV-1a digest of the full path matrix
//!    (plus, for FlashMob cells, the per-partition RNG stream ids of
//!    every iteration) must match the committed value, so a refactor
//!    that silently re-seeds or re-orders sampling fails loudly even
//!    if the perturbed walk is still statistically fine.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fm_graph::{synth, Csr, VertexId};
use fm_rng::gof::chi_square_test;
use fm_telemetry::{Stage, Telemetry, NO_PARTITION};
use flashmob::{
    numa::{run_numa_paths, NumaMode},
    oocore::{run_ooc, DiskGraph},
    FlashMob, PlanStrategy, PlannerParams, WalkAlgorithm, WalkConfig, WalkerInit,
};
use fm_baseline::{Baseline, BaselineConfig};

use crate::digest::PathDigest;
use crate::golden;
use crate::oracle::{init_distribution, EdgeIndex, FirstOrderOracle, Node2VecOracle};

/// node2vec return parameter used throughout the lattice.
pub const NODE2VEC_P: f64 = 0.25;
/// node2vec in-out parameter used throughout the lattice.
pub const NODE2VEC_Q: f64 = 4.0;
/// The lattice seed.  Changing it invalidates every golden digest.
pub const LATTICE_SEED: u64 = 20_210_423; // FlashMob's SOSP submission spring
/// Walkers per cell: enough for tight chi-square power on the
/// canonical graph while keeping the full lattice under a minute.
pub const LATTICE_WALKERS: usize = 12_000;
/// Steps per cell.
pub const LATTICE_STEPS: usize = 8;
/// Simulated sockets for the NUMA modes.
pub const LATTICE_SOCKETS: usize = 2;
/// Global significance level, Bonferroni-split over all tests run.
pub const ALPHA: f64 = 1e-3;

/// The canonical unweighted conformance graph: a fixed power-law graph
/// small enough for exact oracles yet irregular enough to exercise
/// degree-group planning, PS and DS partitions, and multi-partition
/// shuffles.
pub fn conformance_graph() -> Csr {
    synth::power_law(96, 2.0, 2, 24, 42)
}

/// The weighted twin of [`conformance_graph`]: same topology, with a
/// deterministic weight in `{1, ..., 7}` derived from the endpoints so
/// the weighted oracle has real skew to verify against.
pub fn weighted_conformance_graph() -> Csr {
    let g = conformance_graph();
    let weights: Vec<f32> = g
        .edges()
        .map(|(u, v)| ((u as u64 * 31 + v as u64 * 17) % 7 + 1) as f32)
        .collect();
    Csr::from_parts(g.offsets().to_vec(), g.targets().to_vec(), Some(weights))
        .expect("same topology stays valid")
}

/// Planner parameters scaled to the 96-vertex conformance graph.
pub(crate) fn conformance_planner() -> PlannerParams {
    PlannerParams {
        target_groups: 8,
        max_partitions: 16,
        min_vp_vertices: 8,
        ..PlannerParams::default()
    }
}

/// Engine / policy dimension of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// FlashMob with the MCKP/DP auto-plan.
    FlashMobAuto,
    /// FlashMob forced to uniform pre-sampling partitions.
    FlashMobPs,
    /// FlashMob forced to uniform direct-sampling partitions.
    FlashMobDs,
    /// FlashMob-P cross-socket mode.
    NumaP,
    /// FlashMob-R cross-socket mode (per-socket instances).
    NumaR,
    /// The out-of-core streaming engine.
    OutOfCore,
    /// KnightKing walker-at-a-time baseline.
    KnightKing,
    /// GraphVite alias-table baseline.
    GraphVite,
}

impl EngineKind {
    /// All engines, in lattice order.
    pub const ALL: [EngineKind; 8] = [
        EngineKind::FlashMobAuto,
        EngineKind::FlashMobPs,
        EngineKind::FlashMobDs,
        EngineKind::NumaP,
        EngineKind::NumaR,
        EngineKind::OutOfCore,
        EngineKind::KnightKing,
        EngineKind::GraphVite,
    ];

    /// Display label (also the golden-table key).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::FlashMobAuto => "flashmob-auto",
            EngineKind::FlashMobPs => "flashmob-ps",
            EngineKind::FlashMobDs => "flashmob-ds",
            EngineKind::NumaP => "numa-p",
            EngineKind::NumaR => "numa-r",
            EngineKind::OutOfCore => "oocore",
            EngineKind::KnightKing => "knightking",
            EngineKind::GraphVite => "graphvite",
        }
    }

    /// Why this engine cannot run a cell, if it cannot.
    pub fn skip_reason(self, algo: AlgoKind, threads: usize) -> Option<&'static str> {
        match self {
            EngineKind::OutOfCore if algo == AlgoKind::Weighted => {
                Some("out-of-core walking does not support weighted graphs")
            }
            EngineKind::OutOfCore if threads > 1 => {
                Some("out-of-core walking is single-threaded")
            }
            _ => None,
        }
    }
}

/// Algorithm dimension of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// First-order uniform.
    DeepWalk,
    /// First-order weight-proportional (on the weighted twin graph).
    Weighted,
    /// Second-order node2vec with [`NODE2VEC_P`] / [`NODE2VEC_Q`].
    Node2Vec,
}

impl AlgoKind {
    /// All algorithms, in lattice order.
    pub const ALL: [AlgoKind; 3] = [AlgoKind::DeepWalk, AlgoKind::Weighted, AlgoKind::Node2Vec];

    /// Display label (also the golden-table key).
    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::DeepWalk => "deepwalk",
            AlgoKind::Weighted => "weighted",
            AlgoKind::Node2Vec => "node2vec",
        }
    }

    /// The engine-side algorithm specification.
    pub fn walk_algorithm(self) -> WalkAlgorithm {
        match self {
            AlgoKind::DeepWalk => WalkAlgorithm::DeepWalk,
            AlgoKind::Weighted => WalkAlgorithm::Weighted,
            AlgoKind::Node2Vec => WalkAlgorithm::Node2Vec {
                p: NODE2VEC_P,
                q: NODE2VEC_Q,
            },
        }
    }
}

/// Which slice of the lattice to run.
#[derive(Debug, Clone)]
pub struct LatticeConfig {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Whether digests must match the committed golden table.
    pub check_golden: bool,
}

impl LatticeConfig {
    /// The CI tier: every engine and algorithm at {1, 8} threads.
    pub fn quick() -> Self {
        Self {
            threads: vec![1, 8],
            check_golden: true,
        }
    }

    /// The pre-release tier: every engine and algorithm at
    /// {1, 2, 3, 8} threads (non-power-of-two counts catch remainder
    /// bugs in the walker-range splitter).
    pub fn full() -> Self {
        Self {
            threads: vec![1, 2, 3, 8],
            check_golden: true,
        }
    }
}

/// Outcome of one lattice cell.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Both chi-square tests passed and the digest matched (or no
    /// golden entry exists for this cell).
    Pass {
        /// p-value of the final-step occupancy test.
        occupancy_p: f64,
        /// p-value of the last-hop transition test.
        transition_p: f64,
        /// Path digest of the cell.
        digest: u64,
        /// Whether a golden entry was found and verified.
        golden_checked: bool,
    },
    /// The cell is not runnable on this engine.
    Skipped {
        /// Why.
        reason: &'static str,
    },
    /// The cell ran but failed a check (or failed to run).
    Fail {
        /// What went wrong.
        reason: String,
    },
}

/// One cell of the lattice with its outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Engine dimension.
    pub engine: EngineKind,
    /// Algorithm dimension.
    pub algo: AlgoKind,
    /// Thread count.
    pub threads: usize,
    /// What happened.
    pub outcome: Outcome,
}

/// The full lattice report.
#[derive(Debug, Clone)]
pub struct LatticeReport {
    /// Every cell, in sweep order.
    pub cells: Vec<Cell>,
    /// The Bonferroni-corrected per-test alpha that was applied.
    pub per_test_alpha: f64,
}

impl LatticeReport {
    /// All failing cells.
    pub fn failures(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::Fail { .. }))
            .collect()
    }

    /// Counts of (passed, skipped, failed).
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in &self.cells {
            match c.outcome {
                Outcome::Pass { .. } => t.0 += 1,
                Outcome::Skipped { .. } => t.1 += 1,
                Outcome::Fail { .. } => t.2 += 1,
            }
        }
        t
    }
}

/// Raw result of executing one cell.
struct CellData {
    /// Recorded paths, one per walker, original vertex IDs.
    paths: Vec<Vec<VertexId>>,
    /// Extra values folded into the digest (FlashMob cells fold the
    /// per-partition RNG stream ids of every iteration).
    extra: Vec<u64>,
}

/// Unique temp path for out-of-core cells (tests in one process run
/// concurrently, so a pid alone would collide).
pub(crate) fn ooc_temp_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fm-conform-{}-{}.fmdisk",
        std::process::id(),
        n
    ))
}

pub(crate) fn flashmob_config(algo: AlgoKind, threads: usize) -> WalkConfig {
    let mut config = WalkConfig::deepwalk()
        .walkers(LATTICE_WALKERS)
        .steps(LATTICE_STEPS)
        .seed(LATTICE_SEED)
        .init(WalkerInit::UniformEdge)
        .record_paths(true)
        .threads(threads)
        .planner(conformance_planner());
    config.algorithm = algo.walk_algorithm();
    config
}

fn run_cell_data(
    graph: &Csr,
    engine: EngineKind,
    algo: AlgoKind,
    threads: usize,
) -> Result<CellData, String> {
    let err = |e: flashmob::WalkError| e.to_string();
    match engine {
        EngineKind::FlashMobAuto | EngineKind::FlashMobPs | EngineKind::FlashMobDs => {
            let strategy = match engine {
                EngineKind::FlashMobAuto => PlanStrategy::DynamicProgramming,
                EngineKind::FlashMobPs => PlanStrategy::UniformPs,
                _ => PlanStrategy::UniformDs,
            };
            let config = flashmob_config(algo, threads).strategy(strategy);
            let fm = FlashMob::new(graph, config).map_err(err)?;
            let mut extra = Vec::new();
            for iter in 0..LATTICE_STEPS {
                extra.extend(fm.partition_stream_ids(iter));
            }
            let output = fm.run().map_err(err)?;
            Ok(CellData {
                paths: output.paths(),
                extra,
            })
        }
        EngineKind::NumaP | EngineKind::NumaR => {
            let mode = if engine == EngineKind::NumaP {
                NumaMode::Partitioned
            } else {
                NumaMode::Replicated
            };
            let base = flashmob_config(algo, threads);
            let outputs = run_numa_paths(graph, base, mode, LATTICE_SOCKETS).map_err(err)?;
            let mut paths = Vec::with_capacity(LATTICE_WALKERS);
            for o in &outputs {
                paths.extend(o.paths());
            }
            Ok(CellData {
                paths,
                extra: Vec::new(),
            })
        }
        EngineKind::OutOfCore => {
            let config = flashmob_config(algo, threads);
            let path = ooc_temp_path();
            let disk = DiskGraph::create(graph, &path).map_err(|e| e.to_string())?;
            // node2vec exercises the bi-block scheduler; a tight budget
            // forces multiple blocks so pair scheduling actually runs.
            let budget = match algo {
                AlgoKind::Node2Vec => 2 * 1024,
                _ => 64 * 1024,
            };
            let result = run_ooc(&disk, &config, budget);
            std::fs::remove_file(&path).ok();
            let (output, _) = result.map_err(err)?;
            Ok(CellData {
                paths: output.paths(),
                extra: Vec::new(),
            })
        }
        EngineKind::KnightKing | EngineKind::GraphVite => {
            let base = if engine == EngineKind::KnightKing {
                BaselineConfig::knightking_deepwalk()
            } else {
                BaselineConfig::graphvite_deepwalk()
            };
            let config = base
                .algorithm(algo.walk_algorithm())
                .walkers(LATTICE_WALKERS)
                .steps(LATTICE_STEPS)
                .seed(LATTICE_SEED)
                .init(WalkerInit::UniformEdge)
                .record_paths(true)
                .threads(threads);
            let engine = Baseline::new(graph, config).map_err(err)?;
            let output = engine.run().map_err(err)?;
            Ok(CellData {
                paths: output.paths(),
                extra: Vec::new(),
            })
        }
    }
}

/// Exact oracle distributions for one algorithm on its lattice graph:
/// `(occupancy at k, last-hop edge distribution at k, edge bins)`.
type OracleDistributions = (Vec<f64>, Vec<f64>, EdgeIndex);

fn oracle_distributions(graph: &Csr, algo: AlgoKind) -> OracleDistributions {
    let pi0 = init_distribution(graph, &WalkerInit::UniformEdge, LATTICE_WALKERS);
    match algo {
        AlgoKind::DeepWalk | AlgoKind::Weighted => {
            let oracle = if algo == AlgoKind::Weighted {
                FirstOrderOracle::weighted(graph)
            } else {
                FirstOrderOracle::deepwalk(graph)
            };
            (
                oracle.occupancy(&pi0, LATTICE_STEPS),
                oracle.edge_distribution(&pi0, LATTICE_STEPS),
                oracle.edge_index().clone(),
            )
        }
        AlgoKind::Node2Vec => {
            let oracle = Node2VecOracle::new(graph, NODE2VEC_P, NODE2VEC_Q);
            (
                oracle.occupancy(&pi0, LATTICE_STEPS),
                oracle.state_distribution(&pi0, LATTICE_STEPS),
                oracle.edge_index().clone(),
            )
        }
    }
}

fn check_cell(
    data: &CellData,
    occupancy_expected: &[f64],
    edge_expected: &[f64],
    edges: &EdgeIndex,
    alpha: f64,
) -> Result<(f64, f64, u64), String> {
    if data.paths.len() != LATTICE_WALKERS {
        return Err(format!(
            "expected {LATTICE_WALKERS} paths, got {}",
            data.paths.len()
        ));
    }
    let n = occupancy_expected.len();
    let mut occupancy = vec![0u64; n];
    let mut transitions = vec![0u64; edges.len()];
    for path in &data.paths {
        if path.len() != LATTICE_STEPS + 1 {
            return Err(format!(
                "path length {} != steps + 1 = {}",
                path.len(),
                LATTICE_STEPS + 1
            ));
        }
        let last = path[LATTICE_STEPS] as usize;
        if last >= n {
            return Err(format!("vertex {last} out of range"));
        }
        occupancy[last] += 1;
        let (u, v) = (path[LATTICE_STEPS - 1], path[LATTICE_STEPS]);
        match edges.index_of(u, v) {
            Some(i) => transitions[i] += 1,
            None => return Err(format!("walker hopped along non-edge {u} -> {v}")),
        }
    }

    let occ_counts: Vec<f64> = occupancy_expected
        .iter()
        .map(|p| p * LATTICE_WALKERS as f64)
        .collect();
    let occ = chi_square_test(&occupancy, &occ_counts);
    if !occ.fits(alpha) {
        return Err(format!(
            "occupancy chi-square rejected: p = {:.3e} < alpha = {:.3e}",
            occ.p_value, alpha
        ));
    }
    let edge_counts: Vec<f64> = edge_expected
        .iter()
        .map(|p| p * LATTICE_WALKERS as f64)
        .collect();
    let tr = chi_square_test(&transitions, &edge_counts);
    if !tr.fits(alpha) {
        return Err(format!(
            "transition chi-square rejected: p = {:.3e} < alpha = {:.3e}",
            tr.p_value, alpha
        ));
    }

    let mut digest = PathDigest::new();
    digest.fold_u64(data.paths.len() as u64);
    for p in &data.paths {
        digest.fold_path(p);
    }
    for &x in &data.extra {
        digest.fold_u64(x);
    }
    Ok((occ.p_value, tr.p_value, digest.finish()))
}

/// Runs the configured lattice slice and reports every cell.
pub fn run_lattice(config: &LatticeConfig) -> LatticeReport {
    run_lattice_traced(config, &mut Telemetry::off())
}

/// [`run_lattice`] with telemetry: one [`Stage::Cell`] span per
/// *executed* (non-skipped) cell, `step` carrying the cell's index in
/// sweep order, plus a progress tick after every cell so a heartbeat
/// sink can report lattice progress.  Cell execution itself is
/// untouched — digests stay bit-identical to untraced sweeps.
pub fn run_lattice_traced(config: &LatticeConfig, tel: &mut Telemetry) -> LatticeReport {
    let unweighted = conformance_graph();
    let weighted = weighted_conformance_graph();

    // Count runnable cells first so the Bonferroni split is known
    // before any test executes (two chi-square tests per cell).
    let mut runnable = 0usize;
    for engine in EngineKind::ALL {
        for algo in AlgoKind::ALL {
            for &threads in &config.threads {
                if engine.skip_reason(algo, threads).is_none() {
                    runnable += 1;
                }
            }
        }
    }
    let per_test_alpha = ALPHA / (2.0 * runnable.max(1) as f64);

    // Oracle distributions depend only on the algorithm, not the
    // engine or thread count — compute each once.
    let oracles: Vec<(AlgoKind, OracleDistributions)> = AlgoKind::ALL
        .iter()
        .map(|&algo| {
            let graph = if algo == AlgoKind::Weighted {
                &weighted
            } else {
                &unweighted
            };
            (algo, oracle_distributions(graph, algo))
        })
        .collect();

    let total_cells = EngineKind::ALL.len() * AlgoKind::ALL.len() * config.threads.len();
    let mut cells = Vec::new();
    for engine in EngineKind::ALL {
        for algo in AlgoKind::ALL {
            let graph = if algo == AlgoKind::Weighted {
                &weighted
            } else {
                &unweighted
            };
            let (_, (occ, edge, edges)) = oracles
                .iter()
                .find(|(a, _)| *a == algo)
                .expect("oracle precomputed for every algorithm");
            for &threads in &config.threads {
                let cell_index = cells.len();
                let outcome = if let Some(reason) = engine.skip_reason(algo, threads) {
                    Outcome::Skipped { reason }
                } else {
                    let span_start = tel.is_on().then(|| tel.now_ns());
                    let outcome = match run_cell_data(graph, engine, algo, threads)
                        .and_then(|data| check_cell(&data, occ, edge, edges, per_test_alpha))
                    {
                        Ok((occupancy_p, transition_p, digest)) => {
                            let expected = golden::lookup(engine.label(), algo.label(), threads);
                            match expected {
                                Some(want) if config.check_golden && want != digest => {
                                    Outcome::Fail {
                                        reason: format!(
                                            "golden digest mismatch: committed {want:#018x}, \
                                             got {digest:#018x} (see DESIGN.md \
                                             \"Correctness methodology\" for regeneration)"
                                        ),
                                    }
                                }
                                _ => Outcome::Pass {
                                    occupancy_p,
                                    transition_p,
                                    digest,
                                    golden_checked: config.check_golden && expected.is_some(),
                                },
                            }
                        }
                        Err(reason) => Outcome::Fail { reason },
                    };
                    if let Some(s) = span_start {
                        tel.span_since(Stage::Cell, s, cell_index as u32, NO_PARTITION);
                    }
                    outcome
                };
                tel.tick(cell_index + 1, total_cells, 0);
                cells.push(Cell {
                    engine,
                    algo,
                    threads,
                    outcome,
                });
            }
        }
    }
    LatticeReport {
        cells,
        per_test_alpha,
    }
}

/// Digest of one cell without statistical checks — the generator
/// behind `fmwalk conform --emit-golden`.
pub fn cell_digest(engine: EngineKind, algo: AlgoKind, threads: usize) -> Option<u64> {
    if engine.skip_reason(algo, threads).is_some() {
        return None;
    }
    let unweighted = conformance_graph();
    let weighted = weighted_conformance_graph();
    let graph = if algo == AlgoKind::Weighted {
        &weighted
    } else {
        &unweighted
    };
    let data = run_cell_data(graph, engine, algo, threads).ok()?;
    let mut d = PathDigest::new();
    d.fold_u64(data.paths.len() as u64);
    for p in &data.paths {
        d.fold_path(p);
    }
    for &x in &data.extra {
        d.fold_u64(x);
    }
    Some(d.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_graph_is_fixed_and_sinkless() {
        let g = conformance_graph();
        assert_eq!(g.vertex_count(), 96);
        assert!(g.has_no_sinks());
        let w = weighted_conformance_graph();
        assert!(w.is_weighted());
        assert_eq!(w.offsets(), g.offsets());
        assert_eq!(w.targets(), g.targets());
    }

    #[test]
    fn skip_matrix_matches_support() {
        assert!(EngineKind::OutOfCore
            .skip_reason(AlgoKind::Weighted, 1)
            .is_some());
        assert!(EngineKind::OutOfCore
            .skip_reason(AlgoKind::DeepWalk, 8)
            .is_some());
        assert!(EngineKind::OutOfCore
            .skip_reason(AlgoKind::DeepWalk, 1)
            .is_none());
        assert!(EngineKind::OutOfCore
            .skip_reason(AlgoKind::Node2Vec, 1)
            .is_none());
        assert!(EngineKind::FlashMobAuto
            .skip_reason(AlgoKind::Node2Vec, 8)
            .is_none());
    }

    #[test]
    fn single_cell_passes_against_oracle() {
        // One representative cell end to end (the full quick lattice
        // runs in the integration suite and in CI via `conform`).
        let graph = conformance_graph();
        let (occ, edge, edges) = oracle_distributions(&graph, AlgoKind::DeepWalk);
        let data = run_cell_data(&graph, EngineKind::FlashMobAuto, AlgoKind::DeepWalk, 1)
            .expect("cell runs");
        let (p_occ, p_tr, digest) =
            check_cell(&data, &occ, &edge, &edges, 1e-6).expect("cell conforms");
        assert!(p_occ > 1e-6 && p_tr > 1e-6);
        assert_ne!(digest, 0);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_lattice_records_one_cell_span_per_executed_cell() {
        let config = LatticeConfig {
            threads: vec![1],
            check_golden: false,
        };
        let mut tel = Telemetry::new();
        let report = run_lattice_traced(&config, &mut tel);
        assert!(report.failures().is_empty(), "lattice must pass");
        let (passed, skipped, _) = report.tally();
        let cell_spans: Vec<u32> = tel
            .events()
            .iter()
            .filter(|e| e.stage == Stage::Cell)
            .map(|e| e.step)
            .collect();
        assert_eq!(
            cell_spans.len(),
            passed,
            "one Cell span per executed cell, none for the {skipped} skipped"
        );
        // Step attribution is the cell index in sweep order: all
        // distinct, all in range, and matching the non-skipped cells.
        for (i, cell) in report.cells.iter().enumerate() {
            let has_span = cell_spans.contains(&(i as u32));
            let skipped = matches!(cell.outcome, Outcome::Skipped { .. });
            assert_eq!(has_span, !skipped, "span presence for cell {i}");
        }
    }

    #[test]
    fn cell_digest_is_reproducible() {
        let a = cell_digest(EngineKind::KnightKing, AlgoKind::DeepWalk, 1).unwrap();
        let b = cell_digest(EngineKind::KnightKing, AlgoKind::DeepWalk, 1).unwrap();
        assert_eq!(a, b);
        assert!(cell_digest(EngineKind::OutOfCore, AlgoKind::Weighted, 1).is_none());
    }
}
