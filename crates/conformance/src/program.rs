//! The programmable-walk conformance lattice.
//!
//! The legacy lattice ([`crate::runner`]) proves every engine samples
//! the paper's three chains.  This module is the conformance side of
//! the [`WalkProgram`](flashmob::WalkProgram) contract: **every
//! registered program must have an analytic oracle and lattice cells
//! of its own**, so a new walk scenario cannot merge on the strength
//! of "it ran without crashing".
//!
//! Three programs × the three direct FlashMob plan policies × thread
//! counts (programs are first-order, so digests are thread-invariant
//! like DeepWalk's):
//!
//! * **PPR** restarts to the walker's origin with probability
//!   [`PPR_ALPHA`].  Restart hops are not graph edges, so instead of
//!   the legacy last-hop transition test the cell runs *two*
//!   occupancy chi-squares (steps `k` and `k - 1`) against
//!   [`PprOracle`], plus a structural check that every hop is a graph
//!   edge or a restart landing on the walker's own origin.
//! * **Early exit** kills a walker one iteration after it returns to
//!   its origin.  The observable is the final path vertex, tested
//!   against [`EarlyExitOracle`]'s absorbing chain; structurally, a
//!   short path must end at its own origin and may visit it nowhere
//!   else in between.
//! * **Metapath** walks the labeled twin graph under the cyclic
//!   pattern [`METAPATH_PATTERN`].  Final-vertex occupancy is tested
//!   against [`MetapathOracle`]; structurally every hop must carry the
//!   phase's label, and a short path must end at a vertex with no
//!   allowed edge in its death phase.
//!
//! Digests fold exactly what the legacy lattice folds (walker count,
//! full path matrix, per-partition RNG stream ids) and are committed
//! in [`crate::golden`]'s program table.

use fm_graph::{Csr, VertexId};
use fm_rng::gof::chi_square_test;
use flashmob::{FlashMob, MetapathPattern, PlanStrategy, WalkAlgorithm, WalkerInit};

use crate::digest::PathDigest;
use crate::golden;
use crate::oracle::{init_distribution, EarlyExitOracle, MetapathOracle, PprOracle};
use crate::runner::{
    conformance_graph, flashmob_config, AlgoKind, EngineKind, ALPHA, LATTICE_STEPS,
    LATTICE_WALKERS,
};

/// PPR restart probability used throughout the program lattice.
pub const PPR_ALPHA: f64 = 0.15;

/// Metapath phase pattern used throughout the program lattice.
pub const METAPATH_PATTERN: [u8; 2] = [0, 1];

/// The labeled twin of [`conformance_graph`]: same topology, with each
/// adjacency slot labeled `slot % 2`.  The canonical graph's minimum
/// out-degree is 2, so every vertex carries both labels and no lattice
/// walker dies — death handling is exercised by the edge-case suite on
/// purpose-built graphs instead.
pub fn labeled_conformance_graph() -> Csr {
    let g = conformance_graph();
    let mut labels = Vec::with_capacity(g.edge_count());
    for u in 0..g.vertex_count() {
        let d = g.degree(u as VertexId);
        labels.extend((0..d).map(|slot| (slot % 2) as u8));
    }
    g.with_edge_labels(labels)
        .unwrap_or_else(|e| unreachable!("labels are parallel to the target array: {e}"))
}

/// Program dimension of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramKind {
    /// Personalized PageRank with restart probability [`PPR_ALPHA`].
    Ppr,
    /// Early-exit walk (die one iteration after returning home).
    EarlyExit,
    /// Metapath walk under [`METAPATH_PATTERN`] on the labeled twin.
    Metapath,
}

impl ProgramKind {
    /// All programs, in lattice order.
    pub const ALL: [ProgramKind; 3] = [
        ProgramKind::Ppr,
        ProgramKind::EarlyExit,
        ProgramKind::Metapath,
    ];

    /// Display label (also the golden-table key and the CLI
    /// `--program` spelling).
    pub fn label(self) -> &'static str {
        match self {
            ProgramKind::Ppr => "ppr",
            ProgramKind::EarlyExit => "early-exit",
            ProgramKind::Metapath => "metapath",
        }
    }

    /// The engine-side algorithm specification.
    pub fn walk_algorithm(self) -> WalkAlgorithm {
        match self {
            ProgramKind::Ppr => WalkAlgorithm::Ppr { alpha: PPR_ALPHA },
            ProgramKind::EarlyExit => WalkAlgorithm::EarlyExit,
            ProgramKind::Metapath => WalkAlgorithm::Metapath {
                pattern: MetapathPattern::new(&METAPATH_PATTERN)
                    .unwrap_or_else(|| unreachable!("the canonical pattern is valid")),
            },
        }
    }

    /// Number of chi-square tests one cell of this program runs (the
    /// Bonferroni denominator contribution).
    fn stat_tests(self) -> usize {
        match self {
            // No last-hop test exists for PPR (restarts land on
            // non-edges), so it checks occupancy at two horizons.
            ProgramKind::Ppr => 2,
            ProgramKind::EarlyExit | ProgramKind::Metapath => 1,
        }
    }
}

/// Whether `name` (a `flashmob::program::REGISTRY` spelling) is backed
/// by an analytic oracle and lattice coverage in this crate — the
/// audit `ci.sh`'s program tier enforces for every registered program.
pub fn oracle_backed(name: &str) -> bool {
    AlgoKind::ALL.iter().any(|a| a.label() == name)
        || ProgramKind::ALL.iter().any(|p| p.label() == name)
}

/// Which slice of the program lattice to run.
#[derive(Debug, Clone)]
pub struct ProgramLatticeConfig {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Whether digests must match the committed program golden table.
    pub check_golden: bool,
}

impl ProgramLatticeConfig {
    /// The CI tier: every program and plan policy at {1, 8} threads.
    pub fn quick() -> Self {
        Self {
            threads: vec![1, 8],
            check_golden: true,
        }
    }

    /// The pre-release tier: {1, 2, 8} threads.
    pub fn full() -> Self {
        Self {
            threads: vec![1, 2, 8],
            check_golden: true,
        }
    }
}

/// Outcome of one program-lattice cell.
#[derive(Debug, Clone)]
pub enum ProgramOutcome {
    /// Every chi-square and structural check passed and the digest
    /// matched (or no golden entry exists yet).
    Pass {
        /// p-values of the cell's chi-square tests, in check order.
        p_values: Vec<f64>,
        /// Path digest of the cell.
        digest: u64,
        /// Whether a golden entry was found and verified.
        golden_checked: bool,
    },
    /// The cell ran but failed a check (or failed to run).
    Fail {
        /// What went wrong.
        reason: String,
    },
}

/// One cell of the program lattice with its outcome.
#[derive(Debug, Clone)]
pub struct ProgramCell {
    /// Plan-policy dimension (direct FlashMob engines only; the
    /// baselines reject programs by design).
    pub engine: EngineKind,
    /// Program dimension.
    pub program: ProgramKind,
    /// Thread count.
    pub threads: usize,
    /// What happened.
    pub outcome: ProgramOutcome,
}

/// The full program-lattice report.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Every cell, in sweep order.
    pub cells: Vec<ProgramCell>,
    /// The Bonferroni-corrected per-test alpha that was applied.
    pub per_test_alpha: f64,
}

impl ProgramReport {
    /// All failing cells.
    pub fn failures(&self) -> Vec<&ProgramCell> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, ProgramOutcome::Fail { .. }))
            .collect()
    }

    /// Counts of (passed, failed).
    pub fn tally(&self) -> (usize, usize) {
        let mut t = (0, 0);
        for c in &self.cells {
            match c.outcome {
                ProgramOutcome::Pass { .. } => t.0 += 1,
                ProgramOutcome::Fail { .. } => t.1 += 1,
            }
        }
        t
    }
}

/// The plan policies the program lattice sweeps.  NUMA, out-of-core
/// and the walker-at-a-time baselines are out of scope by design: the
/// baselines reject programs at construction, and the program hot
/// paths live in the direct FlashMob engines.
pub const PROGRAM_ENGINES: [EngineKind; 3] = [
    EngineKind::FlashMobAuto,
    EngineKind::FlashMobPs,
    EngineKind::FlashMobDs,
];

struct ProgramCellData {
    paths: Vec<Vec<VertexId>>,
    extra: Vec<u64>,
}

/// The graph a program's cells run on.
pub(crate) fn program_graph(program: ProgramKind) -> Csr {
    match program {
        ProgramKind::Metapath => labeled_conformance_graph(),
        _ => conformance_graph(),
    }
}

pub(crate) fn program_config(program: ProgramKind, threads: usize) -> flashmob::WalkConfig {
    let mut config = flashmob_config(AlgoKind::DeepWalk, threads);
    config.algorithm = program.walk_algorithm();
    config
}

fn run_program_cell(
    graph: &Csr,
    engine: EngineKind,
    program: ProgramKind,
    threads: usize,
) -> Result<ProgramCellData, String> {
    let strategy = match engine {
        EngineKind::FlashMobAuto => PlanStrategy::DynamicProgramming,
        EngineKind::FlashMobPs => PlanStrategy::UniformPs,
        EngineKind::FlashMobDs => PlanStrategy::UniformDs,
        other => return Err(format!("{} is not a program engine", other.label())),
    };
    let config = program_config(program, threads).strategy(strategy);
    let fm = FlashMob::new(graph, config).map_err(|e| e.to_string())?;
    let mut extra = Vec::new();
    for iter in 0..LATTICE_STEPS {
        extra.extend(fm.partition_stream_ids(iter));
    }
    let output = fm.run().map_err(|e| e.to_string())?;
    Ok(ProgramCellData {
        paths: output.paths(),
        extra,
    })
}

/// Structural + statistical checks for one PPR cell.
fn check_ppr(
    data: &ProgramCellData,
    oracle: &PprOracle,
    occ_k: &[f64],
    occ_km1: &[f64],
    alpha: f64,
) -> Result<Vec<f64>, String> {
    let n = occ_k.len();
    let mut at_k = vec![0u64; n];
    let mut at_km1 = vec![0u64; n];
    for path in &data.paths {
        if path.len() != LATTICE_STEPS + 1 {
            return Err(format!(
                "ppr walkers never terminate early, got path length {}",
                path.len()
            ));
        }
        let origin = path[0];
        for hop in path.windows(2) {
            if !oracle.hop_allowed(hop[0], hop[1], origin) {
                return Err(format!(
                    "hop {} -> {} is neither an edge nor a restart to origin {origin}",
                    hop[0], hop[1]
                ));
            }
        }
        at_k[path[LATTICE_STEPS] as usize] += 1;
        at_km1[path[LATTICE_STEPS - 1] as usize] += 1;
    }
    let mut ps = Vec::with_capacity(2);
    for (label, observed, expected) in [
        ("step-k occupancy", &at_k, occ_k),
        ("step-(k-1) occupancy", &at_km1, occ_km1),
    ] {
        let counts: Vec<f64> = expected.iter().map(|p| p * LATTICE_WALKERS as f64).collect();
        let r = chi_square_test(observed, &counts);
        if !r.fits(alpha) {
            return Err(format!(
                "{label} chi-square rejected: p = {:.3e} < alpha = {alpha:.3e}",
                r.p_value
            ));
        }
        ps.push(r.p_value);
    }
    Ok(ps)
}

/// Structural + statistical checks for one early-exit cell.
fn check_early_exit(
    data: &ProgramCellData,
    oracle: &PprOracle,
    finals: &[f64],
    alpha: f64,
) -> Result<Vec<f64>, String> {
    let n = finals.len();
    let mut observed = vec![0u64; n];
    for path in &data.paths {
        if path.is_empty() || path.len() > LATTICE_STEPS + 1 {
            return Err(format!("path length {} out of range", path.len()));
        }
        let origin = path[0];
        // Every hop is a real edge (the PPR oracle's edge index
        // doubles as the plain edge-existence check: pass a
        // never-matching origin).
        for hop in path.windows(2) {
            if !oracle.hop_allowed(hop[0], hop[1], VertexId::MAX) {
                return Err(format!("walker hopped along non-edge {} -> {}", hop[0], hop[1]));
            }
        }
        // A walker may sit at its origin only at the start and (having
        // just returned, about to die) at the very end of its path.
        for (i, &v) in path.iter().enumerate().skip(1) {
            if v == origin && i + 1 < path.len() {
                return Err(format!(
                    "walker revisited origin {origin} at step {i} yet kept walking"
                ));
            }
        }
        // A short path exists only because the walker died, and it
        // dies only at its origin.  (The emptiness check above makes
        // the last index valid.)
        let last = path[path.len() - 1];
        if path.len() < LATTICE_STEPS + 1 && last != origin {
            return Err(format!(
                "walker terminated early at {last} != origin {origin}"
            ));
        }
        observed[last as usize] += 1;
    }
    let counts: Vec<f64> = finals.iter().map(|p| p * LATTICE_WALKERS as f64).collect();
    let r = chi_square_test(&observed, &counts);
    if !r.fits(alpha) {
        return Err(format!(
            "final-vertex chi-square rejected: p = {:.3e} < alpha = {alpha:.3e}",
            r.p_value
        ));
    }
    Ok(vec![r.p_value])
}

/// Structural + statistical checks for one metapath cell.
fn check_metapath(
    data: &ProgramCellData,
    oracle: &MetapathOracle,
    finals: &[f64],
    alpha: f64,
) -> Result<Vec<f64>, String> {
    let n = finals.len();
    let mut observed = vec![0u64; n];
    for path in &data.paths {
        if path.is_empty() || path.len() > LATTICE_STEPS + 1 {
            return Err(format!("path length {} out of range", path.len()));
        }
        for (t, hop) in path.windows(2).enumerate() {
            if !oracle.hop_allowed(hop[0], hop[1], t) {
                return Err(format!(
                    "hop {} -> {} has no label-{} edge (phase {t})",
                    hop[0],
                    hop[1],
                    oracle.label_at(t)
                ));
            }
        }
        // A short path means the death phase had no allowed edge.
        // (The emptiness check above makes the last index valid.)
        let last = path[path.len() - 1];
        if path.len() < LATTICE_STEPS + 1 {
            let t = path.len() - 1;
            if oracle.has_allowed(last, t) {
                return Err(format!(
                    "walker died at {last} although phase {t} has an allowed edge"
                ));
            }
        }
        observed[last as usize] += 1;
    }
    let counts: Vec<f64> = finals.iter().map(|p| p * LATTICE_WALKERS as f64).collect();
    let r = chi_square_test(&observed, &counts);
    if !r.fits(alpha) {
        return Err(format!(
            "final-vertex chi-square rejected: p = {:.3e} < alpha = {alpha:.3e}",
            r.p_value
        ));
    }
    Ok(vec![r.p_value])
}

fn digest_cell(data: &ProgramCellData) -> u64 {
    let mut d = PathDigest::new();
    d.fold_u64(data.paths.len() as u64);
    for p in &data.paths {
        d.fold_path(p);
    }
    for &x in &data.extra {
        d.fold_u64(x);
    }
    d.finish()
}

/// Per-program oracle state shared by every cell of that program.
enum ProgramOracle {
    Ppr {
        oracle: PprOracle,
        occ_k: Vec<f64>,
        occ_km1: Vec<f64>,
    },
    EarlyExit {
        edges: PprOracle,
        finals: Vec<f64>,
    },
    Metapath {
        oracle: MetapathOracle,
        finals: Vec<f64>,
    },
}

fn build_oracle(program: ProgramKind, graph: &Csr) -> ProgramOracle {
    let pi0 = init_distribution(graph, &WalkerInit::UniformEdge, LATTICE_WALKERS);
    match program {
        ProgramKind::Ppr => {
            let oracle = PprOracle::new(graph, PPR_ALPHA);
            let occ_k = oracle.occupancy(&pi0, LATTICE_STEPS);
            let occ_km1 = oracle.occupancy(&pi0, LATTICE_STEPS - 1);
            ProgramOracle::Ppr {
                oracle,
                occ_k,
                occ_km1,
            }
        }
        ProgramKind::EarlyExit => {
            let finals = EarlyExitOracle::new(graph).final_distribution(&pi0, LATTICE_STEPS);
            ProgramOracle::EarlyExit {
                // Reuse the PPR oracle's edge index for plain
                // edge-existence checks (alpha is irrelevant here).
                edges: PprOracle::new(graph, PPR_ALPHA),
                finals,
            }
        }
        ProgramKind::Metapath => {
            let oracle = MetapathOracle::new(graph, &METAPATH_PATTERN);
            let finals = oracle.final_distribution(&pi0, LATTICE_STEPS);
            ProgramOracle::Metapath { oracle, finals }
        }
    }
}

fn check_program_cell(
    data: &ProgramCellData,
    oracle: &ProgramOracle,
    alpha: f64,
) -> Result<Vec<f64>, String> {
    if data.paths.len() != LATTICE_WALKERS {
        return Err(format!(
            "expected {LATTICE_WALKERS} paths, got {}",
            data.paths.len()
        ));
    }
    match oracle {
        ProgramOracle::Ppr {
            oracle,
            occ_k,
            occ_km1,
        } => check_ppr(data, oracle, occ_k, occ_km1, alpha),
        ProgramOracle::EarlyExit { edges, finals } => {
            check_early_exit(data, edges, finals, alpha)
        }
        ProgramOracle::Metapath { oracle, finals } => {
            check_metapath(data, oracle, finals, alpha)
        }
    }
}

/// Runs the configured program-lattice slice and reports every cell.
pub fn run_program_lattice(config: &ProgramLatticeConfig) -> ProgramReport {
    // Bonferroni split over every chi-square the sweep runs.
    let tests_total: usize = ProgramKind::ALL
        .iter()
        .map(|p| p.stat_tests() * PROGRAM_ENGINES.len() * config.threads.len())
        .sum();
    let per_test_alpha = ALPHA / tests_total.max(1) as f64;

    let mut cells = Vec::new();
    for program in ProgramKind::ALL {
        let graph = program_graph(program);
        let oracle = build_oracle(program, &graph);
        for engine in PROGRAM_ENGINES {
            for &threads in &config.threads {
                let outcome = match run_program_cell(&graph, engine, program, threads)
                    .and_then(|data| {
                        check_program_cell(&data, &oracle, per_test_alpha)
                            .map(|ps| (ps, digest_cell(&data)))
                    }) {
                    Ok((p_values, digest)) => {
                        let expected =
                            golden::lookup_program(engine.label(), program.label(), threads);
                        match expected {
                            Some(want) if config.check_golden && want != digest => {
                                ProgramOutcome::Fail {
                                    reason: format!(
                                        "golden digest mismatch: committed {want:#018x}, \
                                         got {digest:#018x} (see DESIGN.md \
                                         \"Correctness methodology\" for regeneration)"
                                    ),
                                }
                            }
                            _ => ProgramOutcome::Pass {
                                p_values,
                                digest,
                                golden_checked: config.check_golden && expected.is_some(),
                            },
                        }
                    }
                    Err(reason) => ProgramOutcome::Fail { reason },
                };
                cells.push(ProgramCell {
                    engine,
                    program,
                    threads,
                    outcome,
                });
            }
        }
    }
    ProgramReport {
        cells,
        per_test_alpha,
    }
}

/// Digest of one program cell without statistical checks — the
/// generator behind `fmwalk conform --emit-golden`'s program rows.
pub fn program_cell_digest(
    engine: EngineKind,
    program: ProgramKind,
    threads: usize,
) -> Option<u64> {
    let graph = program_graph(program);
    let data = run_program_cell(&graph, engine, program, threads).ok()?;
    Some(digest_cell(&data))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit behind ci.sh's program tier: a program registered in
    /// the engine crate without oracle-backed lattice coverage here
    /// fails the build.
    #[test]
    fn every_registered_program_has_an_oracle() {
        for name in flashmob::program::REGISTRY {
            assert!(
                oracle_backed(name),
                "program '{name}' is registered in flashmob::program::REGISTRY \
                 but has no analytic oracle / lattice coverage in fm-conformance; \
                 add a ProgramKind (and golden digests) before shipping it"
            );
        }
    }

    #[test]
    fn labeled_twin_shares_topology_and_never_starves() {
        let g = labeled_conformance_graph();
        let plain = conformance_graph();
        assert_eq!(g.offsets(), plain.offsets());
        assert_eq!(g.targets(), plain.targets());
        assert!(g.is_labeled());
        // Minimum degree 2 + slot%2 labeling: every vertex offers both
        // labels, so the canonical pattern never kills a walker.
        let oracle = MetapathOracle::new(&g, &METAPATH_PATTERN);
        for u in 0..g.vertex_count() {
            assert!(oracle.has_allowed(u as VertexId, 0), "vertex {u} phase 0");
            assert!(oracle.has_allowed(u as VertexId, 1), "vertex {u} phase 1");
        }
    }

    #[test]
    fn single_ppr_cell_passes_against_oracle() {
        let graph = program_graph(ProgramKind::Ppr);
        let oracle = build_oracle(ProgramKind::Ppr, &graph);
        let data = run_program_cell(&graph, EngineKind::FlashMobAuto, ProgramKind::Ppr, 1)
            .expect("cell runs");
        let ps = check_program_cell(&data, &oracle, 1e-6).expect("cell conforms");
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|&p| p > 1e-6));
    }

    #[test]
    fn single_early_exit_cell_passes_against_oracle() {
        let graph = program_graph(ProgramKind::EarlyExit);
        let oracle = build_oracle(ProgramKind::EarlyExit, &graph);
        let data = run_program_cell(&graph, EngineKind::FlashMobDs, ProgramKind::EarlyExit, 1)
            .expect("cell runs");
        let ps = check_program_cell(&data, &oracle, 1e-6).expect("cell conforms");
        assert_eq!(ps.len(), 1);
        assert!(ps[0] > 1e-6);
    }

    #[test]
    fn single_metapath_cell_passes_against_oracle() {
        let graph = program_graph(ProgramKind::Metapath);
        let oracle = build_oracle(ProgramKind::Metapath, &graph);
        let data = run_program_cell(&graph, EngineKind::FlashMobPs, ProgramKind::Metapath, 1)
            .expect("cell runs");
        let ps = check_program_cell(&data, &oracle, 1e-6).expect("cell conforms");
        assert_eq!(ps.len(), 1);
        assert!(ps[0] > 1e-6);
    }

    #[test]
    fn program_digests_are_thread_invariant() {
        // Programs are first-order: like DeepWalk, the per-partition
        // RNG streams make any thread count bit-identical.
        for program in ProgramKind::ALL {
            let a = program_cell_digest(EngineKind::FlashMobAuto, program, 1).unwrap();
            let b = program_cell_digest(EngineKind::FlashMobAuto, program, 8).unwrap();
            assert_eq!(a, b, "{} digests diverge across threads", program.label());
        }
    }
}

