//! Committed golden-trace digests.
//!
//! Each entry fixes the bit-exact FNV-1a digest of one lattice cell's
//! full path matrix (plus, for direct FlashMob cells, the
//! per-partition RNG stream ids of every iteration) under the
//! canonical seed.  The statistical oracle cannot see a refactor that
//! swaps one valid pseudo-random walk for another; these digests can.
//!
//! **Regeneration** (only when a run-output change is *intentional* —
//! a new RNG stream layout, a changed sampler order, a different
//! canonical lattice): run `fmwalk conform --emit-golden`, review that
//! the diff is expected, and paste the emitted rows over the table
//! below.  See DESIGN.md, "Correctness methodology".

/// One committed digest: `(engine label, algo label, threads, digest)`.
pub type GoldenEntry = (&'static str, &'static str, usize, u64);

/// The committed table, covering the full lattice
/// (every engine × algorithm × {1, 2, 3, 8} threads cell that runs).
pub static GOLDEN: &[GoldenEntry] = &[
    ("flashmob-auto", "deepwalk", 1, 0xb7d4856302979415),
    ("flashmob-auto", "deepwalk", 2, 0xb7d4856302979415),
    ("flashmob-auto", "deepwalk", 3, 0xb7d4856302979415),
    ("flashmob-auto", "deepwalk", 8, 0xb7d4856302979415),
    ("flashmob-auto", "weighted", 1, 0xdd524386c60777cf),
    ("flashmob-auto", "weighted", 2, 0xdd524386c60777cf),
    ("flashmob-auto", "weighted", 3, 0xdd524386c60777cf),
    ("flashmob-auto", "weighted", 8, 0xdd524386c60777cf),
    ("flashmob-auto", "node2vec", 1, 0xf9ae09a72b31b3d9),
    ("flashmob-auto", "node2vec", 2, 0x10138fcf9ecdaae0),
    ("flashmob-auto", "node2vec", 3, 0x10138fcf9ecdaae0),
    ("flashmob-auto", "node2vec", 8, 0x10138fcf9ecdaae0),
    ("flashmob-ps", "deepwalk", 1, 0x287203edc97b40ee),
    ("flashmob-ps", "deepwalk", 2, 0x287203edc97b40ee),
    ("flashmob-ps", "deepwalk", 3, 0x287203edc97b40ee),
    ("flashmob-ps", "deepwalk", 8, 0x287203edc97b40ee),
    ("flashmob-ps", "weighted", 1, 0x41c9cc73c654565d),
    ("flashmob-ps", "weighted", 2, 0x41c9cc73c654565d),
    ("flashmob-ps", "weighted", 3, 0x41c9cc73c654565d),
    ("flashmob-ps", "weighted", 8, 0x41c9cc73c654565d),
    ("flashmob-ps", "node2vec", 1, 0x542e86d40cec03cb),
    ("flashmob-ps", "node2vec", 2, 0xcb18c75f2ae811dc),
    ("flashmob-ps", "node2vec", 3, 0xcb18c75f2ae811dc),
    ("flashmob-ps", "node2vec", 8, 0xcb18c75f2ae811dc),
    ("flashmob-ds", "deepwalk", 1, 0x6130505c1aff6682),
    ("flashmob-ds", "deepwalk", 2, 0x6130505c1aff6682),
    ("flashmob-ds", "deepwalk", 3, 0x6130505c1aff6682),
    ("flashmob-ds", "deepwalk", 8, 0x6130505c1aff6682),
    ("flashmob-ds", "weighted", 1, 0x8f98ab5dc96bee38),
    ("flashmob-ds", "weighted", 2, 0x8f98ab5dc96bee38),
    ("flashmob-ds", "weighted", 3, 0x8f98ab5dc96bee38),
    ("flashmob-ds", "weighted", 8, 0x8f98ab5dc96bee38),
    ("flashmob-ds", "node2vec", 1, 0x97cb1ff43e88137c),
    ("flashmob-ds", "node2vec", 2, 0x5db5e460a6a813e0),
    ("flashmob-ds", "node2vec", 3, 0x5db5e460a6a813e0),
    ("flashmob-ds", "node2vec", 8, 0x5db5e460a6a813e0),
    ("numa-p", "deepwalk", 1, 0x3295eea4334989a9),
    ("numa-p", "deepwalk", 2, 0x3295eea4334989a9),
    ("numa-p", "deepwalk", 3, 0x3295eea4334989a9),
    ("numa-p", "deepwalk", 8, 0x3295eea4334989a9),
    ("numa-p", "weighted", 1, 0xd9e51c7b92ecbf73),
    ("numa-p", "weighted", 2, 0xd9e51c7b92ecbf73),
    ("numa-p", "weighted", 3, 0xd9e51c7b92ecbf73),
    ("numa-p", "weighted", 8, 0xd9e51c7b92ecbf73),
    ("numa-p", "node2vec", 1, 0x78366b309ce5b3fd),
    ("numa-p", "node2vec", 2, 0x9b872657f3b1e890),
    ("numa-p", "node2vec", 3, 0x9b872657f3b1e890),
    ("numa-p", "node2vec", 8, 0x9b872657f3b1e890),
    ("numa-r", "deepwalk", 1, 0x59db66432794e001),
    ("numa-r", "deepwalk", 2, 0x59db66432794e001),
    ("numa-r", "deepwalk", 3, 0x59db66432794e001),
    ("numa-r", "deepwalk", 8, 0x59db66432794e001),
    ("numa-r", "weighted", 1, 0x70f2264b610834f5),
    ("numa-r", "weighted", 2, 0x70f2264b610834f5),
    ("numa-r", "weighted", 3, 0x70f2264b610834f5),
    ("numa-r", "weighted", 8, 0x70f2264b610834f5),
    ("numa-r", "node2vec", 1, 0x9bfa1ef90a9201e8),
    ("numa-r", "node2vec", 2, 0x909e7cbf9aac89fb),
    ("numa-r", "node2vec", 3, 0x909e7cbf9aac89fb),
    ("numa-r", "node2vec", 8, 0x909e7cbf9aac89fb),
    ("oocore", "deepwalk", 1, 0x7b2801556643861d),
    ("oocore", "node2vec", 1, 0xad8e5d47e99a7859),
    ("knightking", "deepwalk", 1, 0xd89e64dff9bbddc8),
    ("knightking", "deepwalk", 2, 0xf3503a3c72dc3473),
    ("knightking", "deepwalk", 3, 0x3dbfebd29ca27dc6),
    ("knightking", "deepwalk", 8, 0x9d97a044c3eb2560),
    ("knightking", "weighted", 1, 0xccd1c701b8b0a5c3),
    ("knightking", "weighted", 2, 0x877d49eecee47530),
    ("knightking", "weighted", 3, 0xddfd029902f8d36e),
    ("knightking", "weighted", 8, 0x6d7ba0350db08858),
    ("knightking", "node2vec", 1, 0xa3cbc2e8f907e0cc),
    ("knightking", "node2vec", 2, 0x0b5ab54db40b928c),
    ("knightking", "node2vec", 3, 0x2cdd610580e6e728),
    ("knightking", "node2vec", 8, 0x32310a6cebaa4ae2),
    ("graphvite", "deepwalk", 1, 0x3cdf9eb9b7d2fe21),
    ("graphvite", "deepwalk", 2, 0xff649eef7f379372),
    ("graphvite", "deepwalk", 3, 0xa374bbb80d2399a9),
    ("graphvite", "deepwalk", 8, 0xcb1861a4cfed88ea),
    ("graphvite", "weighted", 1, 0x02420e5c82179f1c),
    ("graphvite", "weighted", 2, 0x16c0fa285412f3cf),
    ("graphvite", "weighted", 3, 0xab8bc60363880eab),
    ("graphvite", "weighted", 8, 0x8a0f6f6acd50e0c5),
    ("graphvite", "node2vec", 1, 0x3441b8ec969dcba0),
    ("graphvite", "node2vec", 2, 0x41cd4467d87836c8),
    ("graphvite", "node2vec", 3, 0x1d35816a49a1b2ff),
    ("graphvite", "node2vec", 8, 0xc4f439945effb8cf),
];

/// Looks up the committed digest for a cell.
pub fn lookup(engine: &str, algo: &str, threads: usize) -> Option<u64> {
    GOLDEN
        .iter()
        .find(|&&(e, a, t, _)| e == engine && a == algo && t == threads)
        .map(|&(_, _, _, d)| d)
}

/// The committed program-lattice table (see [`crate::program`]): every
/// program × direct-FlashMob plan policy × {1, 2, 8} threads.  The
/// programs are first-order, so — like DeepWalk — each cell's digest
/// is thread-invariant; the rows are committed per thread count anyway
/// so a threading regression fails by *missing* digest rather than
/// silently skipping the check.
pub static PROGRAM_GOLDEN: &[GoldenEntry] = &[
    ("flashmob-auto", "ppr", 1, 0x79566922ef505d27),
    ("flashmob-auto", "ppr", 2, 0x79566922ef505d27),
    ("flashmob-auto", "ppr", 8, 0x79566922ef505d27),
    ("flashmob-ps", "ppr", 1, 0x02bd82a97f376de4),
    ("flashmob-ps", "ppr", 2, 0x02bd82a97f376de4),
    ("flashmob-ps", "ppr", 8, 0x02bd82a97f376de4),
    ("flashmob-ds", "ppr", 1, 0x51ce964cd13c662f),
    ("flashmob-ds", "ppr", 2, 0x51ce964cd13c662f),
    ("flashmob-ds", "ppr", 8, 0x51ce964cd13c662f),
    ("flashmob-auto", "early-exit", 1, 0xb1e5ce663ca56ac1),
    ("flashmob-auto", "early-exit", 2, 0xb1e5ce663ca56ac1),
    ("flashmob-auto", "early-exit", 8, 0xb1e5ce663ca56ac1),
    ("flashmob-ps", "early-exit", 1, 0xf0896a676b53a50e),
    ("flashmob-ps", "early-exit", 2, 0xf0896a676b53a50e),
    ("flashmob-ps", "early-exit", 8, 0xf0896a676b53a50e),
    ("flashmob-ds", "early-exit", 1, 0x6a6a29dfe9b9bd2b),
    ("flashmob-ds", "early-exit", 2, 0x6a6a29dfe9b9bd2b),
    ("flashmob-ds", "early-exit", 8, 0x6a6a29dfe9b9bd2b),
    ("flashmob-auto", "metapath", 1, 0xfe92b9975dbfd3e7),
    ("flashmob-auto", "metapath", 2, 0xfe92b9975dbfd3e7),
    ("flashmob-auto", "metapath", 8, 0xfe92b9975dbfd3e7),
    ("flashmob-ps", "metapath", 1, 0xe9d8b151880ba4bc),
    ("flashmob-ps", "metapath", 2, 0xe9d8b151880ba4bc),
    ("flashmob-ps", "metapath", 8, 0xe9d8b151880ba4bc),
    ("flashmob-ds", "metapath", 1, 0xe9d8b151880ba4bc),
    ("flashmob-ds", "metapath", 2, 0xe9d8b151880ba4bc),
    ("flashmob-ds", "metapath", 8, 0xe9d8b151880ba4bc),
];

/// Looks up the committed digest for a program-lattice cell.
pub fn lookup_program(engine: &str, program: &str, threads: usize) -> Option<u64> {
    PROGRAM_GOLDEN
        .iter()
        .find(|&&(e, p, t, _)| e == engine && p == program && t == threads)
        .map(|&(_, _, _, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn table_has_no_duplicate_keys() {
        let mut seen = BTreeSet::new();
        for &(e, a, t, _) in GOLDEN.iter().chain(PROGRAM_GOLDEN) {
            assert!(seen.insert((e, a, t)), "duplicate golden key ({e}, {a}, {t})");
        }
    }

    #[test]
    fn lookup_misses_cleanly() {
        assert_eq!(lookup("no-such-engine", "deepwalk", 1), None);
        assert_eq!(lookup_program("flashmob-auto", "deepwalk", 1), None);
    }

    #[test]
    fn program_table_covers_the_full_program_lattice() {
        for program in crate::program::ProgramKind::ALL {
            for engine in crate::program::PROGRAM_ENGINES {
                for threads in [1, 2, 8] {
                    assert!(
                        lookup_program(engine.label(), program.label(), threads).is_some(),
                        "missing program golden entry ({}, {}, {threads})",
                        engine.label(),
                        program.label()
                    );
                }
            }
        }
    }
}
