//! Reservoir sampling for fixed-size uniform samples from streams.
//!
//! Used by the neighborhood-sampling extension (GraphSage/ASAP-style
//! subgraph expansion mentioned in the paper's introduction) where a
//! bounded sample of each frontier must be drawn in one pass.

use crate::Rng64;

/// Draws a uniform sample of up to `k` items from an iterator of unknown
/// length (Algorithm R).
///
/// Returns fewer than `k` items only when the stream itself is shorter.
///
/// # Examples
///
/// ```
/// use fm_rng::{reservoir::sample_k, Xorshift64Star};
///
/// let mut rng = Xorshift64Star::new(1);
/// let sample = sample_k(0..100u32, 10, &mut rng);
/// assert_eq!(sample.len(), 10);
/// ```
pub fn sample_k<I, T, R>(stream: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng64,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (seen, item) in stream.into_iter().enumerate() {
        if seen < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_index(seen + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64Star;

    #[test]
    fn short_stream_returned_whole() {
        let mut rng = Xorshift64Star::new(1);
        let s = sample_k(0..3u32, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn k_zero_yields_empty() {
        let mut rng = Xorshift64Star::new(2);
        assert!(sample_k(0..100u32, 0, &mut rng).is_empty());
    }

    #[test]
    fn exact_size_when_stream_longer() {
        let mut rng = Xorshift64Star::new(3);
        assert_eq!(sample_k(0..1000u32, 32, &mut rng).len(), 32);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Each of 20 items should appear in a k=5 sample with p=0.25.
        let trials = 40_000;
        let mut hits = [0u32; 20];
        let mut rng = Xorshift64Star::new(4);
        for _ in 0..trials {
            for v in sample_k(0..20u32, 5, &mut rng) {
                hits[v as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / trials as f64;
            assert!((p - 0.25).abs() < 0.02, "item {i}: p={p}");
        }
    }
}
