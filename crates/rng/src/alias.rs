//! Walker's alias method for O(1) weighted discrete sampling.
//!
//! Used for static weighted transition probabilities: after an O(n)
//! construction over a vertex's edge weights, every draw costs one random
//! number, one table lookup, and one comparison.

use crate::Rng64;

/// A precomputed alias table over `n` weighted outcomes.
///
/// # Examples
///
/// ```
/// use fm_rng::{AliasTable, Rng64, Xorshift64Star};
///
/// let table = AliasTable::new(&[1.0, 2.0, 1.0]).unwrap();
/// let mut rng = Xorshift64Star::new(1);
/// let idx = table.sample(&mut rng);
/// assert!(idx < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each slot, scaled so that a uniform draw
    /// in `[0, 1)` accepts when below it.
    prob: Vec<f64>,
    /// Alias outcome used when the slot's own outcome is rejected.
    alias: Vec<u32>,
}

/// Errors from alias-table construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight,
    /// All weights were zero.
    ZeroTotal,
    /// More than `u32::MAX` outcomes.
    TooLarge,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AliasError::Empty => write!(f, "alias table needs at least one weight"),
            AliasError::InvalidWeight => write!(f, "weights must be finite and non-negative"),
            AliasError::ZeroTotal => write!(f, "total weight must be positive"),
            AliasError::TooLarge => write!(f, "alias table limited to u32::MAX outcomes"),
        }
    }
}

impl std::error::Error for AliasError {}

impl AliasTable {
    /// Builds an alias table from non-negative weights using Vose's
    /// numerically stable two-worklist construction.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        let n = weights.len();
        if n == 0 {
            return Err(AliasError::Empty);
        }
        if n > u32::MAX as usize {
            return Err(AliasError::TooLarge);
        }
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(AliasError::InvalidWeight);
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(AliasError::ZeroTotal);
        }

        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the slack of slot `s` from slot `l`'s mass.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are exactly 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Ok(Self { prob, alias })
    }

    /// Builds a table for a uniform distribution over `n` outcomes.
    pub fn uniform(n: usize) -> Result<Self, AliasError> {
        if n == 0 {
            return Err(AliasError::Empty);
        }
        if n > u32::MAX as usize {
            return Err(AliasError::TooLarge);
        }
        Ok(Self {
            prob: vec![1.0; n],
            alias: vec![0; n],
        })
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` when the table has no outcomes (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index in O(1).
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> usize {
        let i = rng.gen_index(self.prob.len());
        // SAFETY-free fast path: `i` is in-bounds by construction of
        // `gen_index`; use checked indexing anyway (bounds check is
        // branch-predicted away in the hot loop).
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Approximate heap footprint in bytes (used by the planner to size
    /// partition working sets).
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        self.prob.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64Star;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xorshift64Star::new(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights).unwrap();
        let freq = empirical(&table, 400_000, 11);
        for (i, &w) in weights.iter().enumerate() {
            let target = w / 10.0;
            assert!(
                (freq[i] - target).abs() < 0.01,
                "outcome {i}: {} vs {target}",
                freq[i]
            );
        }
    }

    #[test]
    fn handles_zero_weight_outcomes() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let freq = empirical(&table, 100_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn single_outcome_always_wins() {
        let table = AliasTable::new(&[42.0]).unwrap();
        let mut rng = Xorshift64Star::new(5);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_constructor_is_uniform() {
        let table = AliasTable::uniform(8).unwrap();
        let freq = empirical(&table, 160_000, 17);
        for &f in &freq {
            assert!((f - 0.125).abs() < 0.01);
        }
    }

    #[test]
    fn highly_skewed_weights() {
        let table = AliasTable::new(&[1e-9, 1.0]).unwrap();
        let freq = empirical(&table, 100_000, 23);
        assert!(freq[1] > 0.999);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), AliasError::Empty);
        assert_eq!(
            AliasTable::new(&[1.0, -1.0]).unwrap_err(),
            AliasError::InvalidWeight
        );
        assert_eq!(
            AliasTable::new(&[f64::NAN]).unwrap_err(),
            AliasError::InvalidWeight
        );
        assert_eq!(
            AliasTable::new(&[0.0, 0.0]).unwrap_err(),
            AliasError::ZeroTotal
        );
    }
}
