//! The 32-bit Mersenne Twister (MT19937) of Matsumoto & Nishimura.
//!
//! KnightKing uses `std::mt19937`; we reimplement it so the baseline
//! engines reproduce the paper's RNG cost profile (Table 5 discussion:
//! MT inflates L1 hit counts because its 2496-byte state array is walked
//! for every 624-word refill).

use crate::Rng64;

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_B0DF;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7FFF_FFFF;

/// The classic MT19937 generator producing 32-bit words.
#[derive(Clone)]
pub struct Mt19937 {
    state: [u32; N],
    index: usize,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937")
            .field("index", &self.index)
            .finish()
    }
}

impl Mt19937 {
    /// Creates a generator using the reference `init_genrand` seeding.
    pub fn new(seed: u32) -> Self {
        let mut state = [0u32; N];
        state[0] = seed;
        for i in 1..N {
            state[i] = 1_812_433_253u32
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Self { state, index: N }
    }

    /// Returns the next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= N {
            self.twist();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^= y >> 18;
        y
    }

    fn twist(&mut self) {
        for i in 0..N {
            let y = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut next = y >> 1;
            if y & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = self.state[(i + M) % N] ^ next;
        }
        self.index = 0;
    }
}

impl Rng64 for Mt19937 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two 32-bit draws, matching how 64-bit values are commonly built
        // on top of std::mt19937.
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_seed_5489() {
        // First outputs of MT19937 with the canonical default seed 5489,
        // from the reference implementation.
        let mut mt = Mt19937::new(5489);
        let expected: [u32; 10] = [
            3499211612, 581869302, 3890346734, 3586334585, 545404204, 4161255391, 3922919429,
            949333985, 2715962298, 1323567403,
        ];
        for &e in &expected {
            assert_eq!(mt.next_u32(), e);
        }
    }

    #[test]
    fn reference_vector_seed_1() {
        let mut mt = Mt19937::new(1);
        assert_eq!(mt.next_u32(), 1791095845);
        assert_eq!(mt.next_u32(), 4282876139);
    }

    #[test]
    fn next_u64_combines_two_draws() {
        let mut a = Mt19937::new(5489);
        let mut b = Mt19937::new(5489);
        let hi = a.next_u32() as u64;
        let lo = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut mt = Mt19937::new(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[mt.gen_range(8) as usize] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05);
        }
    }
}
