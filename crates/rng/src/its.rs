//! Inverse transform sampling over a cumulative weight array.
//!
//! O(n) construction, O(log n) per draw via binary search.  Compared with
//! the alias method it halves the table footprint (one `f64` per outcome),
//! which matters when the table must stay cache-resident alongside edge
//! data — the trade-off the paper's related-work section attributes to
//! classical pre-processing approaches.

use crate::Rng64;

/// A cumulative-distribution sampler.
#[derive(Debug, Clone)]
pub struct InverseTransform {
    /// Strictly increasing cumulative weights; last entry is the total.
    cumulative: Vec<f64>,
}

/// Errors from sampler construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItsError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight,
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for ItsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItsError::Empty => write!(f, "need at least one weight"),
            ItsError::InvalidWeight => write!(f, "weights must be finite and non-negative"),
            ItsError::ZeroTotal => write!(f, "total weight must be positive"),
        }
    }
}

impl std::error::Error for ItsError {}

impl InverseTransform {
    /// Builds the cumulative table from non-negative weights.
    pub fn new(weights: &[f64]) -> Result<Self, ItsError> {
        if weights.is_empty() {
            return Err(ItsError::Empty);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(ItsError::InvalidWeight);
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return Err(ItsError::ZeroTotal);
        }
        Ok(Self { cumulative })
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` when the sampler has no outcomes (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one outcome index in O(log n).
    #[inline]
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = rng.next_f64() * total;
        // partition_point returns the count of entries <= x treated as
        // "still below"; zero-weight outcomes (flat runs) are skipped
        // because we search for the first entry strictly greater than x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Approximate heap footprint in bytes.
    #[inline]
    pub fn footprint_bytes(&self) -> usize {
        self.cumulative.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64Star;

    #[test]
    fn matches_target_distribution() {
        let weights = [5.0, 1.0, 4.0];
        let s = InverseTransform::new(&weights).unwrap();
        let mut rng = Xorshift64Star::new(2);
        let mut counts = [0usize; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[s.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w / 10.0).abs() < 0.01, "outcome {i}");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let s = InverseTransform::new(&[0.0, 3.0, 0.0, 1.0, 0.0]).unwrap();
        let mut rng = Xorshift64Star::new(4);
        for _ in 0..50_000 {
            let i = s.sample(&mut rng);
            assert!(i == 1 || i == 3, "sampled zero-weight outcome {i}");
        }
    }

    #[test]
    fn single_outcome() {
        let s = InverseTransform::new(&[0.5]).unwrap();
        let mut rng = Xorshift64Star::new(6);
        assert_eq!(s.sample(&mut rng), 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(InverseTransform::new(&[]).unwrap_err(), ItsError::Empty);
        assert_eq!(
            InverseTransform::new(&[1.0, f64::INFINITY]).unwrap_err(),
            ItsError::InvalidWeight
        );
        assert_eq!(
            InverseTransform::new(&[0.0]).unwrap_err(),
            ItsError::ZeroTotal
        );
    }
}
