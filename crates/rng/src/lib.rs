//! Deterministic pseudo-random number generation and discrete sampling.
//!
//! FlashMob's edge sampling is dominated by two costs: drawing random bits
//! and turning them into a discrete choice over a vertex's out-edges.  The
//! paper (Section 5.2) notes that replacing the Mersenne Twister used by
//! KnightKing with the much cheaper xorshift* generator cuts RNG compute
//! time by more than 5x, while only shaving 4-9% off KnightKing's total
//! run time because the baseline is memory-bound.  To reproduce that
//! ablation faithfully this crate provides both generators behind a common
//! [`Rng64`] trait, plus the classical discrete samplers used by random
//! walk engines:
//!
//! * [`alias::AliasTable`] — Walker's alias method, O(1) per draw,
//!   O(n) construction (used for static weighted transition probabilities).
//! * [`its::InverseTransform`] — inverse transform sampling over a
//!   cumulative weight array, O(log n) per draw.
//! * [`rejection::RejectionSampler`] — rejection sampling against a known
//!   weight upper bound, the technique KnightKing applies to dynamic
//!   (second-order) transition probabilities.
//! * [`reservoir`] — reservoir sampling for subgraph/neighborhood sampling.
//!
//! Everything here is deterministic under a fixed seed; parallel engines
//! derive independent per-task streams with [`split_stream`].

pub mod alias;
pub mod gof;
pub mod its;
pub mod mt19937;
pub mod rejection;
pub mod reservoir;
pub mod xorshift;

pub use alias::AliasTable;
pub use its::InverseTransform;
pub use mt19937::Mt19937;
pub use rejection::RejectionSampler;
pub use xorshift::{SplitMix64, Xorshift64Star};

/// A minimal 64-bit pseudo-random generator interface.
///
/// All engines in the workspace are generic over this trait so the RNG
/// ablation (xorshift* vs Mersenne Twister) can be run on any engine.
pub trait Rng64 {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits; standard u64 -> f64 construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which avoids the
    /// modulo bias of naive `next_u64() % bound` while staying branch-light
    /// on the common path.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Threshold for rejecting the biased low region.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Derives a statistically independent child seed for task `index`.
///
/// Engines that process partitions in parallel give each task its own
/// generator seeded with `split_stream(seed, task_index)`; results are then
/// independent of the execution schedule, which keeps multi-threaded runs
/// bit-reproducible.
#[inline]
pub fn split_stream(seed: u64, index: u64) -> u64 {
    // Two rounds of splitmix64 over a golden-ratio-offset stream index.
    let mut s = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    s.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Xorshift64Star::new(42);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Xorshift64Star::new(7);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_bound_panics() {
        let mut r = Xorshift64Star::new(1);
        let _ = r.gen_range(0);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = Xorshift64Star::new(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn split_stream_children_differ() {
        let a = split_stream(99, 0);
        let b = split_stream(99, 1);
        let c = split_stream(100, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_stream_is_deterministic() {
        assert_eq!(split_stream(5, 17), split_stream(5, 17));
    }
}
