//! Goodness-of-fit testing for sampler verification.
//!
//! Random-walk engines are only correct if their empirical transition
//! frequencies match the specified distribution; eyeballing tolerances
//! is fragile, so the test suites use Pearson's chi-square test with a
//! proper critical value.  Implemented from scratch: the chi-square
//! survival function via the regularized upper incomplete gamma
//! function (continued-fraction + series evaluation, Numerical-Recipes
//! style).

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy)]
pub struct ChiSquare {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// Probability of a statistic at least this large under H0.
    pub p_value: f64,
}

impl ChiSquare {
    /// Whether the observations are consistent with the expectation at
    /// significance level `alpha` (i.e. H0 is *not* rejected).
    pub fn fits(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Pearson chi-square test of observed counts against expected counts.
///
/// Bins with expected count below 5 are pooled into their neighbor, the
/// standard validity fix.  Expected counts are rescaled so both totals
/// match.
///
/// # Panics
///
/// Panics if lengths differ, everything pools away, or expectations are
/// not all non-negative.
pub fn chi_square_test(observed: &[u64], expected: &[f64]) -> ChiSquare {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(
        expected.iter().all(|&e| e.is_finite() && e >= 0.0),
        "expected counts must be non-negative"
    );
    let total_obs: f64 = observed.iter().map(|&o| o as f64).sum();
    let total_exp: f64 = expected.iter().sum();
    assert!(total_exp > 0.0, "expected total must be positive");
    let scale = total_obs / total_exp;

    // Pool small-expectation bins.
    let mut pooled: Vec<(f64, f64)> = Vec::with_capacity(observed.len());
    let mut acc_o = 0.0f64;
    let mut acc_e = 0.0f64;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_o += o as f64;
        acc_e += e * scale;
        if acc_e >= 5.0 {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        } else {
            pooled.push((acc_o, acc_e));
        }
    }
    assert!(pooled.len() >= 2, "need at least two usable bins");

    let statistic: f64 = pooled
        .iter()
        .map(|&(o, e)| {
            let d = o - e;
            d * d / e
        })
        .sum();
    let dof = pooled.len() - 1;
    ChiSquare {
        statistic,
        dof,
        p_value: chi_square_sf(statistic, dof as f64),
    }
}

/// Survival function of the chi-square distribution:
/// `P(X >= x)` with `k` degrees of freedom = `Q(k/2, x/2)`.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Regularized upper incomplete gamma function `Q(a, x)`.
fn gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Iteration budget for the series/continued-fraction evaluations.
///
/// Both expansions converge in O(sqrt(a)) iterations near the series/CF
/// crossover at `x = a + 1`, so a fixed cap of 500 silently truncates
/// once the degrees of freedom climb into the hundreds of thousands —
/// exactly the regime the conformance lattice's transition tests reach
/// (one bin per distinct edge).  Scale the budget with `a` instead.
fn gamma_iterations(a: f64) -> usize {
    (500.0 + 10.0 * a.sqrt()).min(1e7) as usize
}

/// Lower regularized gamma by series expansion (x < a + 1).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..gamma_iterations(a) {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Upper regularized gamma by Lentz continued fraction (x >= a + 1).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..gamma_iterations(a) {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lanczos approximation of `ln Γ(z)` (g = 7, n = 9 coefficients).
fn ln_gamma(z: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if z < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * z).sin().ln()
            - ln_gamma(1.0 - z);
    }
    let z = z - 1.0;
    let mut x = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        x += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + x.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng64, Xorshift64Star};

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-12);
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // Classic table values: chi2(0.95; 3 dof) critical = 7.815.
        assert!((chi_square_sf(7.815, 3.0) - 0.05).abs() < 0.001);
        // chi2(0.99; 1 dof) = 6.635.
        assert!((chi_square_sf(6.635, 1.0) - 0.01).abs() < 0.001);
        // SF at 0 is 1.
        assert_eq!(chi_square_sf(0.0, 5.0), 1.0);
    }

    #[test]
    fn chi_square_sf_high_dof() {
        // The chi-square mean is k, and for large k the distribution is
        // nearly symmetric, so SF(k; k) sits just below 1/2 (the median
        // is about k - 2/3).  The fixed 500-iteration budget used to
        // underflow these to garbage.
        for &k in &[1e3, 1e5, 1e6] {
            let sf = chi_square_sf(k, k);
            assert!(
                sf > 0.45 && sf < 0.5,
                "sf({k}, {k}) = {sf} outside (0.45, 0.5)"
            );
        }
        // Far tails stay exact: mean + 5 sigma has SF ~ 2.8e-7.
        let k: f64 = 1e6;
        let sf_tail = chi_square_sf(k + 5.0 * (2.0 * k).sqrt(), k);
        assert!(
            sf_tail > 1e-8 && sf_tail < 1e-6,
            "5-sigma tail sf = {sf_tail}"
        );
    }

    #[test]
    fn chi_square_sf_continuous_at_series_cf_boundary() {
        // gamma_q switches from series to continued fraction at
        // x = a + 1; the two evaluations must agree there.
        for &k in &[10.0, 1e3, 1e5] {
            let x = k + 2.0; // chi_square_sf halves both ⇒ a+1 boundary
            let below = chi_square_sf(x - 1e-9, k);
            let above = chi_square_sf(x + 1e-9, k);
            assert!(
                (below - above).abs() < 1e-9,
                "discontinuity at dof {k}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn uniform_samples_pass() {
        let mut rng = Xorshift64Star::new(3);
        let mut counts = vec![0u64; 16];
        for _ in 0..160_000 {
            counts[rng.gen_index(16)] += 1;
        }
        let expected = vec![10_000.0; 16];
        let r = chi_square_test(&counts, &expected);
        assert!(r.fits(0.001), "uniform rejected: p = {}", r.p_value);
    }

    #[test]
    fn biased_samples_fail() {
        // Claim uniform, sample with a 20% bias toward bin 0.
        let mut rng = Xorshift64Star::new(5);
        let mut counts = vec![0u64; 8];
        for _ in 0..80_000 {
            let i = if rng.gen_bool(0.2) {
                0
            } else {
                rng.gen_index(8)
            };
            counts[i] += 1;
        }
        let r = chi_square_test(&counts, &[10_000.0; 8]);
        assert!(!r.fits(0.001), "bias not detected: p = {}", r.p_value);
    }

    #[test]
    fn small_bins_are_pooled() {
        // Expected counts of 1 would invalidate the test; pooling fixes.
        let observed = vec![3, 2, 1, 0, 2, 1, 50, 41];
        let expected = vec![1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 45.0, 46.0];
        let r = chi_square_test(&observed, &expected);
        assert!(r.dof < observed.len() - 1);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn totals_are_rescaled() {
        // Expected given as proportions rather than counts.
        let observed = vec![250u64, 250, 250, 250];
        let expected = vec![0.25, 0.25, 0.25, 0.25];
        let r = chi_square_test(&observed, &expected);
        assert!(r.fits(0.01));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = chi_square_test(&[1, 2], &[1.0]);
    }
}
