//! The xorshift64* and splitmix64 generators.
//!
//! FlashMob adopts xorshift* (Marsaglia 2003, Vigna's `*` output scrambler)
//! because its three shifts and one multiply are far cheaper than the
//! Mersenne Twister's tempered state array, and random walk sampling does
//! not need MT-grade equidistribution.

use crate::Rng64;

/// Marsaglia's xorshift64 generator with Vigna's multiplicative scrambler.
///
/// Period `2^64 - 1`; state must be nonzero (the constructor guarantees
/// this by remapping a zero seed through splitmix64).
#[derive(Debug, Clone)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from an arbitrary seed (zero is permitted).
    #[inline]
    pub fn new(seed: u64) -> Self {
        // Xorshift state must never be zero; run the seed through one
        // splitmix64 round and fall back to a fixed odd constant.
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state }
    }

    /// Returns the raw internal state (useful for checkpointing a walk).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng64 for Xorshift64Star {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The splitmix64 generator, used for seeding and stream splitting.
///
/// Every output of splitmix64 is a bijection of its counter state, so it
/// is ideal for deriving independent seeds from a task index.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64 implementation by Sebastiano Vigna.
        let mut s = SplitMix64::new(1234567);
        assert_eq!(s.next_u64(), 6457827717110365317);
        assert_eq!(s.next_u64(), 3203168211198807973);
        assert_eq!(s.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xorshift_zero_seed_is_usable() {
        let mut r = Xorshift64Star::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = Xorshift64Star::new(31337);
        let mut b = Xorshift64Star::new(31337);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_distinct_seeds_diverge() {
        let mut a = Xorshift64Star::new(1);
        let mut b = Xorshift64Star::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xorshift_bit_balance() {
        // Population count over many outputs should hover near 32.
        let mut r = Xorshift64Star::new(9);
        let total: u32 = (0..4096).map(|_| r.next_u64().count_ones()).sum();
        let mean = total as f64 / 4096.0;
        assert!((mean - 32.0).abs() < 0.5, "mean popcount {mean}");
    }
}
