//! Rejection sampling against a known weight upper bound.
//!
//! This is the technique KnightKing applies to *dynamic* transition
//! probabilities (e.g. node2vec's second-order bias): draw a candidate
//! outcome uniformly, then accept it with probability `w(candidate) /
//! w_max`.  No per-vertex preprocessing is required, at the cost of a
//! geometric number of attempts with mean `n * w_max / sum(w)`.

use crate::Rng64;

/// A rejection sampler over `n` outcomes whose weights are produced on
/// demand by a closure and bounded above by `w_max`.
#[derive(Debug, Clone, Copy)]
pub struct RejectionSampler {
    n: usize,
    w_max: f64,
}

/// Errors from rejection-sampler construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectionError {
    /// Zero outcomes.
    Empty,
    /// `w_max` was non-positive, NaN, or infinite.
    InvalidBound,
}

impl std::fmt::Display for RejectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectionError::Empty => write!(f, "need at least one outcome"),
            RejectionError::InvalidBound => write!(f, "w_max must be finite and positive"),
        }
    }
}

impl std::error::Error for RejectionError {}

impl RejectionSampler {
    /// Creates a sampler over `n` outcomes with weight bound `w_max`.
    pub fn new(n: usize, w_max: f64) -> Result<Self, RejectionError> {
        if n == 0 {
            return Err(RejectionError::Empty);
        }
        if !w_max.is_finite() || w_max <= 0.0 {
            return Err(RejectionError::InvalidBound);
        }
        Ok(Self { n, w_max })
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when there are no outcomes (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws one outcome whose weight is given by `weight(i)`.
    ///
    /// `weight` must return values in `[0, w_max]`; values above the bound
    /// are clamped (matching KnightKing's behaviour of treating the bound
    /// as authoritative).  Returns the accepted index together with the
    /// number of attempts, which engines feed into their cost accounting.
    #[inline]
    pub fn sample_counted<R, F>(&self, rng: &mut R, mut weight: F) -> (usize, u32)
    where
        R: Rng64,
        F: FnMut(usize) -> f64,
    {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let candidate = rng.gen_index(self.n);
            let w = weight(candidate).min(self.w_max);
            if rng.next_f64() * self.w_max < w {
                return (candidate, attempts);
            }
            // A pathological all-zero weight function would never accept;
            // bail out uniformly after a generous bound to keep engines
            // live (treated as uniform fallback, flagged by attempt count).
            if attempts >= 10_000 {
                return (candidate, attempts);
            }
        }
    }

    /// Draws one outcome, discarding the attempt count.
    #[inline]
    pub fn sample<R, F>(&self, rng: &mut R, weight: F) -> usize
    where
        R: Rng64,
        F: FnMut(usize) -> f64,
    {
        self.sample_counted(rng, weight).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64Star;

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 3.0, 2.0, 2.0];
        let s = RejectionSampler::new(4, 3.0).unwrap();
        let mut rng = Xorshift64Star::new(8);
        let mut counts = [0usize; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[s.sample(&mut rng, |i| weights[i])] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w / 8.0).abs() < 0.01, "outcome {i}");
        }
    }

    #[test]
    fn attempt_count_tracks_acceptance_rate() {
        // Acceptance rate = mean(w)/w_max = 0.25 -> ~4 attempts per draw.
        let s = RejectionSampler::new(8, 4.0).unwrap();
        let mut rng = Xorshift64Star::new(12);
        let mut total_attempts = 0u64;
        let draws = 50_000;
        for _ in 0..draws {
            let (_, a) = s.sample_counted(&mut rng, |_| 1.0);
            total_attempts += a as u64;
        }
        let mean = total_attempts as f64 / draws as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean attempts {mean}");
    }

    #[test]
    fn uniform_weights_accept_first_try() {
        let s = RejectionSampler::new(16, 1.0).unwrap();
        let mut rng = Xorshift64Star::new(13);
        for _ in 0..1000 {
            let (_, a) = s.sample_counted(&mut rng, |_| 1.0);
            assert_eq!(a, 1);
        }
    }

    #[test]
    fn pathological_zero_weights_terminate() {
        let s = RejectionSampler::new(4, 1.0).unwrap();
        let mut rng = Xorshift64Star::new(14);
        let (i, a) = s.sample_counted(&mut rng, |_| 0.0);
        assert!(i < 4);
        assert_eq!(a, 10_000);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            RejectionSampler::new(0, 1.0).unwrap_err(),
            RejectionError::Empty
        );
        assert_eq!(
            RejectionSampler::new(3, 0.0).unwrap_err(),
            RejectionError::InvalidBound
        );
        assert_eq!(
            RejectionSampler::new(3, f64::NAN).unwrap_err(),
            RejectionError::InvalidBound
        );
    }
}
