//! An exact solver for the Multiple-Choice Knapsack Problem (MCKP).
//!
//! FlashMob maps its vertex-partitioning/policy-assignment decision to
//! MCKP (paper Section 4.4): each degree *group* is a class; each
//! candidate `(partition size, per-partition policies)` combination is an
//! item whose *profit* is the negated sampling cost and whose *weight* is
//! the number of vertex partitions it creates; the capacity `P` is the
//! number of partitions a single level of shuffle can handle from L2
//! (2048 on the paper's platform).
//!
//! MCKP is NP-complete, but the classic dynamic program of Dudziński &
//! Walukiewicz solves it in pseudo-polynomial `O(C · P · I)` time and
//! `O(C · P)` space, which is negligible here (`C, P, I ≪ |V|`; the
//! paper reports 0.01 s).  This crate implements that DP with full
//! choice reconstruction, plus a brute-force reference used by the tests.

/// One candidate item within a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Profit if chosen (may be negative, e.g. a negated cost).
    pub profit: f64,
    /// Non-negative integral weight consumed if chosen.
    pub weight: u32,
}

/// A solved MCKP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// For each class, the index of the chosen item.
    pub choices: Vec<usize>,
    /// Total profit of the selection.
    pub profit: f64,
    /// Total weight of the selection.
    pub weight: u32,
}

/// Errors from the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MckpError {
    /// A class had no items, so "exactly one per class" is impossible.
    EmptyClass(usize),
    /// No selection fits within the capacity.
    Infeasible,
    /// A profit was NaN.
    InvalidProfit(usize),
}

impl std::fmt::Display for MckpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MckpError::EmptyClass(c) => write!(f, "class {c} has no items"),
            MckpError::Infeasible => write!(f, "no selection fits the capacity"),
            MckpError::InvalidProfit(c) => write!(f, "class {c} contains a NaN profit"),
        }
    }
}

impl std::error::Error for MckpError {}

/// Solves MCKP exactly: choose one item per class, total weight at most
/// `capacity`, maximizing total profit.
///
/// Runs in `O(C · P · I)` time and `O(C · P)` space where `C` is the
/// class count, `P = capacity + 1`, and `I` the largest class size.
///
/// # Examples
///
/// ```
/// use fm_mckp::{solve, Item};
///
/// let classes = vec![
///     vec![Item { profit: 3.0, weight: 2 }, Item { profit: 1.0, weight: 1 }],
///     vec![Item { profit: 5.0, weight: 3 }, Item { profit: 2.0, weight: 1 }],
/// ];
/// let s = solve(&classes, 3).unwrap();
/// assert_eq!(s.choices, vec![0, 1]); // 3.0+2.0 at weight 3
/// ```
pub fn solve(classes: &[Vec<Item>], capacity: u32) -> Result<Solution, MckpError> {
    let c = classes.len();
    let p = capacity as usize + 1;
    for (ci, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(MckpError::EmptyClass(ci));
        }
        if class.iter().any(|i| i.profit.is_nan()) {
            return Err(MckpError::InvalidProfit(ci));
        }
    }
    if c == 0 {
        return Ok(Solution {
            choices: vec![],
            profit: 0.0,
            weight: 0,
        });
    }

    // dp[ci * p + w]: best profit over classes [0, ci] with weight
    // exactly <= w; NEG_INFINITY marks infeasible states.  choice holds
    // the item index achieving it, for reconstruction.
    let mut dp = vec![f64::NEG_INFINITY; c * p];
    let mut choice = vec![usize::MAX; c * p];

    for (ii, item) in classes[0].iter().enumerate() {
        let w = item.weight as usize;
        if w < p && item.profit > dp[w] {
            dp[w] = item.profit;
            choice[w] = ii;
        }
    }
    // Make dp monotone in w for "weight <= w" semantics: not needed if
    // we scan all previous weights; instead we keep "exact" semantics
    // and take the max at the end.  For the transition we need, for each
    // w, max over w' <= w - item.weight, which "exact" handles by
    // iterating all w'.  To stay O(C*P*I) we convert each row to prefix
    // maxima instead.
    prefix_max_row(&mut dp[0..p], &mut choice[0..p]);

    for ci in 1..c {
        let (prev_rows, cur_rows) = dp.split_at_mut(ci * p);
        let prev = &prev_rows[(ci - 1) * p..ci * p];
        let cur = &mut cur_rows[0..p];
        let cur_choice = &mut choice[ci * p..(ci + 1) * p];
        for w in 0..p {
            for (ii, item) in classes[ci].iter().enumerate() {
                let iw = item.weight as usize;
                if iw > w {
                    continue;
                }
                let base = prev[w - iw];
                if base == f64::NEG_INFINITY {
                    continue;
                }
                let val = base + item.profit;
                if val > cur[w] {
                    cur[w] = val;
                    cur_choice[w] = ii;
                }
            }
        }
        prefix_max_row(cur, cur_choice);
    }

    // Best final state.
    let last = &dp[(c - 1) * p..c * p];
    let best_w = capacity as usize;
    if last[best_w] == f64::NEG_INFINITY {
        return Err(MckpError::Infeasible);
    }

    // Reconstruct: rows are prefix-max'ed, so choice[ci*p + w] is the
    // item chosen at the best state of weight <= w; walk backwards.
    let mut choices = vec![0usize; c];
    let mut w = best_w;
    for ci in (0..c).rev() {
        let ii = choice[ci * p + w];
        debug_assert_ne!(ii, usize::MAX, "reachable state must have a choice");
        choices[ci] = ii;
        w -= classes[ci][ii].weight as usize;
        // Within the previous row, move to the best state at weight <= w;
        // prefix-max already guarantees dp[prev][w] is that state, and
        // choice[prev][w] names its item, so nothing else to do.
    }

    let profit = last[best_w];
    let weight: u32 = choices
        .iter()
        .zip(classes)
        .map(|(&ii, class)| class[ii].weight)
        .sum();
    Ok(Solution {
        choices,
        profit,
        weight,
    })
}

/// Converts an "exact weight" DP row into "weight <= w" semantics by a
/// running maximum, keeping the choice column aligned.
fn prefix_max_row(dp: &mut [f64], choice: &mut [usize]) {
    for w in 1..dp.len() {
        if dp[w - 1] > dp[w] {
            dp[w] = dp[w - 1];
            choice[w] = choice[w - 1];
        }
    }
}

/// Exhaustive reference solver (exponential; tests only).
pub fn solve_brute_force(classes: &[Vec<Item>], capacity: u32) -> Result<Solution, MckpError> {
    for (ci, class) in classes.iter().enumerate() {
        if class.is_empty() {
            return Err(MckpError::EmptyClass(ci));
        }
        if class.iter().any(|i| i.profit.is_nan()) {
            return Err(MckpError::InvalidProfit(ci));
        }
    }
    let mut best: Option<Solution> = None;
    let mut stack = vec![0usize; classes.len()];
    fn recurse(
        classes: &[Vec<Item>],
        capacity: u32,
        ci: usize,
        stack: &mut Vec<usize>,
        best: &mut Option<Solution>,
    ) {
        if ci == classes.len() {
            let weight: u32 = stack
                .iter()
                .zip(classes)
                .map(|(&ii, cl)| cl[ii].weight)
                .sum();
            if weight > capacity {
                return;
            }
            let profit: f64 = stack
                .iter()
                .zip(classes)
                .map(|(&ii, cl)| cl[ii].profit)
                .sum();
            if best.as_ref().is_none_or(|b| profit > b.profit) {
                *best = Some(Solution {
                    choices: stack.clone(),
                    profit,
                    weight,
                });
            }
            return;
        }
        for ii in 0..classes[ci].len() {
            stack[ci] = ii;
            recurse(classes, capacity, ci + 1, stack, best);
        }
    }
    recurse(classes, capacity, 0, &mut stack, &mut best);
    best.ok_or(MckpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(profit: f64, weight: u32) -> Item {
        Item { profit, weight }
    }

    #[test]
    fn picks_best_combination() {
        let classes = vec![
            vec![item(10.0, 5), item(4.0, 1)],
            vec![item(6.0, 4), item(5.0, 2)],
        ];
        let s = solve(&classes, 7).unwrap();
        assert_eq!(s.choices, vec![0, 1]);
        assert_eq!(s.profit, 15.0);
        assert_eq!(s.weight, 7);
    }

    #[test]
    fn capacity_forces_cheap_items() {
        let classes = vec![
            vec![item(10.0, 5), item(4.0, 1)],
            vec![item(6.0, 4), item(5.0, 1)],
        ];
        let s = solve(&classes, 2).unwrap();
        assert_eq!(s.choices, vec![1, 1]);
        assert_eq!(s.profit, 9.0);
    }

    #[test]
    fn negative_profits_supported() {
        // FlashMob uses profit = -cost; the solver must pick the least
        // negative total.
        let classes = vec![
            vec![item(-3.0, 2), item(-8.0, 1)],
            vec![item(-1.0, 2), item(-6.0, 1)],
        ];
        let s = solve(&classes, 4).unwrap();
        assert_eq!(s.choices, vec![0, 0]);
        assert_eq!(s.profit, -4.0);
    }

    #[test]
    fn infeasible_detected() {
        let classes = vec![vec![item(1.0, 10)], vec![item(1.0, 10)]];
        assert_eq!(solve(&classes, 5).unwrap_err(), MckpError::Infeasible);
    }

    #[test]
    fn empty_class_detected() {
        let classes = vec![vec![item(1.0, 1)], vec![]];
        assert_eq!(solve(&classes, 5).unwrap_err(), MckpError::EmptyClass(1));
    }

    #[test]
    fn nan_profit_detected() {
        let classes = vec![vec![item(f64::NAN, 1)]];
        assert_eq!(solve(&classes, 5).unwrap_err(), MckpError::InvalidProfit(0));
    }

    #[test]
    fn no_classes_is_trivially_solved() {
        let s = solve(&[], 5).unwrap();
        assert!(s.choices.is_empty());
        assert_eq!(s.profit, 0.0);
    }

    #[test]
    fn zero_capacity_needs_zero_weight_items() {
        let classes = vec![vec![item(1.0, 1), item(0.5, 0)]];
        let s = solve(&classes, 0).unwrap();
        assert_eq!(s.choices, vec![1]);
    }

    #[test]
    fn single_class_picks_best_fitting_item() {
        let classes = vec![vec![item(1.0, 3), item(9.0, 8), item(5.0, 4)]];
        let s = solve(&classes, 5).unwrap();
        assert_eq!(s.choices, vec![2]);
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        let instances: Vec<(Vec<Vec<Item>>, u32)> = vec![
            (
                vec![
                    vec![item(3.0, 2), item(4.0, 3), item(1.0, 1)],
                    vec![item(2.0, 1), item(7.0, 5)],
                    vec![item(1.0, 1), item(2.0, 2), item(3.0, 3)],
                ],
                6,
            ),
            (
                vec![
                    vec![item(-1.0, 0), item(-0.5, 2)],
                    vec![item(-2.0, 1), item(-0.1, 4)],
                ],
                4,
            ),
        ];
        for (classes, cap) in instances {
            let fast = solve(&classes, cap).unwrap();
            let slow = solve_brute_force(&classes, cap).unwrap();
            assert!(
                (fast.profit - slow.profit).abs() < 1e-9,
                "profit {} vs {}",
                fast.profit,
                slow.profit
            );
            assert!(fast.weight <= cap);
        }
    }

    #[test]
    fn randomized_against_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state = 0x5EED_1234u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..200 {
            let c = 1 + (next() % 4) as usize;
            let classes: Vec<Vec<Item>> = (0..c)
                .map(|_| {
                    let n = 1 + (next() % 4) as usize;
                    (0..n)
                        .map(|_| Item {
                            profit: (next() % 41) as f64 - 20.0,
                            weight: next() % 6,
                        })
                        .collect()
                })
                .collect();
            let cap = next() % 12;
            let fast = solve(&classes, cap);
            let slow = solve_brute_force(&classes, cap);
            match (fast, slow) {
                (Ok(f), Ok(s)) => {
                    assert!(
                        (f.profit - s.profit).abs() < 1e-9,
                        "trial {trial}: {} vs {}",
                        f.profit,
                        s.profit
                    );
                    assert!(f.weight <= cap, "trial {trial}: weight over capacity");
                    // Reconstructed choices must re-sum to the profit.
                    let resum: f64 = f
                        .choices
                        .iter()
                        .zip(&classes)
                        .map(|(&ii, cl)| cl[ii].profit)
                        .sum();
                    assert!((resum - f.profit).abs() < 1e-9, "trial {trial}: resum");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "trial {trial}"),
                (f, s) => panic!("trial {trial}: solver disagreement {f:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn large_instance_runs_quickly() {
        // 128 classes x 16 items, capacity 2048 — the paper's scale.
        let classes: Vec<Vec<Item>> = (0..128)
            .map(|ci| {
                (0..16)
                    .map(|ii| Item {
                        profit: -((ci * 16 + ii) as f64 % 97.0),
                        weight: (ii as u32 % 13) + 1,
                    })
                    .collect()
            })
            .collect();
        let s = solve(&classes, 2048).unwrap();
        assert_eq!(s.choices.len(), 128);
        assert!(s.weight <= 2048);
    }
}
