//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The benchmark sources in `crates/bench/benches/` were written against
//! criterion's API, but this workspace must build in environments with
//! no access to crates.io.  This shim reimplements the subset of the API
//! those benches use — `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, and `black_box` — with
//! a simple median-of-samples timing loop and plain-text reporting.
//!
//! It is intentionally *not* statistically rigorous (no outlier
//! rejection, no bootstrap confidence intervals); it exists so that
//! `cargo bench` produces comparable numbers offline.  Swapping the
//! workspace dependency back to the real criterion requires no source
//! changes in the benches.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (criterion's default is 100;
/// this harness favors fast feedback).
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time for one sample batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks one function parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median per-iteration time from the last `iter` call.
    median_ns: f64,
    /// Minimum per-iteration time from the last `iter` call.
    min_ns: f64,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the batch size so one sample
    /// lasts roughly [`TARGET_SAMPLE_TIME`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: grow the batch until it is long enough to time.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.median_ns = per_iter[per_iter.len() / 2];
        self.min_ns = per_iter[0];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 0,
        samples,
        median_ns: f64::NAN,
        min_ns: f64::NAN,
    };
    f(&mut b);
    let mut line = format!(
        "{label:<48} median {:>12}  min {:>12}",
        fmt_ns(b.median_ns),
        fmt_ns(b.min_ns)
    );
    match throughput {
        Some(Throughput::Elements(n)) if b.median_ns > 0.0 => {
            let rate = n as f64 / (b.median_ns * 1e-9);
            line.push_str(&format!("  {:>12} elem/s", fmt_rate(rate)));
        }
        Some(Throughput::Bytes(n)) if b.median_ns > 0.0 => {
            let rate = n as f64 / (b.median_ns * 1e-9);
            line.push_str(&format!("  {:>12} B/s", fmt_rate(rate)));
        }
        _ => {}
    }
    line.push_str(&format!("  ({} it/sample)", b.iters_per_sample));
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum-n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(self_test, tiny_bench);

    #[test]
    fn harness_runs_and_reports() {
        // Exercises the full macro + group + bencher surface.
        self_test();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
