//! In-tree telemetry for the walk engines: per-stage spans, per-partition
//! counters, log2 latency histograms, and exporters.
//!
//! The paper's whole argument is observational — the sample/shuffle time
//! split, per-VP working-set residency, and shuffle traffic are what
//! justify frequency-aware grouping and the MCKP planner.  This crate
//! gives every engine that lens without external dependencies:
//!
//! * **Spans** ([`SpanEvent`]) attribute wall-clock intervals to a
//!   pipeline [`Stage`] (plan / shuffle / sample / IO / …) with thread,
//!   step, and partition attribution.  The coordinator records into its
//!   own lane; pool workers record into *lock-free per-worker buffers*
//!   ([`WorkerLog`]) that the coordinator drains at epoch boundaries —
//!   while a stage job runs, each lane has exactly one writer, so no
//!   atomics or locks are needed (the same disjoint-ownership argument
//!   as the engine's `DisjointSlice`).
//! * **Counters** ([`PartitionCounters`]) accumulate per-VP totals:
//!   steps, walker arrivals, PS/DS policy attribution, approximate edge
//!   bytes, peak occupancy.
//! * **Histograms** ([`Hist64`]) are 64-bucket log2 distributions used
//!   for stage latencies and shuffle bucket occupancy.
//! * **Exporters** ([`export`]) render the Chrome Trace Event Format
//!   (loadable in `chrome://tracing` / Perfetto), a JSONL metrics
//!   stream, and a human summary; [`tef`] validates emitted traces.
//!
//! Recording is cheap enough to stay compiled in by default; the
//! `telemetry-off` cargo feature turns every record path into a no-op
//! (and [`Telemetry::is_on`] into a constant `false`) for overhead
//! -sensitive builds, while [`Telemetry::off`] provides the same at
//! runtime.

pub mod export;
pub mod hist;
pub mod hw;
pub mod json;
pub mod tef;

pub use hist::Hist64;
pub use hw::{HwCounters, HwEvent};

use std::time::{Duration, Instant};

/// Pipeline stage a span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Partition planning (relabel + MCKP).
    Plan,
    /// Shuffle passes (count + scatter + gather).
    Shuffle,
    /// Edge-sample stage.
    Sample,
    /// Disk or file IO (out-of-core streaming).
    Io,
    /// Output materialization (path rows, visit dumps).
    Output,
    /// One conformance-lattice cell.
    Cell,
    /// Snapshot encode + atomic checkpoint publication.
    Checkpoint,
    /// Snapshot load + state reconstruction at resume.
    Recovery,
    /// Anything else.
    Other,
}

impl Stage {
    /// Every stage, in export order.
    pub const ALL: [Stage; 9] = [
        Stage::Plan,
        Stage::Shuffle,
        Stage::Sample,
        Stage::Io,
        Stage::Output,
        Stage::Cell,
        Stage::Checkpoint,
        Stage::Recovery,
        Stage::Other,
    ];

    /// Stable display/export label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Shuffle => "shuffle",
            Stage::Sample => "sample",
            Stage::Io => "io",
            Stage::Output => "output",
            Stage::Cell => "cell",
            Stage::Checkpoint => "checkpoint",
            Stage::Recovery => "recovery",
            Stage::Other => "other",
        }
    }

    /// Index into per-stage tables.
    pub fn index(self) -> usize {
        match self {
            Stage::Plan => 0,
            Stage::Shuffle => 1,
            Stage::Sample => 2,
            Stage::Io => 3,
            Stage::Output => 4,
            Stage::Cell => 5,
            Stage::Checkpoint => 6,
            Stage::Recovery => 7,
            Stage::Other => 8,
        }
    }
}

/// Sentinel for spans/counters with no partition attribution.
pub const NO_PARTITION: u32 = u32::MAX;

/// Sentinel for spans with no step attribution.
pub const NO_STEP: u32 = u32::MAX;

/// One recorded wall-clock interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Pipeline stage.
    pub stage: Stage,
    /// Nanoseconds since the owning [`Telemetry`]'s origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording lane: 0 is the coordinator, `t + 1` is pool worker `t`.
    pub thread: u32,
    /// Walk step (iteration) the span belongs to, or [`NO_STEP`].
    pub step: u32,
    /// Vertex partition the span belongs to, or [`NO_PARTITION`].
    pub partition: u32,
}

/// Per-vertex-partition counter totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCounters {
    /// Walker-steps sampled in this partition.
    pub steps: u64,
    /// Walker arrivals (shuffle deliveries) into this partition.
    pub walkers_in: u64,
    /// Steps sampled under the pre-sampling policy.
    pub ps_steps: u64,
    /// Steps sampled under the direct-sampling policy.
    pub ds_steps: u64,
    /// Approximate adjacency bytes touched (4 B per sampled edge read,
    /// plus 8 B per direct offset lookup — a documented lower bound, not
    /// a measured figure).
    pub edge_bytes: u64,
    /// Peak single-step occupancy (walkers resident at once).
    pub max_occupancy: u64,
    /// Peak sample-ring occupancy (in-flight walkers in the
    /// latency-hiding ring; 1 when the ring is off, 0 when the
    /// partition never ran).
    pub ring_occupancy: u64,
    /// Software-prefetch hints issued by the sample ring on this
    /// partition's behalf.
    pub prefetch_issued: u64,
}

impl PartitionCounters {
    fn absorb(&mut self, other: &PartitionCounters) {
        self.steps += other.steps;
        self.walkers_in += other.walkers_in;
        self.ps_steps += other.ps_steps;
        self.ds_steps += other.ds_steps;
        self.edge_bytes += other.edge_bytes;
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
        self.ring_occupancy = self.ring_occupancy.max(other.ring_occupancy);
        self.prefetch_issued += other.prefetch_issued;
    }
}

/// Fixed-capacity, single-writer span buffer for one pool worker.
///
/// Workers push during a stage job; the coordinator drains after the
/// pool's dispatch returns (the epoch boundary), when every worker is
/// quiescent — so the buffer needs no synchronization at all.  Overflow
/// increments a drop counter instead of reallocating on the hot path.
#[derive(Debug)]
pub struct WorkerLog {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl WorkerLog {
    /// Creates an empty lane holding at most `capacity` events between
    /// drains.
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one span, or counts it as dropped when the lane is full.
    #[inline]
    pub fn record(&mut self, ev: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of undrained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the lane holds no undrained events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Progress snapshot handed to the heartbeat sink.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    /// Steps completed so far.
    pub step: usize,
    /// Total steps configured (upper bound; stochastic stops may end
    /// earlier).
    pub total_steps: usize,
    /// Live walker-steps executed so far.
    pub steps_taken: u64,
    /// Wall-clock time since the run started.
    pub elapsed: Duration,
}

/// Periodic progress reporting for long runs.
struct Heartbeat {
    every: Duration,
    last: Instant,
    sink: Box<dyn FnMut(&Progress)>,
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat").field("every", &self.every).finish()
    }
}

/// Per-stage span totals (count + cumulative nanoseconds) and latency
/// histogram.
#[derive(Debug, Clone, Default)]
pub struct StageTotals {
    /// Number of spans recorded for this stage.
    pub spans: u64,
    /// Cumulative span duration in nanoseconds.
    pub total_ns: u64,
    /// Log2 histogram of span durations (nanoseconds).
    pub latency: Hist64,
}

/// The telemetry recorder: one per run (or per merged report).
///
/// The coordinator owns it mutably; pool workers receive disjoint
/// [`WorkerLog`] lanes for the duration of one dispatch.  All recording
/// methods are no-ops when the recorder is disabled (runtime toggle) or
/// when the crate is compiled with the `telemetry-off` feature.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    origin: Instant,
    /// Export process id: the TEF `pid` lane.  NUMA runs tag each
    /// socket's events with its own pid so merged traces keep
    /// per-socket attribution.
    pid: u32,
    events: Vec<SpanEvent>,
    event_capacity: usize,
    workers: Vec<WorkerLog>,
    worker_capacity: usize,
    partitions: Vec<PartitionCounters>,
    stages: Vec<StageTotals>,
    occupancy: Hist64,
    dropped: u64,
    /// Transient IO retries performed by the recovery layer (DiskGraph
    /// reads and checkpoint writes).
    io_retries: u64,
    heartbeat: Option<Heartbeat>,
    /// Hardware-counter session (`--hw-counters`); `None` — the
    /// default — keeps every record path free of perf reads.
    hw: Option<Box<hw::HwSession>>,
}

/// Default cap on coordinator-lane events per run.
const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

/// Default cap on events per worker lane between drains.
const DEFAULT_WORKER_CAPACITY: usize = 1 << 14;

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An enabled recorder with default buffer sizing.
    pub fn new() -> Self {
        Self {
            enabled: true,
            origin: Instant::now(),
            pid: 0,
            events: Vec::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            workers: Vec::new(),
            worker_capacity: DEFAULT_WORKER_CAPACITY,
            partitions: Vec::new(),
            stages: Stage::ALL.iter().map(|_| StageTotals::default()).collect(),
            occupancy: Hist64::default(),
            dropped: 0,
            io_retries: 0,
            heartbeat: None,
            hw: None,
        }
    }

    /// A disabled recorder: every record call is a no-op.  Engines use
    /// this internally for untraced entry points.
    pub fn off() -> Self {
        let mut t = Self::new();
        t.enabled = false;
        t
    }

    /// Tags exported events with `pid` (the TEF process lane; NUMA runs
    /// use one pid per socket).
    pub fn with_pid(mut self, pid: u32) -> Self {
        self.pid = pid;
        self
    }

    /// The export process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Runtime toggle.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.  A constant `false` when compiled
    /// with `telemetry-off`, letting the optimizer strip call sites.
    #[inline]
    pub fn is_on(&self) -> bool {
        cfg!(not(feature = "telemetry-off")) && self.enabled
    }

    /// Nanoseconds since this recorder's origin (for span start stamps).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// The origin instant (worker lanes stamp spans against it).
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Records one coordinator-lane span.
    #[inline]
    pub fn span(&mut self, ev: SpanEvent) {
        if !self.is_on() {
            return;
        }
        if let Some(hw) = self.hw.as_mut() {
            hw.attribute(ev.stage, ev.partition);
        }
        self.note_stage(ev.stage, ev.dur_ns);
        if self.events.len() < self.event_capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Convenience: records a coordinator span from a start instant
    /// captured with [`Telemetry::now_ns`].
    #[inline]
    pub fn span_since(&mut self, stage: Stage, start_ns: u64, step: u32, partition: u32) {
        if !self.is_on() {
            return;
        }
        let now = self.now_ns();
        self.span(SpanEvent {
            stage,
            start_ns,
            dur_ns: now.saturating_sub(start_ns),
            thread: 0,
            step,
            partition,
        });
    }

    fn note_stage(&mut self, stage: Stage, dur_ns: u64) {
        let t = &mut self.stages[stage.index()];
        t.spans += 1;
        t.total_ns += dur_ns;
        t.latency.record(dur_ns);
    }

    /// Ensures at least `n` worker lanes exist and returns them for a
    /// dispatch.  The caller hands lane `t` to worker `t` (disjointly)
    /// and calls [`Telemetry::drain_workers`] after the dispatch
    /// returns.
    pub fn worker_lanes(&mut self, n: usize) -> &mut [WorkerLog] {
        while self.workers.len() < n {
            self.workers.push(WorkerLog::new(self.worker_capacity));
        }
        &mut self.workers[..n]
    }

    /// Drains every worker lane into the main event buffer (the epoch
    /// -boundary protocol: called only while all workers are quiescent).
    pub fn drain_workers(&mut self) {
        if !self.is_on() {
            return;
        }
        for i in 0..self.workers.len() {
            let lane = std::mem::replace(
                &mut self.workers[i].events,
                Vec::with_capacity(self.worker_capacity.min(1024)),
            );
            for ev in lane {
                self.note_stage(ev.stage, ev.dur_ns);
                if self.events.len() < self.event_capacity {
                    self.events.push(ev);
                } else {
                    self.dropped += 1;
                }
            }
            self.dropped += self.workers[i].dropped;
            self.workers[i].dropped = 0;
        }
    }

    /// Sizes the per-partition counter table (idempotent; grows only).
    pub fn ensure_partitions(&mut self, n: usize) {
        if self.partitions.len() < n {
            self.partitions.resize(n, PartitionCounters::default());
        }
    }

    /// Accumulates one step's worth of counters for partition `pi`:
    /// `occupancy` walkers arrived and were each sampled once under the
    /// given policy.
    #[inline]
    pub fn record_partition_step(&mut self, pi: usize, occupancy: u64, is_ps: bool) {
        if !self.is_on() || occupancy == 0 {
            return;
        }
        self.ensure_partitions(pi + 1);
        let c = &mut self.partitions[pi];
        c.steps += occupancy;
        c.walkers_in += occupancy;
        if is_ps {
            c.ps_steps += occupancy;
            // PS reads one pre-sampled 4 B slot per step.
            c.edge_bytes += 4 * occupancy;
        } else {
            c.ds_steps += occupancy;
            // DS reads an 8 B offset plus a 4 B target per step.
            c.edge_bytes += 12 * occupancy;
        }
        c.max_occupancy = c.max_occupancy.max(occupancy);
        self.occupancy.record(occupancy);
    }

    /// Records one step's latency-hiding ring statistics for partition
    /// `pi`: the ring occupancy achieved (in-flight walkers, capped by
    /// the partition's live walker count) and the software-prefetch
    /// hints issued.  A no-op when the partition never ran
    /// (`occupancy == 0 && issued == 0`), so idle partitions report
    /// zeros rather than phantom depth-1 rings.
    #[inline]
    pub fn record_partition_ring(&mut self, pi: usize, occupancy: u64, issued: u64) {
        if !self.is_on() || (occupancy == 0 && issued == 0) {
            return;
        }
        self.ensure_partitions(pi + 1);
        let c = &mut self.partitions[pi];
        c.ring_occupancy = c.ring_occupancy.max(occupancy);
        c.prefetch_issued += issued;
    }

    /// Adds `bytes` of streamed adjacency data to partition `pi`'s
    /// byte counter (out-of-core reads).
    #[inline]
    pub fn record_partition_bytes(&mut self, pi: usize, bytes: u64) {
        if !self.is_on() {
            return;
        }
        self.ensure_partitions(pi + 1);
        self.partitions[pi].edge_bytes += bytes;
    }

    /// Installs a periodic progress heartbeat firing at most every
    /// `every` (checked from [`Telemetry::tick`]).
    pub fn set_heartbeat(&mut self, every: Duration, sink: impl FnMut(&Progress) + 'static) {
        self.heartbeat = Some(Heartbeat {
            every,
            last: Instant::now(),
            sink: Box::new(sink),
        });
    }

    /// Step-boundary hook: fires the heartbeat when its interval has
    /// elapsed.  Costs one `Instant::now` per call when a heartbeat is
    /// installed, nothing otherwise.
    #[inline]
    pub fn tick(&mut self, step: usize, total_steps: usize, steps_taken: u64) {
        if !self.is_on() {
            return;
        }
        let origin = self.origin;
        if let Some(hb) = self.heartbeat.as_mut() {
            let now = Instant::now();
            if now.duration_since(hb.last) >= hb.every {
                hb.last = now;
                (hb.sink)(&Progress {
                    step,
                    total_steps,
                    steps_taken,
                    elapsed: now.duration_since(origin),
                });
            }
        }
    }

    /// Every recorded (and drained) span.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// The per-partition counter table.
    pub fn partition_counters(&self) -> &[PartitionCounters] {
        &self.partitions
    }

    /// Per-stage totals (indexed by [`Stage::index`]).
    pub fn stage_totals(&self) -> &[StageTotals] {
        &self.stages
    }

    /// Totals for one stage.
    pub fn stage(&self, stage: Stage) -> &StageTotals {
        &self.stages[stage.index()]
    }

    /// The shuffle bucket-occupancy histogram (walkers per partition
    /// per step).
    pub fn occupancy_hist(&self) -> &Hist64 {
        &self.occupancy
    }

    /// Events dropped due to buffer caps.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Adds `n` transient IO retries (recovery layer: faulted DiskGraph
    /// reads, checkpoint writes).
    #[inline]
    pub fn record_io_retries(&mut self, n: u64) {
        if !self.is_on() {
            return;
        }
        self.io_retries += n;
    }

    /// Transient IO retries recorded so far.
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Attaches a hardware-counter session to this recorder: every
    /// subsequent coordinator span boundary attributes the PMU delta
    /// since the previous boundary to the span's stage (and partition,
    /// when named — see [`mod@hw`] for the attribution contract).
    ///
    /// Returns the degradation reason when counters are unavailable
    /// (non-Linux, containers, `perf_event_paranoid`); the recorder
    /// then behaves exactly as if the call never happened.
    pub fn enable_hw_counters(&mut self) -> Result<(), String> {
        if !self.is_on() {
            return Err("telemetry recording is disabled".to_string());
        }
        match hw::HwSession::open() {
            Ok(session) => {
                self.hw = Some(Box::new(session));
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Whether a hardware-counter session is attached.
    pub fn hw_enabled(&self) -> bool {
        self.hw.is_some()
    }

    /// Attributes the PMU delta since the last boundary to the sample
    /// stage *and* partition `pi`.  The engine's sequential sample loop
    /// calls this after each partition so per-partition counter rows
    /// exist on the path where one thread demonstrably did the work; a
    /// no-op without a session.
    #[inline]
    pub fn hw_partition_span(&mut self, pi: usize) {
        if let Some(hw) = self.hw.as_mut() {
            hw.attribute(Stage::Sample, pi as u32);
        }
    }

    /// Per-stage hardware counter deltas (indexed by [`Stage::index`]),
    /// when a session is attached.
    pub fn hw_stage_totals(&self) -> Option<&[HwCounters]> {
        self.hw.as_deref().map(|s| s.stages.as_slice())
    }

    /// Per-partition hardware counter deltas (sequential sample path),
    /// when a session is attached.
    pub fn hw_partition_counters(&self) -> Option<&[HwCounters]> {
        self.hw.as_deref().map(|s| s.partitions.as_slice())
    }

    /// Total attributed hardware counters, when a session is attached.
    pub fn hw_total(&self) -> Option<&HwCounters> {
        self.hw.as_deref().map(|s| &s.total)
    }

    /// The hardware events that actually opened (empty without a
    /// session).
    pub fn hw_events(&self) -> Vec<HwEvent> {
        self.hw.as_deref().map(|s| s.events()).unwrap_or_default()
    }

    /// Sum of per-partition step counters (must equal the engine's
    /// `steps_taken` for a traced run).
    pub fn partition_steps_total(&self) -> u64 {
        self.partitions.iter().map(|c| c.steps).sum()
    }

    /// Merges another recorder's events and counters into this one
    /// without double-counting: events keep their own pid tag (see
    /// [`export::write_chrome_trace`]), partition counters are summed
    /// index-wise, and histograms are bucket-summed.  Used by the NUMA
    /// paths, where per-socket recorders merge into one report.
    pub fn absorb(&mut self, other: Telemetry) {
        if !self.is_on() {
            return;
        }
        let mut other = other;
        other.drain_workers();
        for mut ev in other.events {
            // Preserve the other recorder's pid by encoding it in the
            // thread lane when pids differ: thread lanes are per-pid in
            // the TEF export, so shift foreign lanes past ours.
            if other.pid != self.pid {
                ev.thread |= (other.pid + 1) << 16;
            }
            self.note_stage(ev.stage, ev.dur_ns);
            if self.events.len() < self.event_capacity {
                self.events.push(ev);
            } else {
                self.dropped += 1;
            }
        }
        self.ensure_partitions(other.partitions.len());
        for (mine, theirs) in self.partitions.iter_mut().zip(&other.partitions) {
            mine.absorb(theirs);
        }
        self.occupancy.absorb(&other.occupancy);
        self.dropped += other.dropped;
        self.io_retries += other.io_retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stage: Stage, dur: u64) -> SpanEvent {
        SpanEvent {
            stage,
            start_ns: 0,
            dur_ns: dur,
            thread: 0,
            step: 0,
            partition: NO_PARTITION,
        }
    }

    #[test]
    fn spans_accumulate_per_stage() {
        let mut t = Telemetry::new();
        if !t.is_on() {
            return; // telemetry-off build
        }
        t.span(ev(Stage::Sample, 100));
        t.span(ev(Stage::Sample, 300));
        t.span(ev(Stage::Shuffle, 50));
        assert_eq!(t.stage(Stage::Sample).spans, 2);
        assert_eq!(t.stage(Stage::Sample).total_ns, 400);
        assert_eq!(t.stage(Stage::Shuffle).spans, 1);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut t = Telemetry::off();
        t.span(ev(Stage::Sample, 100));
        t.record_partition_step(3, 10, true);
        assert!(t.events().is_empty());
        assert_eq!(t.partition_steps_total(), 0);
        #[cfg(not(feature = "telemetry-off"))]
        {
            t.set_enabled(true);
            t.span(ev(Stage::Sample, 100));
            assert_eq!(t.events().len(), 1);
        }
    }

    #[test]
    fn partition_counters_attribute_policy() {
        let mut t = Telemetry::new();
        t.record_partition_step(0, 10, true);
        t.record_partition_step(1, 4, false);
        t.record_partition_step(0, 6, true);
        if !t.is_on() {
            return; // telemetry-off build
        }
        let c = t.partition_counters();
        assert_eq!(c[0].steps, 16);
        assert_eq!(c[0].ps_steps, 16);
        assert_eq!(c[0].ds_steps, 0);
        assert_eq!(c[0].max_occupancy, 10);
        assert_eq!(c[1].ds_steps, 4);
        assert_eq!(c[1].edge_bytes, 48);
        assert_eq!(t.partition_steps_total(), 20);
    }

    #[test]
    fn worker_lanes_drain_at_epoch_boundary() {
        let mut t = Telemetry::new();
        {
            let lanes = t.worker_lanes(2);
            lanes[0].record(ev(Stage::Sample, 5));
            lanes[1].record(ev(Stage::Sample, 7));
            lanes[1].record(ev(Stage::Shuffle, 9));
        }
        t.drain_workers();
        if !t.is_on() {
            return;
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.stage(Stage::Sample).spans, 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn worker_lane_overflow_counts_drops() {
        let mut log = WorkerLog::new(2);
        for _ in 0..5 {
            log.record(ev(Stage::Sample, 1));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn heartbeat_fires_on_interval() {
        let mut t = Telemetry::new();
        if !t.is_on() {
            return;
        }
        let fired = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let f = fired.clone();
        t.set_heartbeat(Duration::ZERO, move |p| {
            assert!(p.total_steps >= p.step);
            f.set(f.get() + 1);
        });
        t.tick(1, 10, 100);
        t.tick(2, 10, 200);
        assert_eq!(fired.get(), 2);
    }

    #[test]
    fn absorb_merges_without_double_counting() {
        let mut a = Telemetry::new().with_pid(0);
        let mut b = Telemetry::new().with_pid(1);
        a.record_partition_step(0, 10, true);
        b.record_partition_step(0, 5, false);
        b.span(ev(Stage::Sample, 42));
        a.absorb(b);
        if !a.is_on() {
            return;
        }
        assert_eq!(a.partition_counters()[0].steps, 15);
        assert_eq!(a.partition_steps_total(), 15);
        // The foreign event keeps socket attribution via its lane tag.
        assert_eq!(a.events().len(), 1);
        assert!(a.events()[0].thread >= 1 << 16);
    }
}
