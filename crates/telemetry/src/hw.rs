//! Hardware-counter attribution over the span stream.
//!
//! When a run opts in (`fmwalk walk --hw-counters`), the recorder opens
//! one per-thread [`fm_perfmon::CounterGroup`] on the coordinator and
//! reads it at every coordinator span boundary: the delta since the
//! previous read is attributed to the span's [`Stage`] (and, when the
//! span names one, its partition).  Because the coordinator's spans
//! tile the run back-to-back — sample, shuffle, output, checkpoint, in
//! order — this turns the existing span stream into a per-stage
//! cycles/instructions/LLC/dTLB breakdown with **no engine changes and
//! no extra reads when the session is absent** (the hot path costs one
//! `Option` check).
//!
//! Scope and honesty notes, mirrored in DESIGN.md §12:
//!
//! * Counters are per-thread.  In single-threaded runs (the default,
//!   and everything `cachecheck`/`bench-diff` measure) the coordinator
//!   *is* the whole walk.  In pooled runs, worker-thread work shows up
//!   only in the coordinator's dispatch wait, so per-stage deltas
//!   remain meaningful (the coordinator blocks inside the stage) while
//!   per-partition deltas are only recorded on the sequential path.
//! * Deltas include any coordinator work since the previous span
//!   boundary, so per-stage totals tile the timeline exactly — nothing
//!   is dropped, and unspanned gaps land in the next span's stage.

use crate::Stage;

pub use fm_perfmon::{HwCounters, HwEvent, PerfError};

/// An open counter session: the group plus running attribution tables.
pub(crate) struct HwSession {
    group: fm_perfmon::CounterGroup,
    last: fm_perfmon::Snapshot,
    /// Per-stage accumulated deltas, indexed by [`Stage::index`].
    pub(crate) stages: Vec<HwCounters>,
    /// Per-partition accumulated deltas (sequential sample path only).
    pub(crate) partitions: Vec<HwCounters>,
    /// Everything attributed so far.
    pub(crate) total: HwCounters,
}

impl std::fmt::Debug for HwSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwSession")
            .field("events", &self.group.available_events())
            .field("total", &self.total)
            .finish()
    }
}

impl HwSession {
    /// Opens and enables the standard group for the calling thread.
    pub(crate) fn open() -> Result<Self, PerfError> {
        let group = fm_perfmon::CounterGroup::standard()?;
        group.enable()?;
        let last = group.snapshot()?;
        Ok(Self {
            group,
            last,
            stages: vec![HwCounters::default(); Stage::ALL.len()],
            partitions: Vec::new(),
            total: HwCounters::default(),
        })
    }

    /// Reads the group and attributes the delta since the last read to
    /// `stage` (and to `partition` when it is not the sentinel).  Read
    /// failures are counted nowhere but never panic — a mid-run CPU
    /// hotplug should degrade, not kill the walk.
    pub(crate) fn attribute(&mut self, stage: Stage, partition: u32) {
        let Ok(delta) = self.group.delta_since(&mut self.last) else {
            return;
        };
        self.stages[stage.index()].add(&delta);
        self.total.add(&delta);
        if partition != crate::NO_PARTITION {
            let pi = partition as usize;
            if self.partitions.len() <= pi {
                self.partitions.resize(pi + 1, HwCounters::default());
            }
            self.partitions[pi].add(&delta);
        }
    }

    /// The events that actually opened on this host.
    pub(crate) fn events(&self) -> Vec<HwEvent> {
        self.group.available_events()
    }
}
