//! Log2-bucketed histograms: 64 buckets, O(1) record, zero allocation.

/// A 64-bucket log2 histogram of `u64` samples.
///
/// Bucket `b` counts samples whose value `v` satisfies
/// `2^(b-1) <= v < 2^b` (bucket 0 counts zeros), i.e. the bucket index
/// is the bit length of the value.  Recording is branch-light and
/// allocation-free, cheap enough for per-step use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist64 {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist64 {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist64 {
    /// Bucket index of a value: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound of bucket `b` (inclusive).
    pub fn bucket_low(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        // Bit length is at most 64; index 64 maps into the last bucket.
        let b = Self::bucket_of(v).min(63);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The raw bucket array.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Smallest upper-quantile bound: the lower edge of the bucket at or
    /// above which `1 - q` of the mass lies (a coarse but monotone
    /// log2-resolution quantile; 0 when empty).
    pub fn quantile_low(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(b);
            }
        }
        Self::bucket_low(63)
    }

    /// Bucket-wise sum with another histogram.
    pub fn absorb(&mut self, other: &Hist64) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low_bound, count)` pairs (for export).
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_low(b), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist64::bucket_of(0), 0);
        assert_eq!(Hist64::bucket_of(1), 1);
        assert_eq!(Hist64::bucket_of(2), 2);
        assert_eq!(Hist64::bucket_of(3), 2);
        assert_eq!(Hist64::bucket_of(4), 3);
        assert_eq!(Hist64::bucket_of(1023), 10);
        assert_eq!(Hist64::bucket_of(1024), 11);
        assert_eq!(Hist64::bucket_low(0), 0);
        assert_eq!(Hist64::bucket_low(1), 1);
        assert_eq!(Hist64::bucket_low(11), 1024);
    }

    #[test]
    fn record_tracks_stats() {
        let mut h = Hist64::default();
        for v in [0u64, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1104);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 220.8).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
    }

    #[test]
    fn empty_hist_is_nan_free() {
        let h = Hist64::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_low(0.99), 0);
        assert!(h.nonzero().is_empty());
    }

    #[test]
    fn extreme_values_saturate() {
        let mut h = Hist64::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[63], 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Hist64::default();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile_low(0.5);
        let q99 = h.quantile_low(0.99);
        assert!(q50 <= q99);
        assert!(q99 <= h.max());
    }

    #[test]
    fn absorb_sums_buckets() {
        let mut a = Hist64::default();
        let mut b = Hist64::default();
        a.record(5);
        b.record(5);
        b.record(100);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[3], 2);
        assert_eq!(a.max(), 100);
    }
}
