//! Minimal hand-rolled JSON: escaping, number formatting, and a small
//! recursive-descent parser.
//!
//! The workspace is deliberately zero-external-dep, so every crate that
//! emits machine-readable output shares these helpers instead of
//! scattering ad-hoc `format!` escapes.  The parser exists for the
//! in-tree Trace Event Format validator ([`crate::tef`]) and for tests
//! that round-trip exported documents; it is not a streaming parser and
//! is sized for trace files, not arbitrary hostile input.

use std::fmt::Write as _;

/// Escapes a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: finite values print plainly,
/// non-finite values degrade to `null` (JSON has no NaN/Infinity).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing zeros from a fixed formatting so output stays
        // stable across platforms.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_string()
        } else {
            s.to_string()
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        self.pos += b.is_some() as usize;
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(pairs)),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let len = if b >= 0xf0 {
                            4
                        } else if b >= 0xe0 {
                            3
                        } else {
                            2
                        };
                        let start = self.pos - 1;
                        let end = (start + len).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "bad UTF-8 in string")?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-ascii number at byte {start}"))?;
        raw.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_formats_cleanly() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(-2.25), "-2.25");
    }

    #[test]
    fn parse_round_trips_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"nested": "va\"lue"}, "c": true, "d": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("nested").unwrap().as_str(), Some("va\"lue"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn parse_escaped_and_unicode_strings() {
        let v = parse(r#""tab\there A end""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A end"));
        let v = parse("\"caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_then_parse_is_identity() {
        for s in ["simple", "qu\"ote", "back\\slash", "multi\nline\u{3}", "café"] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap().as_str(), Some(s), "{s:?}");
        }
    }
}
