//! A minimal Chrome Trace Event Format checker.
//!
//! Validates the subset of the TEF spec our exporter emits (and that
//! the viewers actually require): a JSON object with a `traceEvents`
//! array (or a bare array), where every event carries `name`, `ph`,
//! `ts`, `pid`, and `tid`, and complete (`"X"`) events also carry a
//! non-negative `dur`.  Used by the `fmwalk trace-check` subcommand and
//! the ci.sh telemetry tier so emitted traces are provably loadable.

use crate::json::{parse, Value};

/// Summary of a validated trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TefReport {
    /// Total events in the trace.
    pub events: usize,
    /// Events with phase `"X"` (complete spans).
    pub complete_events: usize,
    /// Distinct (pid, tid) lanes observed.
    pub lanes: usize,
}

/// Validates `text` as a Chrome Trace Event Format document.
///
/// Returns a [`TefReport`] on success, or a message naming the first
/// offending event on failure.
pub fn validate(text: &str) -> Result<TefReport, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(_) => doc
            .get("traceEvents")
            .ok_or("object form must contain a \"traceEvents\" key")?
            .as_arr()
            .ok_or("\"traceEvents\" must be an array")?,
        _ => return Err("top level must be an object or an array".into()),
    };
    let mut report = TefReport::default();
    let mut lanes = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: missing or invalid \"{field}\"");
        if !matches!(ev, Value::Obj(_)) {
            return Err(format!("event {i}: not an object"));
        }
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("ph"))?;
        let ts = ev
            .get("ts")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: ts must be finite and non-negative"));
        }
        let pid = ev
            .get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("tid"))?;
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("event {i}: complete (\"X\") event missing \"dur\""))?;
            if !dur.is_finite() || dur < 0.0 {
                return Err(format!("event {i}: dur must be finite and non-negative"));
            }
            report.complete_events += 1;
        }
        report.events += 1;
        let lane = (pid as i64, tid as i64);
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
    }
    report.lanes = lanes.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_object_form() {
        let doc = r#"{"traceEvents": [
            {"name": "sample", "ph": "X", "ts": 1.5, "dur": 2.0, "pid": 0, "tid": 1},
            {"name": "shuffle", "ph": "X", "ts": 4.0, "dur": 1.0, "pid": 0, "tid": 0}
        ], "displayTimeUnit": "ms"}"#;
        let r = validate(doc).unwrap();
        assert_eq!(r.events, 2);
        assert_eq!(r.complete_events, 2);
        assert_eq!(r.lanes, 2);
    }

    #[test]
    fn accepts_bare_array_form() {
        let doc = r#"[{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}]"#;
        let r = validate(doc).unwrap();
        assert_eq!(r.events, 1);
        assert_eq!(r.complete_events, 0);
    }

    #[test]
    fn accepts_empty_trace() {
        assert_eq!(validate(r#"{"traceEvents": []}"#).unwrap().events, 0);
    }

    #[test]
    fn rejects_missing_fields() {
        let no_ts = r#"[{"name": "a", "ph": "X", "dur": 1, "pid": 0, "tid": 0}]"#;
        assert!(validate(no_ts).unwrap_err().contains("ts"));
        let no_dur = r#"[{"name": "a", "ph": "X", "ts": 1, "pid": 0, "tid": 0}]"#;
        assert!(validate(no_dur).unwrap_err().contains("dur"));
        let no_name = r#"[{"ph": "X", "ts": 1, "dur": 1, "pid": 0, "tid": 0}]"#;
        assert!(validate(no_name).unwrap_err().contains("name"));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(validate("42").is_err());
        assert!(validate(r#"{"notTraceEvents": []}"#).is_err());
        assert!(validate(r#"{"traceEvents": "nope"}"#).is_err());
        assert!(validate(r#"[["not", "an", "object"]]"#).is_err());
        assert!(validate("{").is_err());
    }

    #[test]
    fn rejects_negative_times() {
        let doc = r#"[{"name": "a", "ph": "X", "ts": -1, "dur": 1, "pid": 0, "tid": 0}]"#;
        assert!(validate(doc).is_err());
        let doc = r#"[{"name": "a", "ph": "X", "ts": 1, "dur": -1, "pid": 0, "tid": 0}]"#;
        assert!(validate(doc).is_err());
    }
}
