//! Exporters: Chrome Trace Event Format, JSONL metrics, human summary.
//!
//! The Chrome Trace Event Format (TEF) output loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>: one complete
//! (`"ph": "X"`) event per recorded span, timestamps in microseconds,
//! with the walk step and vertex partition in `args`.  Thread lanes map
//! to `tid` (0 = coordinator, `t + 1` = pool worker `t`); NUMA-merged
//! recorders carry the originating socket in the lane's high bits, which
//! becomes the TEF `pid` so per-socket rows stay separate.

use crate::json::{escape, num};
use crate::{HwCounters, HwEvent, SpanEvent, Stage, Telemetry, NO_PARTITION, NO_STEP};
use std::io::{self, Write};

/// Renders one [`HwCounters`] as a JSON object (stable key order:
/// canonical event order, then the enabled/running times).
pub fn hw_counters_json(c: &HwCounters) -> String {
    let mut out = String::from("{");
    for ev in HwEvent::ALL {
        out.push_str(&format!("\"{}\": {}, ", ev.label(), c.get(ev)));
    }
    out.push_str(&format!(
        "\"time_enabled_ns\": {}, \"time_running_ns\": {}}}",
        c.time_enabled_ns, c.time_running_ns
    ));
    out
}

/// The TEF (pid, tid) lane of a span: foreign (absorbed) recorders tag
/// their pid into the thread lane's high bits, local spans use the
/// recorder's own pid.
fn lanes(tel: &Telemetry, ev: &SpanEvent) -> (u32, u32) {
    let hi = ev.thread >> 16;
    if hi != 0 {
        (hi - 1, ev.thread & 0xffff)
    } else {
        (tel.pid(), ev.thread)
    }
}

/// Writes the full trace as Chrome Trace Event Format JSON
/// (`{"traceEvents": [...]}`).
pub fn write_chrome_trace(w: &mut impl Write, tel: &Telemetry) -> io::Result<()> {
    writeln!(w, "{{\"traceEvents\": [")?;
    let mut first = true;
    for ev in tel.events() {
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        let (pid, tid) = lanes(tel, ev);
        write!(
            w,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{",
            escape(ev.stage.label()),
            escape(ev.stage.label()),
            num(ev.start_ns as f64 / 1000.0),
            num(ev.dur_ns as f64 / 1000.0),
            pid,
            tid,
        )?;
        let mut sep = "";
        if ev.step != NO_STEP {
            write!(w, "\"step\": {}", ev.step)?;
            sep = ", ";
        }
        if ev.partition != NO_PARTITION {
            write!(w, "{sep}\"partition\": {}", ev.partition)?;
        }
        write!(w, "}}}}")?;
    }
    // Per-stage hardware counter totals ride along as TEF counter
    // ("C") events so Perfetto renders them as tracks next to the
    // spans they were attributed across.
    if let Some(stages) = tel.hw_stage_totals() {
        let ts = num(tel.now_ns() as f64 / 1000.0);
        for stage in Stage::ALL {
            let c = &stages[stage.index()];
            if c.is_zero() {
                continue;
            }
            if !first {
                writeln!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "  {{\"name\": \"hw:{}\", \"cat\": \"hw\", \"ph\": \"C\", \"ts\": {}, \"pid\": {}, \"tid\": 0, \"args\": {}}}",
                escape(stage.label()),
                ts,
                tel.pid(),
                hw_counters_json(c),
            )?;
        }
    }
    if !first {
        writeln!(w)?;
    }
    writeln!(w, "], \"displayTimeUnit\": \"ms\"}}")?;
    Ok(())
}

/// Writes the metrics stream as JSONL: one `run` line, one line per
/// stage with spans, one line per partition with activity.
pub fn write_metrics_jsonl(w: &mut impl Write, tel: &Telemetry) -> io::Result<()> {
    writeln!(
        w,
        "{{\"kind\": \"run\", \"pid\": {}, \"events\": {}, \"dropped\": {}, \"partition_steps_total\": {}, \"occupancy_mean\": {}, \"occupancy_max\": {}, \"io_retries\": {}}}",
        tel.pid(),
        tel.events().len(),
        tel.dropped(),
        tel.partition_steps_total(),
        num(tel.occupancy_hist().mean()),
        tel.occupancy_hist().max(),
        tel.io_retries(),
    )?;
    for stage in Stage::ALL {
        let t = tel.stage(stage);
        if t.spans == 0 {
            continue;
        }
        write!(
            w,
            "{{\"kind\": \"stage\", \"stage\": \"{}\", \"spans\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"p99_low_ns\": {}, \"latency_buckets\": [",
            escape(stage.label()),
            t.spans,
            t.total_ns,
            num(t.latency.mean()),
            t.latency.max(),
            t.latency.quantile_low(0.99),
        )?;
        for (i, (low, count)) in t.latency.nonzero().iter().enumerate() {
            if i > 0 {
                write!(w, ", ")?;
            }
            write!(w, "[{low}, {count}]")?;
        }
        writeln!(w, "]}}")?;
    }
    for (pi, c) in tel.partition_counters().iter().enumerate() {
        if c.steps == 0 && c.edge_bytes == 0 {
            continue;
        }
        writeln!(
            w,
            "{{\"kind\": \"partition\", \"partition\": {}, \"steps\": {}, \"walkers_in\": {}, \"ps_steps\": {}, \"ds_steps\": {}, \"edge_bytes\": {}, \"max_occupancy\": {}, \"ring_occupancy\": {}, \"prefetch_issued\": {}}}",
            pi, c.steps, c.walkers_in, c.ps_steps, c.ds_steps, c.edge_bytes, c.max_occupancy,
            c.ring_occupancy, c.prefetch_issued,
        )?;
    }
    if let Some(total) = tel.hw_total() {
        write!(w, "{{\"kind\": \"hw_run\", \"events\": [")?;
        for (i, ev) in tel.hw_events().iter().enumerate() {
            if i > 0 {
                write!(w, ", ")?;
            }
            write!(w, "\"{}\"", ev.label())?;
        }
        writeln!(w, "], \"total\": {}}}", hw_counters_json(total))?;
        for stage in Stage::ALL {
            let c = &tel.hw_stage_totals().unwrap_or(&[])[stage.index()];
            if c.is_zero() {
                continue;
            }
            writeln!(
                w,
                "{{\"kind\": \"hw_stage\", \"stage\": \"{}\", \"counters\": {}}}",
                escape(stage.label()),
                hw_counters_json(c),
            )?;
        }
        for (pi, c) in tel
            .hw_partition_counters()
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            if c.is_zero() {
                continue;
            }
            writeln!(
                w,
                "{{\"kind\": \"hw_partition\", \"partition\": {}, \"counters\": {}}}",
                pi,
                hw_counters_json(c),
            )?;
        }
    }
    Ok(())
}

/// The telemetry block of the human `--stats` summary.
pub fn human_summary(tel: &Telemetry) -> String {
    let mut out = String::new();
    let traced_ns: u64 = Stage::ALL.iter().map(|&s| tel.stage(s).total_ns).sum();
    out.push_str(&format!(
        "telemetry: {} spans recorded ({} dropped), {} partitions active\n",
        tel.events().len(),
        tel.dropped(),
        tel.partition_counters().iter().filter(|c| c.steps > 0).count(),
    ));
    for stage in Stage::ALL {
        let t = tel.stage(stage);
        if t.spans == 0 {
            continue;
        }
        let share = if traced_ns > 0 {
            100.0 * t.total_ns as f64 / traced_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<8} {:>8} spans  {:>12} ns total ({:>5.1}% of traced)  mean {} ns  max {} ns\n",
            stage.label(),
            t.spans,
            t.total_ns,
            share,
            num(t.latency.mean()),
            t.latency.max(),
        ));
        out.push_str(&format!(
            "  {:<8} latency p50 >= {} ns, p99 >= {} ns\n",
            stage.label(),
            t.latency.quantile_low(0.50),
            t.latency.quantile_low(0.99),
        ));
    }
    if let Some(stages) = tel.hw_stage_totals() {
        let events = tel.hw_events();
        out.push_str(&format!(
            "  hw: {} counters attributed across coordinator span boundaries\n",
            events.len(),
        ));
        for stage in Stage::ALL {
            let c = &stages[stage.index()];
            if c.is_zero() {
                continue;
            }
            let ipc = c.ipc().map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into());
            let llc = c
                .llc_miss_rate()
                .map(|v| format!("{:.1}%", 100.0 * v))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  hw[{}]: {} cycles, {} instr (ipc {}), llc {}/{} ({} miss), dtlb {} miss\n",
                stage.label(),
                c.get(HwEvent::Cycles),
                c.get(HwEvent::Instructions),
                ipc,
                c.get(HwEvent::LlcMisses),
                c.get(HwEvent::LlcLoads),
                llc,
                c.get(HwEvent::DtlbMisses),
            ));
        }
        if let Some(frac) = tel.hw_total().and_then(|t| t.running_fraction()) {
            if frac < 0.999 {
                out.push_str(&format!(
                    "  hw: group multiplexed — counting {:.1}% of enabled time\n",
                    100.0 * frac,
                ));
            }
        }
    }
    if tel.io_retries() > 0 {
        out.push_str(&format!(
            "  io: {} transient retries absorbed by the recovery layer\n",
            tel.io_retries(),
        ));
    }
    let occ = tel.occupancy_hist();
    if occ.count() > 0 {
        out.push_str(&format!(
            "  occupancy: mean {} walkers/partition/step, max {}, p99 bucket >= {}\n",
            num(occ.mean()),
            occ.max(),
            occ.quantile_low(0.99),
        ));
    }
    let (ps, ds): (u64, u64) = tel
        .partition_counters()
        .iter()
        .fold((0, 0), |(p, d), c| (p + c.ps_steps, d + c.ds_steps));
    if ps + ds > 0 {
        out.push_str(&format!(
            "  policy: {} PS steps ({:.1}%), {} DS steps ({:.1}%)\n",
            ps,
            100.0 * ps as f64 / (ps + ds) as f64,
            ds,
            100.0 * ds as f64 / (ps + ds) as f64,
        ));
    }
    out
}

/// A single JSON object summarizing the recorder (stage totals +
/// partition aggregates), for embedding in machine-readable reports.
pub fn summary_json(tel: &Telemetry) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"events\": {}, \"dropped\": {}, \"partition_steps_total\": {}, \"stages\": {{",
        tel.events().len(),
        tel.dropped(),
        tel.partition_steps_total(),
    ));
    let mut first = true;
    for stage in Stage::ALL {
        let t = tel.stage(stage);
        if t.spans == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{}\": {{\"spans\": {}, \"total_ns\": {}, \"mean_ns\": {}}}",
            escape(stage.label()),
            t.spans,
            t.total_ns,
            num(t.latency.mean()),
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, tef, SpanEvent};

    fn traced() -> Telemetry {
        let mut t = Telemetry::new();
        t.span(SpanEvent {
            stage: Stage::Sample,
            start_ns: 1_000,
            dur_ns: 2_500,
            thread: 1,
            step: 0,
            partition: 3,
        });
        t.span(SpanEvent {
            stage: Stage::Shuffle,
            start_ns: 4_000,
            dur_ns: 1_000,
            thread: 0,
            step: 0,
            partition: NO_PARTITION,
        });
        t.record_partition_step(3, 7, true);
        t
    }

    #[test]
    fn chrome_trace_is_valid_tef() {
        let t = traced();
        if !t.is_on() {
            return;
        }
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let report = tef::validate(&text).expect("trace validates");
        assert_eq!(report.events, 2);
        assert_eq!(report.complete_events, 2);
    }

    #[test]
    fn chrome_trace_maps_lanes_and_args() {
        let t = traced();
        if !t.is_on() {
            return;
        }
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t).unwrap();
        let doc = json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let sample = &events[0];
        assert_eq!(sample.get("name").unwrap().as_str(), Some("sample"));
        assert_eq!(sample.get("ts").unwrap().as_num(), Some(1.0));
        assert_eq!(sample.get("dur").unwrap().as_num(), Some(2.5));
        assert_eq!(sample.get("tid").unwrap().as_num(), Some(1.0));
        assert_eq!(
            sample.get("args").unwrap().get("partition").unwrap().as_num(),
            Some(3.0)
        );
        // The sentinel partition is omitted from args.
        let shuffle = &events[1];
        assert!(shuffle.get("args").unwrap().get("partition").is_none());
    }

    #[test]
    fn absorbed_events_keep_socket_pid() {
        let mut a = Telemetry::new().with_pid(0);
        let mut b = Telemetry::new().with_pid(7);
        b.span(SpanEvent {
            stage: Stage::Sample,
            start_ns: 0,
            dur_ns: 10,
            thread: 2,
            step: NO_STEP,
            partition: NO_PARTITION,
        });
        a.absorb(b);
        if !a.is_on() {
            return;
        }
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &a).unwrap();
        let doc = json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let ev = &doc.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("pid").unwrap().as_num(), Some(7.0));
        assert_eq!(ev.get("tid").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn metrics_jsonl_lines_parse() {
        let t = traced();
        if !t.is_on() {
            return;
        }
        let mut buf = Vec::new();
        write_metrics_jsonl(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v = json::parse(line).expect("every line is standalone JSON");
            kinds.push(v.get("kind").unwrap().as_str().unwrap().to_string());
        }
        assert!(kinds.contains(&"run".to_string()));
        assert!(kinds.contains(&"stage".to_string()));
        assert!(kinds.contains(&"partition".to_string()));
    }

    #[test]
    fn human_summary_mentions_stages_and_policy() {
        let t = traced();
        if !t.is_on() {
            return;
        }
        let s = human_summary(&t);
        assert!(s.contains("sample"), "{s}");
        assert!(s.contains("shuffle"), "{s}");
        assert!(s.contains("PS steps"), "{s}");
        assert!(s.contains("% of traced"), "{s}");
    }

    #[test]
    fn summary_json_parses() {
        let t = traced();
        if !t.is_on() {
            return;
        }
        let v = json::parse(&summary_json(&t)).unwrap();
        assert_eq!(v.get("partition_steps_total").unwrap().as_num(), Some(7.0));
        assert!(v.get("stages").unwrap().get("sample").is_some());
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let t = Telemetry::new();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let report = tef::validate(&text).expect("empty trace validates");
        assert_eq!(report.events, 0);
        assert!(!human_summary(&t).contains("NaN"));
    }
}
