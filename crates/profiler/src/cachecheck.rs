//! Cross-validation of the cache model against hardware counters.
//!
//! The planner's cost curves (and PR 6's prefetch claims) lean on
//! `fm-memsim`'s software hierarchy.  `fmwalk cachecheck` asks the
//! obvious question: *does the simulator predict what the machine
//! actually does?*  For every cell of a synthetic-VP grid it drives the
//! **identical** sample-kernel invocation twice through
//! [`crate::micro::measure_point_probed`]:
//!
//! 1. **Predicted** — with a [`MemorySystem`] probe.  The cell is run
//!    once to prime the simulated hierarchy, then again; the stats
//!    delta of the second run is the steady-state prediction (LLC miss
//!    rate, DRAM fills per step).
//! 2. **Measured** — with a [`fm_memsim::NullProbe`] under a hardware
//!    [`fm_perfmon::CounterGroup`], reset after the warm-up round so
//!    setup stays out of the numbers.
//!
//! The per-cell divergence is `|predicted − measured|` LLC read miss
//! rate.  Both sides define the rate at the same boundary: accesses
//! that reached the last level, divided into hits and misses
//! (`l3.misses / (l3.hits + l3.misses)` vs `LLC-misses / LLC-loads`).
//!
//! On hosts without perf access (containers, most CI) the measured
//! side degrades: [`CachecheckReport::hw_reason`] carries the cause,
//! every cell's `hw` is `None`, and the caller renders a clearly
//! labeled simulation-only report — still useful as a committed record
//! of what the model predicts for this build.

use fm_memsim::{HierarchyConfig, MemorySystem, NullProbe};

use flashmob::partition::SamplePolicy;
use flashmob::sample::AddrMap;

use crate::micro::{measure_point_probed, ProfileGrid};

/// Disjoint simulated base addresses for the kernel's data structures
/// (mirrors the layout the engine hands `sample_partition`).
fn sim_addr_map() -> AddrMap {
    AddrMap {
        offsets: 0x1_0000_0000,
        targets: 0x2_0000_0000,
        slab_targets: 0x3_0000_0000,
        cum_weights: 0x4_0000_0000,
        ps_buf: 0x5_0000_0000,
        ps_cursor: 0x6_0000_0000,
        scur: 0x7_0000_0000,
        snext: 0x8_0000_0000,
        sprev: 0x9_0000_0000,
        edge_bloom: 0xa_0000_0000,
        edge_labels: 0xb_0000_0000,
    }
}

/// The measured (hardware) side of one cell, when counters opened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCell {
    /// `LLC-misses / LLC-loads`, when the PMU exposes both.
    pub llc_miss_rate: Option<f64>,
    /// LLC read misses per walker-step.
    pub llc_misses_per_step: f64,
    /// dTLB read misses per walker-step.
    pub dtlb_misses_per_step: f64,
    /// Instructions per cycle over the timed rounds.
    pub ipc: Option<f64>,
    /// Fraction of enabled time the group actually counted (< 1.0
    /// means the kernel multiplexed the group; treat rates as noisy).
    pub running_fraction: Option<f64>,
}

/// One grid cell: the simulator's prediction next to the hardware
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// VP size in vertices.
    pub vp_size: usize,
    /// Uniform vertex degree.
    pub degree: usize,
    /// Walkers per edge.
    pub density: f64,
    /// Sample policy exercised.
    pub policy: SamplePolicy,
    /// Walker-steps in the timed (second) simulation pass.
    pub steps: u64,
    /// Wall-clock nanoseconds per step of the hardware pass.
    pub ns_per_step: f64,
    /// Predicted LLC read miss rate (steady state).
    pub sim_llc_miss_rate: f64,
    /// Predicted DRAM line fills per walker-step.
    pub sim_fills_per_step: f64,
    /// Measured side; `None` when counters are unavailable.
    pub hw: Option<HwCell>,
}

impl CellResult {
    /// `|predicted − measured|` LLC miss rate, when both sides exist.
    pub fn divergence(&self) -> Option<f64> {
        let hw = self.hw.as_ref()?.llc_miss_rate?;
        Some((self.sim_llc_miss_rate - hw).abs())
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct CachecheckReport {
    /// Every measured cell, in sweep order.
    pub cells: Vec<CellResult>,
    /// Labels of the hardware events that opened (empty in
    /// simulation-only mode).
    pub hw_events: Vec<String>,
    /// `Some(reason)` when the hardware side degraded and the report is
    /// simulation-only.
    pub hw_reason: Option<String>,
}

impl CachecheckReport {
    /// Whether the hardware side ran.
    pub fn hw_ran(&self) -> bool {
        self.hw_reason.is_none()
    }

    /// Worst per-cell divergence, when any cell has both sides.
    pub fn max_divergence(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(CellResult::divergence)
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }
}

/// The default cachecheck grid: one walker density, both policies, a
/// VP-size × degree square spanning cache-resident to DRAM-bound.
pub fn default_grid(quick: bool) -> ProfileGrid {
    if quick {
        ProfileGrid {
            vp_sizes: vec![1024, 16384],
            degrees: vec![8, 64],
            densities: vec![1.0],
            min_steps: 40_000,
        }
    } else {
        ProfileGrid {
            vp_sizes: vec![1024, 8192, 65536, 262144],
            degrees: vec![4, 32, 128],
            densities: vec![1.0],
            min_steps: 400_000,
        }
    }
}

/// Runs the sweep: every `(vp_size, degree, density)` cell of `grid`
/// under both policies, simulated against `hierarchy` and measured
/// against the host PMU when available.
pub fn run(grid: &ProfileGrid, hierarchy: HierarchyConfig) -> CachecheckReport {
    let group = fm_perfmon::CounterGroup::standard();
    let (group, hw_reason) = match group {
        Ok(g) => {
            let _ = g.enable();
            (Some(g), None)
        }
        Err(e) => (None, Some(e.to_string())),
    };
    let hw_events = group
        .as_ref()
        .map(|g| {
            g.available_events()
                .into_iter()
                .map(|e| e.label().to_string())
                .collect()
        })
        .unwrap_or_default();

    let addr = sim_addr_map();
    let mut cells = Vec::new();
    for &s in &grid.vp_sizes {
        for &d in &grid.degrees {
            for &rho in &grid.densities {
                for policy in [SamplePolicy::PreSample, SamplePolicy::Direct] {
                    cells.push(run_cell(
                        s,
                        d,
                        rho,
                        policy,
                        grid.min_steps,
                        &hierarchy,
                        &addr,
                        group.as_ref(),
                    ));
                }
            }
        }
    }
    CachecheckReport {
        cells,
        hw_events,
        hw_reason,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    vp_size: usize,
    degree: usize,
    density: f64,
    policy: SamplePolicy,
    min_steps: usize,
    hierarchy: &HierarchyConfig,
    addr: &AddrMap,
    group: Option<&fm_perfmon::CounterGroup>,
) -> CellResult {
    // Predicted side: prime the simulated hierarchy with one full cell
    // run, then measure the stats delta of an identical second run —
    // compulsory misses stay in the priming pass, the delta is steady
    // state.
    let mut sys = MemorySystem::new(hierarchy.clone());
    measure_point_probed(
        vp_size, degree, density, policy, false, min_steps, &mut sys, addr, || {},
    );
    let before = sys.stats().clone();
    let (steps, _) = measure_point_probed(
        vp_size, degree, density, policy, false, min_steps, &mut sys, addr, || {},
    );
    let after = sys.stats().clone();
    let l3_hits = after.l3.hits - before.l3.hits;
    let l3_misses = after.l3.misses - before.l3.misses;
    let fills = after.dram_fill_lines - before.dram_fill_lines;
    let sim_llc_miss_rate = if l3_hits + l3_misses > 0 {
        l3_misses as f64 / (l3_hits + l3_misses) as f64
    } else {
        0.0
    };
    let sim_fills_per_step = fills as f64 / steps.max(1) as f64;

    // Measured side: the same invocation under NullProbe, counter group
    // reset right after the warm-up round.
    let mut hw = None;
    let mut hw_ns = f64::NAN;
    let mut hw_steps = steps;
    if let Some(g) = group {
        let mut snap = fm_perfmon::Snapshot::default();
        let (st, elapsed_ns) = measure_point_probed(
            vp_size,
            degree,
            density,
            policy,
            false,
            min_steps,
            &mut NullProbe,
            &AddrMap::default(),
            || {
                let _ = g.delta_since(&mut snap);
            },
        );
        hw_steps = st;
        hw_ns = elapsed_ns / st.max(1) as f64;
        if let Ok(delta) = g.delta_since(&mut snap) {
            hw = Some(HwCell {
                llc_miss_rate: delta.llc_miss_rate(),
                llc_misses_per_step: delta.get(fm_perfmon::HwEvent::LlcMisses) as f64
                    / st.max(1) as f64,
                dtlb_misses_per_step: delta.get(fm_perfmon::HwEvent::DtlbMisses) as f64
                    / st.max(1) as f64,
                ipc: delta.ipc(),
                running_fraction: delta.running_fraction(),
            });
        }
    }
    CellResult {
        vp_size,
        degree,
        density,
        policy,
        steps: hw_steps,
        ns_per_step: hw_ns,
        sim_llc_miss_rate,
        sim_fills_per_step,
        hw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The degradation contract, exercised end to end: on any host the
    /// sweep completes, and without perf access every cell is
    /// simulation-only with a stated reason.
    #[test]
    fn sweep_completes_on_any_host() {
        let grid = ProfileGrid {
            vp_sizes: vec![256],
            degrees: vec![4],
            densities: vec![1.0],
            min_steps: 2_000,
        };
        let report = run(&grid, HierarchyConfig::scaled(64));
        assert_eq!(report.cells.len(), 2); // PS + DS
        for cell in &report.cells {
            assert!(cell.steps > 0);
            assert!(cell.sim_llc_miss_rate >= 0.0 && cell.sim_llc_miss_rate <= 1.0);
            if report.hw_ran() {
                assert!(cell.hw.is_some());
            } else {
                assert!(cell.hw.is_none());
                assert!(report.hw_reason.as_deref().is_some_and(|r| !r.is_empty()));
            }
        }
    }

    /// A VP far beyond the (scaled-down) LLC must predict a higher miss
    /// rate than a cache-resident one — the monotonicity cachecheck
    /// exists to cross-validate.
    #[test]
    fn prediction_orders_resident_vs_thrashing() {
        let cfg = HierarchyConfig::scaled(64);
        let small = run_cell(
            256,
            4,
            1.0,
            SamplePolicy::Direct,
            4_000,
            &cfg,
            &sim_addr_map(),
            None,
        );
        let large = run_cell(
            65_536,
            4,
            1.0,
            SamplePolicy::Direct,
            4_000,
            &cfg,
            &sim_addr_map(),
            None,
        );
        assert!(
            large.sim_llc_miss_rate > small.sim_llc_miss_rate,
            "thrashing VP {} vs resident VP {}",
            large.sim_llc_miss_rate,
            small.sim_llc_miss_rate
        );
    }
}
