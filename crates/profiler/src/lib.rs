//! Offline machine profiling (paper Section 4.4, "Offline profiling for
//! profit calculation").
//!
//! FlashMob's planner needs the per-step sampling cost of a VP as a
//! function of `(VP size, average degree, walker density, policy)`.  The
//! paper's key insight is that under the streaming model this cost is
//! **machine-dependent but graph-independent**: a synthetic VP with the
//! same parameters behaves identically to a real one, so the profile is
//! collected once per machine and reused across graphs.
//!
//! This crate implements exactly that:
//!
//! * [`micro::measure_point`] times the *real* FlashMob sample kernel on
//!   a synthetic uniform-degree VP;
//! * [`micro::run_profile`] sweeps a parameter grid (the data behind the
//!   paper's Figure 6);
//! * [`table::ProfileTable`] interpolates the grid and implements
//!   `flashmob::cost::CostModel`, so the planner can run on measured
//!   numbers instead of the analytic model;
//! * profiles round-trip through a simple text format so the one-time
//!   cost (258 s on the paper's machine) is paid once.

pub mod cachecheck;
pub mod micro;
pub mod table;

pub use micro::{measure_point, measure_shuffle_ns, run_profile, ProfileGrid, ProfilePoint};
pub use table::ProfileTable;
