//! Micro-benchmarks timing the real sample kernel on synthetic VPs.

use std::time::Instant;

use fm_graph::{Csr, VertexId};
use fm_memsim::NullProbe;
use fm_rng::{Rng64, Xorshift64Star};

use flashmob::algorithm::{StopRule, WalkAlgorithm};
use flashmob::partition::PartitionMap;
use flashmob::partition::{Partition, SamplePolicy};
use flashmob::sample::{sample_partition, AddrMap, AlgoCtx, PsBuffers, TaskIo};
use flashmob::shuffle::{ShuffleAddrs, ShuffleScratch, Shuffler};

/// One measured grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// VP size in vertices.
    pub vp_size: usize,
    /// Uniform vertex degree of the synthetic VP.
    pub degree: usize,
    /// Walkers per edge.
    pub density: f64,
    /// Measured policy.
    pub policy: SamplePolicy,
    /// Whether the DS kernel used the offset-free fixed-degree layout.
    pub uniform_layout: bool,
    /// Measured nanoseconds per walker-step.
    pub ns_per_step: f64,
}

/// The parameter grid to sweep.
#[derive(Debug, Clone)]
pub struct ProfileGrid {
    /// VP sizes (vertices); powers of two recommended.
    pub vp_sizes: Vec<usize>,
    /// Uniform degrees.
    pub degrees: Vec<usize>,
    /// Walker densities.
    pub densities: Vec<f64>,
    /// Minimum walker-steps to time per cell (controls noise).
    pub min_steps: usize,
}

impl Default for ProfileGrid {
    fn default() -> Self {
        Self {
            vp_sizes: vec![256, 1024, 4096, 16384, 65536],
            degrees: vec![2, 8, 32, 128, 512],
            densities: vec![0.25, 1.0, 4.0],
            min_steps: 200_000,
        }
    }
}

impl ProfileGrid {
    /// A small grid for tests and CI (milliseconds per cell).
    pub fn tiny() -> Self {
        Self {
            vp_sizes: vec![256, 2048],
            degrees: vec![2, 32],
            densities: vec![0.5, 2.0],
            min_steps: 20_000,
        }
    }
}

/// Builds a synthetic uniform-degree VP: `s` vertices of degree `d`
/// whose targets point randomly within the VP (graph-independence is the
/// point — only size, degree, and density matter).
fn synthetic_vp(s: usize, d: usize, seed: u64) -> Csr {
    let mut rng = Xorshift64Star::new(seed);
    let mut offsets = Vec::with_capacity(s + 1);
    let mut targets = Vec::with_capacity(s * d);
    offsets.push(0usize);
    for _ in 0..s {
        for _ in 0..d {
            targets.push(rng.gen_index(s) as VertexId);
        }
        offsets.push(targets.len());
    }
    Csr::from_parts(offsets, targets, None).expect("synthetic VP is valid")
}

/// Times the real sample kernel for one grid cell.
///
/// Walkers are placed uniformly on the VP (`density * s * d` of them,
/// at least one) and the kernel is run repeatedly until `min_steps`
/// walker-steps have been timed.
pub fn measure_point(
    vp_size: usize,
    degree: usize,
    density: f64,
    policy: SamplePolicy,
    uniform_layout: bool,
    min_steps: usize,
) -> ProfilePoint {
    let (steps, elapsed_ns) = measure_point_probed(
        vp_size,
        degree,
        density,
        policy,
        uniform_layout,
        min_steps,
        &mut NullProbe,
        &AddrMap::default(),
        || {},
    );
    ProfilePoint {
        vp_size,
        degree,
        density,
        policy,
        uniform_layout,
        ns_per_step: elapsed_ns / steps.max(1) as f64,
    }
}

/// Drives the same synthetic cell as [`measure_point`] under an
/// arbitrary memory probe and address map, returning `(walker_steps,
/// elapsed_ns)` for the timed rounds.
///
/// This is the shared substrate of the profiler sweep and `fmwalk
/// cachecheck`: the *identical* kernel invocation is run once with a
/// `fm_memsim::MemorySystem` probe (predicted cache behavior) and once
/// with [`NullProbe`] under hardware counters (measured behavior), so
/// the two sides of the cross-validation cannot drift apart.
/// `before_timed` fires after the warm-up round, immediately before the
/// timed loop — the hardware pass uses it to reset its counter group so
/// setup and warm-up stay out of the measurement.
#[allow(clippy::too_many_arguments)]
pub fn measure_point_probed<P: fm_memsim::Probe>(
    vp_size: usize,
    degree: usize,
    density: f64,
    policy: SamplePolicy,
    uniform_layout: bool,
    min_steps: usize,
    probe: &mut P,
    addr: &AddrMap,
    before_timed: impl FnOnce(),
) -> (u64, f64) {
    let graph = synthetic_vp(vp_size, degree, 0xC0FFEE ^ vp_size as u64 ^ degree as u64);
    let (edges, uniform) = Partition::annotate(&graph, 0, vp_size as VertexId);
    debug_assert_eq!(uniform, Some(degree));
    let part = Partition {
        start: 0,
        end: vp_size as VertexId,
        policy,
        group: 0,
        edges,
        uniform_degree: uniform,
    };
    let slab = (policy == SamplePolicy::Direct && uniform_layout)
        .then(|| part.slab(&graph))
        .flatten();
    let mut ps = (policy == SamplePolicy::PreSample).then(|| PsBuffers::new(&graph, &part));

    let walkers = ((density * edges as f64) as usize).max(1);
    let mut rng = Xorshift64Star::new(7);
    let scur: Vec<VertexId> = (0..walkers)
        .map(|_| rng.gen_index(vp_size) as VertexId)
        .collect();
    let mut snext = vec![0 as VertexId; walkers];
    let ctx = AlgoCtx::new(WalkAlgorithm::DeepWalk, StopRule::FixedSteps(1), None);

    // Warm-up round (fills caches and PS buffers).
    let mut task_rng = Xorshift64Star::new(99);
    let io = TaskIo {
        scur: &scur,
        sprev: None,
        snext: &mut snext,
        slice_base: 0,
        visits: None,
    };
    sample_partition(
        &graph,
        &part,
        slab.as_ref(),
        ps.as_mut(),
        &ctx,
        io,
        &mut task_rng,
        probe,
        addr,
        1,
    );

    before_timed();
    let rounds = min_steps.div_ceil(walkers).max(1);
    let start = Instant::now();
    let mut steps = 0u64;
    for _ in 0..rounds {
        let io = TaskIo {
            scur: &scur,
            sprev: None,
            snext: &mut snext,
            slice_base: 0,
            visits: None,
        };
        steps += sample_partition(
            &graph,
            &part,
            slab.as_ref(),
            ps.as_mut(),
            &ctx,
            io,
            &mut task_rng,
            probe,
            addr,
            1,
        )
        .steps;
    }
    let elapsed = start.elapsed();
    std::hint::black_box(&snext);
    (steps, elapsed.as_nanos() as f64)
}

/// Sweeps the full grid for both policies (plus the DS slab layout when
/// the degree admits it), returning every measured point.
pub fn run_profile(grid: &ProfileGrid) -> Vec<ProfilePoint> {
    let mut out = Vec::new();
    for &s in &grid.vp_sizes {
        for &d in &grid.degrees {
            for &rho in &grid.densities {
                out.push(measure_point(
                    s,
                    d,
                    rho,
                    SamplePolicy::PreSample,
                    false,
                    grid.min_steps,
                ));
                out.push(measure_point(
                    s,
                    d,
                    rho,
                    SamplePolicy::Direct,
                    false,
                    grid.min_steps,
                ));
                out.push(measure_point(
                    s,
                    d,
                    rho,
                    SamplePolicy::Direct,
                    true,
                    grid.min_steps,
                ));
            }
        }
    }
    out
}

/// Measures the real per-walker cost of one shuffle level (count +
/// scatter + gather) at the given bin count.
pub fn measure_shuffle_ns(walkers: usize, bins: usize, rounds: usize) -> f64 {
    use flashmob::partition::SamplePolicy as SP;
    let n = bins * 16;
    let parts: Vec<Partition> = (0..bins)
        .map(|i| Partition {
            start: (i * 16) as VertexId,
            end: ((i + 1) * 16) as VertexId,
            policy: SP::Direct,
            group: 0,
            edges: 0,
            uniform_degree: None,
        })
        .collect();
    let map = PartitionMap::new(&parts, n);
    let shuffler = Shuffler::single_level(&map);
    let mut rng = Xorshift64Star::new(3);
    let w: Vec<VertexId> = (0..walkers).map(|_| rng.gen_index(n) as VertexId).collect();
    let mut sw = vec![0; walkers];
    let mut back = vec![0; walkers];
    let mut scratch = ShuffleScratch::default();
    let addrs = ShuffleAddrs::default();
    let start = Instant::now();
    for _ in 0..rounds {
        shuffler.count(&w, &mut scratch, addrs, &mut NullProbe);
        shuffler.scatter(&w, None, &mut sw, None, &mut scratch, addrs, &mut NullProbe);
        shuffler.gather(
            &w,
            &sw,
            &mut back,
            None,
            None,
            &mut scratch,
            addrs,
            &mut NullProbe,
        );
    }
    let elapsed = start.elapsed();
    std::hint::black_box(&back);
    elapsed.as_nanos() as f64 / (walkers * rounds) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_point_returns_sane_values() {
        let p = measure_point(512, 8, 1.0, SamplePolicy::Direct, false, 10_000);
        assert!(p.ns_per_step > 0.0 && p.ns_per_step < 100_000.0);
    }

    #[test]
    fn ps_point_runs_and_refills() {
        let p = measure_point(256, 16, 0.5, SamplePolicy::PreSample, false, 10_000);
        assert!(p.ns_per_step > 0.0);
    }

    #[test]
    fn slab_layout_not_slower_than_csr_for_tiny_degrees() {
        // At degree 2 the offsets array is half the working set; the
        // slab should never lose badly.  The bound is deliberately loose:
        // the suite runs on shared, possibly single-core CI machines
        // where wall-clock micro-measurements jitter by 2x.
        let best = |uniform: bool| {
            (0..3)
                .map(|_| measure_point(4096, 2, 2.0, SamplePolicy::Direct, uniform, 50_000))
                .map(|p| p.ns_per_step)
                .fold(f64::INFINITY, f64::min)
        };
        let csr = best(false);
        let slab = best(true);
        assert!(slab < csr * 2.0, "slab {slab} vs csr {csr}");
    }

    #[test]
    fn run_profile_covers_grid() {
        let grid = ProfileGrid {
            vp_sizes: vec![128],
            degrees: vec![4],
            densities: vec![1.0],
            min_steps: 2_000,
        };
        let points = run_profile(&grid);
        assert_eq!(points.len(), 3); // PS + DS-csr + DS-slab
    }

    #[test]
    fn shuffle_measurement_is_positive() {
        let ns = measure_shuffle_ns(10_000, 64, 3);
        assert!(ns > 0.0 && ns < 10_000.0);
    }
}
