//! Interpolating lookup over a measured profile.

use std::collections::BTreeSet;
use std::io::{BufRead, Write};

use flashmob::cost::CostModel;
use flashmob::partition::SamplePolicy;

use crate::micro::ProfilePoint;

/// A measured cost surface with trilinear interpolation in
/// `(log2 vp_size, log2 degree, density)`.
///
/// Implements [`CostModel`], so `FlashMob::with_cost_model` can plan
/// from measured data — the configuration path the paper uses.
#[derive(Debug, Clone)]
pub struct ProfileTable {
    vp_sizes: Vec<usize>,
    degrees: Vec<usize>,
    densities: Vec<f64>,
    /// `values[surface][i_vp][i_deg][i_rho]`; surfaces: 0 = PS,
    /// 1 = DS (CSR), 2 = DS (slab).
    values: Vec<Vec<Vec<Vec<f64>>>>,
    shuffle_ns: f64,
}

/// Errors from table construction / IO.
#[derive(Debug)]
pub enum TableError {
    /// The point set did not form a complete grid.
    IncompleteGrid {
        /// Human-readable description of the first hole.
        missing: String,
    },
    /// No points at all.
    Empty,
    /// Parse failure when loading.
    Parse(String),
    /// IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::IncompleteGrid { missing } => write!(f, "incomplete grid: {missing}"),
            TableError::Empty => write!(f, "no profile points"),
            TableError::Parse(m) => write!(f, "bad profile file: {m}"),
            TableError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

fn surface_of(policy: SamplePolicy, uniform: bool) -> usize {
    match (policy, uniform) {
        (SamplePolicy::PreSample, _) => 0,
        (SamplePolicy::Direct, false) => 1,
        (SamplePolicy::Direct, true) => 2,
    }
}

impl ProfileTable {
    /// Builds the table from a complete grid of measured points.
    pub fn from_points(points: &[ProfilePoint], shuffle_ns: f64) -> Result<Self, TableError> {
        if points.is_empty() {
            return Err(TableError::Empty);
        }
        let vp_sizes: Vec<usize> = points
            .iter()
            .map(|p| p.vp_size)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let degrees: Vec<usize> = points
            .iter()
            .map(|p| p.degree)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let densities: Vec<f64> = {
            let mut d: Vec<f64> = points.iter().map(|p| p.density).collect();
            d.sort_by(|a, b| a.partial_cmp(b).expect("finite densities"));
            d.dedup();
            d
        };
        let mut values =
            vec![vec![vec![vec![f64::NAN; densities.len()]; degrees.len()]; vp_sizes.len()]; 3];
        for p in points {
            let i = vp_sizes.binary_search(&p.vp_size).expect("member");
            let j = degrees.binary_search(&p.degree).expect("member");
            let k = densities
                .iter()
                .position(|&d| d == p.density)
                .expect("member");
            values[surface_of(p.policy, p.uniform_layout)][i][j][k] = p.ns_per_step;
        }
        for (si, surface) in values.iter().enumerate() {
            for (i, plane) in surface.iter().enumerate() {
                for (j, row) in plane.iter().enumerate() {
                    for (k, v) in row.iter().enumerate() {
                        if v.is_nan() {
                            return Err(TableError::IncompleteGrid {
                                missing: format!(
                                    "surface {si}, vp {}, degree {}, density {}",
                                    vp_sizes[i], degrees[j], densities[k]
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(Self {
            vp_sizes,
            degrees,
            densities,
            values,
            shuffle_ns,
        })
    }

    /// Grid axes (diagnostics).
    pub fn axes(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.vp_sizes, &self.degrees, &self.densities)
    }

    /// Serializes to a simple line-oriented text format.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), TableError> {
        writeln!(w, "flashmob-profile v1")?;
        writeln!(w, "shuffle_ns {}", self.shuffle_ns)?;
        for (si, surface) in self.values.iter().enumerate() {
            for (i, plane) in surface.iter().enumerate() {
                for (j, row) in plane.iter().enumerate() {
                    for (k, v) in row.iter().enumerate() {
                        writeln!(
                            w,
                            "{si} {} {} {} {v}",
                            self.vp_sizes[i], self.degrees[j], self.densities[k]
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads a table saved by [`ProfileTable::save`].
    pub fn load<R: BufRead>(r: R) -> Result<Self, TableError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| TableError::Parse("empty file".into()))??;
        if header.trim() != "flashmob-profile v1" {
            return Err(TableError::Parse(format!("bad header {header:?}")));
        }
        let shuffle_line = lines
            .next()
            .ok_or_else(|| TableError::Parse("missing shuffle_ns".into()))??;
        let shuffle_ns: f64 = shuffle_line
            .strip_prefix("shuffle_ns ")
            .ok_or_else(|| TableError::Parse("missing shuffle_ns".into()))?
            .trim()
            .parse()
            .map_err(|e| TableError::Parse(format!("bad shuffle_ns: {e}")))?;
        let mut points = Vec::new();
        for line in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let mut f = t.split_whitespace();
            let parse_err = || TableError::Parse(format!("bad line {t:?}"));
            let si: usize = f
                .next()
                .ok_or_else(parse_err)?
                .parse()
                .map_err(|_| parse_err())?;
            let vp: usize = f
                .next()
                .ok_or_else(parse_err)?
                .parse()
                .map_err(|_| parse_err())?;
            let dg: usize = f
                .next()
                .ok_or_else(parse_err)?
                .parse()
                .map_err(|_| parse_err())?;
            let rho: f64 = f
                .next()
                .ok_or_else(parse_err)?
                .parse()
                .map_err(|_| parse_err())?;
            let v: f64 = f
                .next()
                .ok_or_else(parse_err)?
                .parse()
                .map_err(|_| parse_err())?;
            let (policy, uniform) = match si {
                0 => (SamplePolicy::PreSample, false),
                1 => (SamplePolicy::Direct, false),
                2 => (SamplePolicy::Direct, true),
                _ => return Err(TableError::Parse(format!("bad surface {si}"))),
            };
            points.push(ProfilePoint {
                vp_size: vp,
                degree: dg,
                density: rho,
                policy,
                uniform_layout: uniform,
                ns_per_step: v,
            });
        }
        Self::from_points(&points, shuffle_ns)
    }

    /// Interpolated lookup for one surface.
    fn lookup(&self, surface: usize, vp: f64, degree: f64, density: f64) -> f64 {
        let (i0, i1, ti) = bracket_log(&self.vp_sizes, vp);
        let (j0, j1, tj) = bracket_log(&self.degrees, degree);
        let (k0, k1, tk) = bracket_lin(&self.densities, density);
        let v = &self.values[surface];
        let c = |i: usize, j: usize, k: usize| v[i][j][k];
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let jk = |i: usize| {
            lerp(
                lerp(c(i, j0, k0), c(i, j0, k1), tk),
                lerp(c(i, j1, k0), c(i, j1, k1), tk),
                tj,
            )
        };
        lerp(jk(i0), jk(i1), ti)
    }
}

/// Finds bracketing indices and interpolation weight on a log2 axis.
fn bracket_log(axis: &[usize], x: f64) -> (usize, usize, f64) {
    let x = x.max(1.0);
    let last = axis.len() - 1;
    if x <= axis[0] as f64 {
        return (0, 0, 0.0);
    }
    if x >= axis[last] as f64 {
        return (last, last, 0.0);
    }
    let hi = axis.partition_point(|&a| (a as f64) < x).min(last);
    let lo = hi - 1;
    let (a, b) = (axis[lo] as f64, axis[hi] as f64);
    let t = (x.log2() - a.log2()) / (b.log2() - a.log2());
    (lo, hi, t)
}

/// Linear-axis bracketing.
fn bracket_lin(axis: &[f64], x: f64) -> (usize, usize, f64) {
    let last = axis.len() - 1;
    if x <= axis[0] {
        return (0, 0, 0.0);
    }
    if x >= axis[last] {
        return (last, last, 0.0);
    }
    let hi = axis.partition_point(|&a| a < x).min(last);
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

impl CostModel for ProfileTable {
    fn sample_cost_ns(
        &self,
        vp_vertices: usize,
        avg_degree: f64,
        density: f64,
        policy: SamplePolicy,
        uniform: bool,
    ) -> f64 {
        self.lookup(
            surface_of(policy, uniform),
            vp_vertices as f64,
            avg_degree,
            density,
        )
    }

    fn shuffle_cost_ns(&self) -> f64 {
        self.shuffle_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<ProfilePoint> {
        let mut pts = Vec::new();
        for (si, policy, uniform) in [
            (0usize, SamplePolicy::PreSample, false),
            (1, SamplePolicy::Direct, false),
            (2, SamplePolicy::Direct, true),
        ] {
            for &vp in &[256usize, 1024] {
                for &dg in &[2usize, 32] {
                    for &rho in &[0.5f64, 2.0] {
                        pts.push(ProfilePoint {
                            vp_size: vp,
                            degree: dg,
                            density: rho,
                            policy,
                            uniform_layout: uniform,
                            // A recognizable synthetic function.
                            ns_per_step: (si + 1) as f64
                                * (vp as f64).log2()
                                * (dg as f64).log2().max(1.0)
                                / rho,
                        });
                    }
                }
            }
        }
        pts
    }

    #[test]
    fn exact_grid_points_round_trip() {
        let pts = grid_points();
        let t = ProfileTable::from_points(&pts, 3.0).unwrap();
        for p in &pts {
            let v = t.sample_cost_ns(
                p.vp_size,
                p.degree as f64,
                p.density,
                p.policy,
                p.uniform_layout,
            );
            assert!(
                (v - p.ns_per_step).abs() < 1e-9,
                "grid point should be exact: {v} vs {}",
                p.ns_per_step
            );
        }
        assert_eq!(t.shuffle_cost_ns(), 3.0);
    }

    #[test]
    fn interpolation_is_between_neighbors() {
        let t = ProfileTable::from_points(&grid_points(), 1.0).unwrap();
        let lo = t.sample_cost_ns(256, 2.0, 1.0, SamplePolicy::Direct, false);
        let hi = t.sample_cost_ns(1024, 2.0, 1.0, SamplePolicy::Direct, false);
        let mid = t.sample_cost_ns(512, 2.0, 1.0, SamplePolicy::Direct, false);
        let (a, b) = if lo < hi { (lo, hi) } else { (hi, lo) };
        assert!(mid >= a - 1e-9 && mid <= b + 1e-9, "{a} <= {mid} <= {b}");
    }

    #[test]
    fn out_of_range_clamps() {
        let t = ProfileTable::from_points(&grid_points(), 1.0).unwrap();
        let edge = t.sample_cost_ns(1024, 32.0, 2.0, SamplePolicy::PreSample, false);
        let beyond = t.sample_cost_ns(1 << 20, 4096.0, 100.0, SamplePolicy::PreSample, false);
        assert!((edge - beyond).abs() < 1e-9);
    }

    #[test]
    fn incomplete_grid_rejected() {
        let mut pts = grid_points();
        pts.pop();
        assert!(matches!(
            ProfileTable::from_points(&pts, 1.0),
            Err(TableError::IncompleteGrid { .. })
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let t = ProfileTable::from_points(&grid_points(), 2.5).unwrap();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let t2 = ProfileTable::load(&buf[..]).unwrap();
        assert_eq!(t.axes().0, t2.axes().0);
        let probe = t.sample_cost_ns(700, 11.0, 1.3, SamplePolicy::Direct, true);
        let probe2 = t2.sample_cost_ns(700, 11.0, 1.3, SamplePolicy::Direct, true);
        assert!((probe - probe2).abs() < 1e-9);
        assert_eq!(t2.shuffle_cost_ns(), 2.5);
    }

    #[test]
    fn bad_files_rejected() {
        assert!(ProfileTable::load(&b"nope"[..]).is_err());
        assert!(ProfileTable::load(&b"flashmob-profile v1\nshuffle_ns x\n"[..]).is_err());
        assert!(
            ProfileTable::load(&b"flashmob-profile v1\nshuffle_ns 1\n9 1 1 1 1\n"[..]).is_err()
        );
    }

    #[test]
    fn measured_profile_feeds_planner() {
        // End-to-end: tiny real measurement -> table -> FlashMob plan.
        let grid = crate::micro::ProfileGrid::tiny();
        let points = crate::micro::run_profile(&grid);
        let table = ProfileTable::from_points(&points, 2.0).unwrap();
        let g = fm_graph::synth::power_law(2000, 2.0, 1, 60, 5);
        let cfg = flashmob::WalkConfig::deepwalk()
            .walkers(1000)
            .steps(2)
            .planner(flashmob::PlannerParams {
                target_groups: 8,
                max_partitions: 64,
                min_vp_vertices: 16,
                ..flashmob::PlannerParams::default()
            });
        let engine = flashmob::FlashMob::with_cost_model(&g, cfg, &table).unwrap();
        let out = engine.run().unwrap();
        assert_eq!(out.paths().len(), 1000);
    }
}
