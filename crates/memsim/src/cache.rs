//! A set-associative LRU cache level.

/// One set-associative cache with LRU replacement.
///
/// Tags are full line addresses (no partial tag aliasing), which keeps the
/// simulator exact.  LRU state is a per-way logical timestamp.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Logical LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
}

const EMPTY: u64 = u64::MAX;

impl SetAssocCache {
    /// Builds a cache of `size_bytes` with the given line size and
    /// associativity.
    ///
    /// The set count is rounded down to a power of two (at least 1) so
    /// indexing is a mask, mirroring real hardware.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `size_bytes` is smaller than
    /// one way of lines.
    pub fn new(size_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(size_bytes > 0 && line_bytes > 0 && ways > 0);
        let lines = size_bytes / line_bytes;
        assert!(lines >= ways, "cache must hold at least one full set");
        let sets =
            (lines / ways).next_power_of_two() >> usize::from(!(lines / ways).is_power_of_two());
        let sets = sets.max(1);
        Self {
            sets,
            ways,
            tags: vec![EMPTY; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in lines.
    #[inline]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Looks up `line`; on a hit refreshes its LRU stamp.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, EMPTY);
        let s = self.set_of(line);
        let base = s * self.ways;
        self.clock += 1;
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.stamps[base + w] = self.clock;
                return true;
            }
        }
        false
    }

    /// Checks residency without touching LRU state.
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Inserts `line`, returning the evicted victim line if the set was
    /// full.  Inserting an already-resident line only refreshes it.
    #[inline]
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        debug_assert_ne!(line, EMPTY);
        let base = self.set_of(line) * self.ways;
        self.clock += 1;
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.ways {
            let t = self.tags[base + w];
            if t == line {
                self.stamps[base + w] = self.clock;
                return None;
            }
            if t == EMPTY {
                // Prefer empty ways outright.
                self.tags[base + w] = line;
                self.stamps[base + w] = self.clock;
                return None;
            }
            if self.stamps[base + w] < victim_stamp {
                victim_stamp = self.stamps[base + w];
                victim = w;
            }
        }
        let evicted = self.tags[base + victim];
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        Some(evicted)
    }

    /// Removes `line` if resident (used by the exclusive-LLC promotion
    /// path), returning whether it was present.
    #[inline]
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = self.set_of(line) * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w] == line {
                self.tags[base + w] = EMPTY;
                self.stamps[base + w] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
        self.clock = 0;
    }

    /// Number of resident lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(1024, 64, 4);
        assert!(!c.access(5));
        c.insert(5);
        assert!(c.access(5));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 4 sets x 2 ways; lines 0, 4, 8 all map to set 0.
        let mut c = SetAssocCache::new(8 * 64, 64, 2);
        assert_eq!(c.sets(), 4);
        c.insert(0);
        c.insert(4);
        c.access(0); // 0 is now more recent than 4
        let evicted = c.insert(8);
        assert_eq!(evicted, Some(4));
        assert!(c.contains(0));
        assert!(c.contains(8));
    }

    #[test]
    fn insert_resident_line_refreshes_without_eviction() {
        let mut c = SetAssocCache::new(2 * 64, 64, 2);
        c.insert(0);
        c.insert(1);
        assert_eq!(c.insert(0), None);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(1024, 64, 4);
        c.insert(7);
        assert!(c.invalidate(7));
        assert!(!c.contains(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn capacity_and_working_set() {
        let mut c = SetAssocCache::new(64 * 64, 64, 8);
        // Fill exactly to capacity: all lines resident, no evictions.
        for l in 0..c.capacity_lines() as u64 {
            assert_eq!(c.insert(l), None);
        }
        for l in 0..c.capacity_lines() as u64 {
            assert!(c.contains(l), "line {l} should be resident");
        }
        assert_eq!(c.resident_lines(), c.capacity_lines());
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = SetAssocCache::new(16 * 64, 64, 2);
        let span = c.capacity_lines() as u64 * 4;
        // Two sequential sweeps over 4x capacity: second sweep still
        // misses everywhere under LRU.
        let mut misses = 0;
        for _ in 0..2 {
            for l in 0..span {
                if !c.access(l) {
                    misses += 1;
                    c.insert(l);
                }
            }
        }
        assert_eq!(misses, 2 * span as usize);
    }

    #[test]
    fn flush_empties() {
        let mut c = SetAssocCache::new(1024, 64, 4);
        c.insert(1);
        c.insert(2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_ways_panics() {
        let _ = SetAssocCache::new(1024, 64, 0);
    }
}
