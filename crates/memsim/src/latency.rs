//! Pattern- and level-dependent load latency model.

use crate::{AccessKind, Level};

/// Load latency (nanoseconds) for every (pattern, level) pair.
///
/// The default values are the paper's Table 1 measurements on a Xeon
/// Gold 6126.  The pattern dimension implicitly models hardware
/// prefetching and memory-level parallelism: a *sequential* access that
/// misses to DRAM costs 0.76 ns because the prefetcher has already
/// streamed the line, while a *pointer-chasing* DRAM access costs
/// 116.9 ns because nothing can overlap it.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// `ns[kind][level]` in [`AccessKind::ALL`] x [`Level::ALL`] order.
    ns: [[f64; 5]; 3],
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::table1()
    }
}

impl LatencyModel {
    /// The paper's Table 1 (Xeon Gold 6126, dual socket).
    pub fn table1() -> Self {
        Self {
            ns: [
                // Sequential read: L1, L2, L3, LocalMem, RemoteMem.
                [0.42, 0.41, 0.44, 0.76, 1.51],
                // Random read.
                [0.77, 0.95, 2.60, 18.35, 24.35],
                // Pointer-chasing.
                [1.69, 5.26, 19.26, 116.90, 194.26],
            ],
        }
    }

    /// Builds a model from explicit values (testing / other machines).
    pub fn from_rows(sequential: [f64; 5], random: [f64; 5], chase: [f64; 5]) -> Self {
        Self {
            ns: [sequential, random, chase],
        }
    }

    /// Latency in nanoseconds for one load.
    #[inline]
    pub fn ns(&self, kind: AccessKind, level: Level) -> f64 {
        let k = match kind {
            AccessKind::Sequential => 0,
            AccessKind::Random => 1,
            AccessKind::PointerChase => 2,
        };
        let l = match level {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::L3 => 2,
            Level::LocalMem => 3,
            Level::RemoteMem => 4,
        };
        self.ns[k][l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let m = LatencyModel::table1();
        assert_eq!(m.ns(AccessKind::Sequential, Level::L1), 0.42);
        assert_eq!(m.ns(AccessKind::Random, Level::LocalMem), 18.35);
        assert_eq!(m.ns(AccessKind::PointerChase, Level::RemoteMem), 194.26);
    }

    #[test]
    fn latency_grows_down_the_hierarchy_for_random() {
        let m = LatencyModel::table1();
        let mut prev = 0.0;
        for level in Level::ALL {
            let ns = m.ns(AccessKind::Random, level);
            assert!(ns >= prev);
            prev = ns;
        }
    }

    #[test]
    fn pointer_chase_in_l3_slower_than_random_dram_gap_is_preserved() {
        // The paper's observation: pointer chasing within L3 (19.26 ns)
        // exceeds simple random DRAM reads (18.35 ns).
        let m = LatencyModel::table1();
        assert!(
            m.ns(AccessKind::PointerChase, Level::L3) > m.ns(AccessKind::Random, Level::LocalMem)
        );
    }

    #[test]
    fn custom_rows_round_trip() {
        let m = LatencyModel::from_rows([1.0; 5], [2.0; 5], [3.0; 5]);
        assert_eq!(m.ns(AccessKind::Random, Level::L3), 2.0);
    }
}
