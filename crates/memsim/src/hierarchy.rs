//! The three-level cache hierarchy plus NUMA DRAM model.

use crate::cache::SetAssocCache;
use crate::latency::LatencyModel;
use crate::{AccessKind, Level, Probe};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

/// How the last-level cache relates to the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcPolicy {
    /// Broadwell-style: fills propagate into both L2 and L3; L3 is a
    /// superset of L2.
    Inclusive,
    /// Skylake-style victim cache: fills go straight to L2; the L3 only
    /// receives lines evicted from L2 and forgets lines promoted back.
    Exclusive,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// L3 (LLC) geometry; under multi-core runs pass the per-core slice.
    pub l3: CacheGeometry,
    /// LLC management policy.
    pub llc_policy: LlcPolicy,
    /// Load latencies.
    pub latency: LatencyModel,
    /// Simulated-address boundary: addresses at or above it live on the
    /// remote socket.  `u64::MAX` disables NUMA (everything local).
    pub remote_boundary: u64,
}

impl HierarchyConfig {
    /// The paper's test platform: Xeon Gold 6126 (Skylake-SP) — 32 KiB
    /// 8-way L1, 1 MiB 16-way L2, 19.25 MiB 11-way shared exclusive L3.
    pub fn skylake_server() -> Self {
        Self {
            line_bytes: 64,
            l1: CacheGeometry {
                size_bytes: 32 << 10,
                ways: 8,
            },
            l2: CacheGeometry {
                size_bytes: 1 << 20,
                ways: 16,
            },
            l3: CacheGeometry {
                size_bytes: 19 << 20,
                ways: 11,
            },
            llc_policy: LlcPolicy::Exclusive,
            latency: LatencyModel::table1(),
            remote_boundary: u64::MAX,
        }
    }

    /// The prior-generation Broadwell design the paper contrasts against:
    /// small 256 KiB L2, large inclusive L3.
    pub fn broadwell_server() -> Self {
        Self {
            line_bytes: 64,
            l1: CacheGeometry {
                size_bytes: 32 << 10,
                ways: 8,
            },
            l2: CacheGeometry {
                size_bytes: 256 << 10,
                ways: 8,
            },
            l3: CacheGeometry {
                size_bytes: 30 << 20,
                ways: 20,
            },
            llc_policy: LlcPolicy::Inclusive,
            latency: LatencyModel::table1(),
            remote_boundary: u64::MAX,
        }
    }

    /// A scaled-down hierarchy matched to the repository's scaled-down
    /// analog graphs, so cache-residency crossovers appear at the same
    /// *relative* working-set sizes as on the paper's server.
    pub fn scaled(divisor: usize) -> Self {
        let mut c = Self::skylake_server();
        let d = divisor.max(1);
        c.l1.size_bytes = (c.l1.size_bytes / d).max(c.line_bytes * c.l1.ways);
        c.l2.size_bytes = (c.l2.size_bytes / d).max(c.line_bytes * c.l2.ways);
        c.l3.size_bytes = (c.l3.size_bytes / d).max(c.line_bytes * c.l3.ways);
        c
    }

    /// Enables the NUMA split at the given simulated-address boundary.
    pub fn with_remote_boundary(mut self, boundary: u64) -> Self {
        self.remote_boundary = boundary;
        self
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses satisfied at this level.
    pub hits: u64,
    /// Accesses that had to continue past this level.
    pub misses: u64,
}

/// Aggregated counters for a simulated run.
#[derive(Debug, Clone, Default)]
pub struct MemoryStats {
    /// Per-level hit/miss counts (L1, L2, L3).
    pub l1: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
    /// L3 counters.
    pub l3: LevelStats,
    /// Lines transferred from DRAM (fills).
    pub dram_fill_lines: u64,
    /// Lines written back toward DRAM (dirty evictions are approximated
    /// as all stores that leave the hierarchy).
    pub dram_writeback_lines: u64,
    /// Loads satisfied from local vs remote DRAM.
    pub local_mem_loads: u64,
    /// Remote-socket DRAM loads.
    pub remote_mem_loads: u64,
    /// Estimated data-bound time in nanoseconds, per level.
    pub bound_ns: BoundNs,
    /// Total simulated accesses.
    pub accesses: u64,
    /// Walker-steps recorded via [`Probe::step`].
    pub steps: u64,
    /// Lines hinted via [`Probe::prefetch`] (already-cached hints
    /// included).  Prefetches are not demand accesses: they are counted
    /// here only and never in `accesses` or the per-level hit/miss
    /// counters, so hit rates stay comparable across ring depths.
    pub prefetch_lines: u64,
    /// Prefetched lines that were absent from every level and had to be
    /// filled from DRAM.  Tracked separately from `dram_fill_lines` so
    /// demand traffic remains attributable on its own.
    pub prefetch_dram_fills: u64,
}

/// Estimated stall attribution, VTune-style.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundNs {
    /// Time attributed to L1 hits.
    pub l1: f64,
    /// Time attributed to L2 hits.
    pub l2: f64,
    /// Time attributed to L3 hits.
    pub l3: f64,
    /// Time attributed to DRAM (local + remote).
    pub dram: f64,
}

impl MemoryStats {
    /// DRAM traffic in bytes (fills + writebacks) per walker-step.
    pub fn dram_bytes_per_step(&self, line_bytes: usize) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        ((self.dram_fill_lines + self.dram_writeback_lines) * line_bytes as u64) as f64
            / self.steps as f64
    }

    /// Total estimated data-bound nanoseconds.
    pub fn total_bound_ns(&self) -> f64 {
        self.bound_ns.l1 + self.bound_ns.l2 + self.bound_ns.l3 + self.bound_ns.dram
    }

    /// Per-step counter helper.
    pub fn per_step(&self, count: u64) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            count as f64 / self.steps as f64
        }
    }
}

/// A simulated L1/L2/L3 + DRAM memory system implementing [`Probe`].
///
/// # Examples
///
/// ```
/// use fm_memsim::{AccessKind, HierarchyConfig, MemorySystem, Probe};
///
/// let mut mem = MemorySystem::new(HierarchyConfig::skylake_server());
/// mem.touch(0x1000, 8, AccessKind::Random); // cold: DRAM
/// mem.touch(0x1000, 8, AccessKind::Random); // warm: L1
/// assert_eq!(mem.stats().l1.hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    stats: MemoryStats,
    line_shift: u32,
}

impl MemorySystem {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two());
        let lb = config.line_bytes;
        Self {
            l1: SetAssocCache::new(config.l1.size_bytes, lb, config.l1.ways),
            l2: SetAssocCache::new(config.l2.size_bytes, lb, config.l2.ways),
            l3: SetAssocCache::new(config.l3.size_bytes, lb, config.l3.ways),
            line_shift: lb.trailing_zeros(),
            stats: MemoryStats::default(),
            config,
        }
    }

    /// Read-only view of the accumulated counters.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Clears counters but keeps cache contents (for warm-up phases).
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }

    /// Flushes all cache levels and counters.
    pub fn reset_all(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.reset_stats();
    }

    fn dram_level(&self, addr: u64) -> Level {
        if addr >= self.config.remote_boundary {
            Level::RemoteMem
        } else {
            Level::LocalMem
        }
    }

    /// Simulates one line-granular access; returns the satisfying level.
    fn access_line(&mut self, line: u64, addr: u64, is_write: bool) -> Level {
        if self.l1.access(line) {
            self.stats.l1.hits += 1;
            return Level::L1;
        }
        self.stats.l1.misses += 1;

        if self.l2.access(line) {
            self.stats.l2.hits += 1;
            self.fill_l1(line);
            return Level::L2;
        }
        self.stats.l2.misses += 1;

        if self.l3.access(line) {
            self.stats.l3.hits += 1;
            if self.config.llc_policy == LlcPolicy::Exclusive {
                // Promote to L2; the line leaves the victim L3.
                self.l3.invalidate(line);
            }
            self.fill_l2(line);
            self.fill_l1(line);
            return Level::L3;
        }
        self.stats.l3.misses += 1;

        // DRAM fill.
        self.stats.dram_fill_lines += 1;
        if is_write {
            // Write-allocate; the line will eventually be written back.
            self.stats.dram_writeback_lines += 1;
        }
        let level = self.dram_level(addr);
        match level {
            Level::RemoteMem => self.stats.remote_mem_loads += 1,
            _ => self.stats.local_mem_loads += 1,
        }
        match self.config.llc_policy {
            LlcPolicy::Inclusive => {
                self.fill_l3(line);
                self.fill_l2_inclusive(line);
                self.fill_l1(line);
            }
            LlcPolicy::Exclusive => {
                // Skylake: fills bypass the L3 entirely.
                self.fill_l2(line);
                self.fill_l1(line);
            }
        }
        level
    }

    #[inline]
    fn fill_l1(&mut self, line: u64) {
        // L1 victims fall into L2 under both policies (L2 is inclusive of
        // nothing in particular; we approximate by inserting the victim).
        if let Some(victim) = self.l1.insert(line) {
            self.l2.insert(victim);
        }
    }

    #[inline]
    fn fill_l2(&mut self, line: u64) {
        if let Some(victim) = self.l2.insert(line) {
            // Exclusive LLC: L2 victims land in the L3 victim cache.
            self.l3.insert(victim);
        }
    }

    #[inline]
    fn fill_l2_inclusive(&mut self, line: u64) {
        // Inclusive LLC: L2 victims are already in L3; drop them.
        let _ = self.l2.insert(line);
    }

    #[inline]
    fn fill_l3(&mut self, line: u64) {
        let _ = self.l3.insert(line);
    }

    /// Installs one line in response to a software-prefetch hint.
    ///
    /// The line is placed exactly where a demand fill would put it, but
    /// no demand counters (hits, misses, `accesses`, latency) move: a
    /// prefetch overlaps with execution instead of stalling it, so its
    /// cost shows up only as `prefetch_dram_fills` traffic.  A later
    /// demand load of the same line then scores an honest L1 hit —
    /// which is precisely the attribution the ring experiments need.
    fn prefetch_line(&mut self, line: u64) {
        self.stats.prefetch_lines += 1;
        if self.l1.contains(line) || self.l2.contains(line) || self.l3.contains(line) {
            return;
        }
        self.stats.prefetch_dram_fills += 1;
        match self.config.llc_policy {
            LlcPolicy::Inclusive => {
                self.fill_l3(line);
                self.fill_l2_inclusive(line);
                self.fill_l1(line);
            }
            LlcPolicy::Exclusive => {
                self.fill_l2(line);
                self.fill_l1(line);
            }
        }
    }

    fn record(&mut self, addr: u64, bytes: u32, kind: AccessKind, is_write: bool) {
        // Split the access into its covered cache lines (usually one).
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        for line in first..=last {
            self.stats.accesses += 1;
            let level = self.access_line(line, addr, is_write);
            let ns = self.config.latency.ns(kind, level);
            match level {
                Level::L1 => self.stats.bound_ns.l1 += ns,
                Level::L2 => self.stats.bound_ns.l2 += ns,
                Level::L3 => self.stats.bound_ns.l3 += ns,
                Level::LocalMem | Level::RemoteMem => self.stats.bound_ns.dram += ns,
            }
        }
    }
}

impl Probe for MemorySystem {
    #[inline]
    fn touch(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        self.record(addr, bytes, kind, false);
    }

    #[inline]
    fn touch_write(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        self.record(addr, bytes, kind, true);
    }

    #[inline]
    fn step(&mut self) {
        self.stats.steps += 1;
    }

    #[inline]
    fn prefetch(&mut self, addr: u64, bytes: u32) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        for line in first..=last {
            self.prefetch_line(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: LlcPolicy) -> MemorySystem {
        let mut cfg = HierarchyConfig::skylake_server();
        cfg.l1 = CacheGeometry {
            size_bytes: 4 * 64,
            ways: 2,
        };
        cfg.l2 = CacheGeometry {
            size_bytes: 16 * 64,
            ways: 4,
        };
        cfg.l3 = CacheGeometry {
            size_bytes: 64 * 64,
            ways: 8,
        };
        cfg.llc_policy = policy;
        MemorySystem::new(cfg)
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_l1() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x1000, 8, AccessKind::Random);
        assert_eq!(m.stats().dram_fill_lines, 1);
        m.touch(0x1000, 8, AccessKind::Random);
        assert_eq!(m.stats().l1.hits, 1);
    }

    #[test]
    fn exclusive_llc_holds_only_l2_victims() {
        let mut m = tiny(LlcPolicy::Exclusive);
        // First touch of a line fills L1+L2 but NOT L3 (Skylake).
        m.touch(0x1000, 8, AccessKind::Random);
        let line = 0x1000u64 >> 6;
        assert!(!m.l3.contains(line));
        assert!(m.l2.contains(line));
    }

    #[test]
    fn inclusive_llc_holds_all_fills() {
        let mut m = tiny(LlcPolicy::Inclusive);
        m.touch(0x1000, 8, AccessKind::Random);
        let line = 0x1000u64 >> 6;
        assert!(m.l3.contains(line));
        assert!(m.l2.contains(line));
    }

    #[test]
    fn exclusive_l3_hit_promotes_and_removes() {
        let mut m = tiny(LlcPolicy::Exclusive);
        let line = 0x2000u64 >> 6;
        m.l3.insert(line);
        m.touch(0x2000, 8, AccessKind::Random);
        assert_eq!(m.stats().l3.hits, 1);
        assert!(!m.l3.contains(line), "exclusive hit must leave L3");
        assert!(m.l1.contains(line));
    }

    #[test]
    fn working_set_fitting_l2_hits_l2_after_warmup() {
        let mut m = tiny(LlcPolicy::Exclusive);
        // Working set of 12 lines: > L1 (4 lines), <= L2 (16 lines).
        let addrs: Vec<u64> = (0..12).map(|i| 0x10_0000 + i * 64).collect();
        for &a in &addrs {
            m.touch(a, 8, AccessKind::Random);
        }
        m.reset_stats();
        for _ in 0..10 {
            for &a in &addrs {
                m.touch(a, 8, AccessKind::Random);
            }
        }
        let s = m.stats();
        assert_eq!(s.dram_fill_lines, 0, "steady state should not touch DRAM");
        assert!(s.l1.hits + s.l2.hits + s.l3.hits == s.accesses);
    }

    #[test]
    fn remote_boundary_classifies_numa() {
        let cfg = HierarchyConfig::skylake_server().with_remote_boundary(0x8000_0000);
        let mut m = MemorySystem::new(cfg);
        m.touch(0x1000, 8, AccessKind::Random);
        m.touch(0x9000_0000, 8, AccessKind::Random);
        assert_eq!(m.stats().local_mem_loads, 1);
        assert_eq!(m.stats().remote_mem_loads, 1);
    }

    #[test]
    fn sequential_dram_time_is_cheap() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x40_0000, 8, AccessKind::Sequential);
        let seq_ns = m.stats().bound_ns.dram;
        m.reset_all();
        m.touch(0x40_0000, 8, AccessKind::Random);
        let rand_ns = m.stats().bound_ns.dram;
        assert!(seq_ns < rand_ns / 10.0, "{seq_ns} vs {rand_ns}");
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x1000, 256, AccessKind::Sequential); // 4 lines
        assert_eq!(m.stats().accesses, 4);
        assert_eq!(m.stats().dram_fill_lines, 4);
    }

    #[test]
    fn writes_count_writeback_traffic() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch_write(0x1000, 8, AccessKind::Sequential);
        assert_eq!(m.stats().dram_writeback_lines, 1);
    }

    #[test]
    fn steps_normalize_counters() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x1000, 8, AccessKind::Random);
        m.step();
        m.step();
        assert_eq!(m.stats().per_step(m.stats().accesses), 0.5);
        assert_eq!(m.stats().dram_bytes_per_step(64), 32.0);
    }

    #[test]
    fn prefetch_installs_line_without_demand_counters() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.prefetch(0x1000, 8);
        let s = m.stats();
        assert_eq!(s.prefetch_lines, 1);
        assert_eq!(s.prefetch_dram_fills, 1);
        assert_eq!(s.accesses, 0, "prefetch is not a demand access");
        assert_eq!(s.dram_fill_lines, 0, "prefetch traffic is separate");
        assert_eq!(s.l1.hits + s.l1.misses, 0);

        // The next demand load of the same line is an L1 hit.
        m.touch(0x1000, 8, AccessKind::Random);
        assert_eq!(m.stats().l1.hits, 1);
        assert_eq!(m.stats().dram_fill_lines, 0);
    }

    #[test]
    fn prefetch_of_cached_line_fills_nothing() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x1000, 8, AccessKind::Random);
        m.prefetch(0x1000, 8);
        assert_eq!(m.stats().prefetch_lines, 1);
        assert_eq!(m.stats().prefetch_dram_fills, 0);
    }

    #[test]
    fn prefetch_spans_every_covered_line() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.prefetch(0x1000, 256); // 4 lines
        assert_eq!(m.stats().prefetch_lines, 4);
        assert_eq!(m.stats().prefetch_dram_fills, 4);
    }

    #[test]
    fn stats_reset_preserves_cache_contents() {
        let mut m = tiny(LlcPolicy::Exclusive);
        m.touch(0x1000, 8, AccessKind::Random);
        m.reset_stats();
        m.touch(0x1000, 8, AccessKind::Random);
        assert_eq!(m.stats().l1.hits, 1);
        assert_eq!(m.stats().dram_fill_lines, 0);
    }
}
