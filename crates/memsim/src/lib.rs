//! A software memory-hierarchy simulator.
//!
//! The paper attributes its results to cache behaviour measured with
//! `perf` and Intel VTune on a dual-socket Skylake server (Figure 1b,
//! Table 1, Table 5, Figure 12).  Hardware counters are not portable, so
//! this crate substitutes a deterministic simulator:
//!
//! * [`cache::SetAssocCache`] — an LRU set-associative cache level.
//! * [`hierarchy::MemorySystem`] — a three-level hierarchy with either
//!   *inclusive* (Broadwell-style) or *exclusive victim* (Skylake-style)
//!   last-level cache, per-level hit/miss counters, DRAM traffic
//!   accounting, and a NUMA local/remote split.
//! * [`latency::LatencyModel`] — per-(pattern, level) load latencies,
//!   defaulting to the paper's measured Table 1 values, used to estimate
//!   data-bound time the way VTune attributes stalls.
//! * [`microbench`] — real timed microbenchmarks (sequential, random,
//!   pointer-chasing loads) so Table 1 can also be re-measured on the
//!   host for comparison with the model.
//!
//! Engines thread a [`Probe`] through their inner loops; the default
//! [`NullProbe`] monomorphizes to nothing, so instrumented and production
//! builds share one code path.
//!
//! **What is modeled:** line-granular caching, LRU replacement,
//! exclusive-LLC fill/victim movement, pattern-dependent load latency
//! (which implicitly models hardware prefetching: sequential misses cost
//! streaming latency rather than random-access latency), DRAM line
//! traffic, and NUMA placement.  **What is not:** out-of-order overlap,
//! TLBs, and coherence traffic — none of which the paper's analysis
//! depends on.

pub mod cache;
pub mod hierarchy;
pub mod latency;
pub mod microbench;

pub use hierarchy::{HierarchyConfig, LevelStats, LlcPolicy, MemoryStats, MemorySystem};
pub use latency::LatencyModel;

/// The memory-access patterns distinguished by the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Streaming access at unit stride; prefetch-friendly.
    Sequential,
    /// Independent accesses to unpredictable addresses.
    Random,
    /// Dependent loads, each address computed from the previous value.
    PointerChase,
}

impl AccessKind {
    /// All patterns, in Table 1 row order.
    pub const ALL: [AccessKind; 3] = [
        AccessKind::Sequential,
        AccessKind::Random,
        AccessKind::PointerChase,
    ];

    /// Human-readable row label.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Sequential => "Sequential",
            AccessKind::Random => "Random",
            AccessKind::PointerChase => "Pointer-chasing",
        }
    }
}

/// Where a load was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// DRAM attached to the accessing core's socket.
    LocalMem,
    /// DRAM attached to another socket.
    RemoteMem,
}

impl Level {
    /// All levels, nearest first.
    pub const ALL: [Level; 5] = [
        Level::L1,
        Level::L2,
        Level::L3,
        Level::LocalMem,
        Level::RemoteMem,
    ];

    /// Human-readable column label (Table 1 header).
    pub fn label(self) -> &'static str {
        match self {
            Level::L1 => "L1C",
            Level::L2 => "L2C",
            Level::L3 => "L3C",
            Level::LocalMem => "LocalMem",
            Level::RemoteMem => "RemoteMem",
        }
    }
}

/// A hook observing every memory access an engine performs.
///
/// Engines call `touch` for loads and `touch_write` for stores with the
/// *simulated* address of the datum (see [`AddressSpace`]).  The trait
/// has default no-op methods so that [`NullProbe`] costs nothing.
pub trait Probe {
    /// Records a load of `bytes` bytes at `addr` with pattern `kind`.
    #[inline(always)]
    fn touch(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        let _ = (addr, bytes, kind);
    }

    /// Records a store of `bytes` bytes at `addr` with pattern `kind`.
    #[inline(always)]
    fn touch_write(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        let _ = (addr, bytes, kind);
    }

    /// Marks the completion of one walker-step (normalizes counters).
    #[inline(always)]
    fn step(&mut self) {}

    /// Hints that `bytes` bytes at `addr` will be loaded soon (a
    /// software prefetch).  Unlike [`Probe::touch`] this is *not* a
    /// demand access: implementations may warm their model with the
    /// line, but must not charge hit/miss/latency counters for it.
    #[inline(always)]
    fn prefetch(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }
}

/// The zero-cost probe used by production runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// `&mut P` forwards to `P`, so engines can hand probes down call trees.
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline(always)]
    fn touch(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        (**self).touch(addr, bytes, kind);
    }

    #[inline(always)]
    fn touch_write(&mut self, addr: u64, bytes: u32, kind: AccessKind) {
        (**self).touch_write(addr, bytes, kind);
    }

    #[inline(always)]
    fn step(&mut self) {
        (**self).step();
    }

    #[inline(always)]
    fn prefetch(&mut self, addr: u64, bytes: u32) {
        (**self).prefetch(addr, bytes);
    }
}

/// A bump allocator handing out disjoint simulated address regions.
///
/// Engines allocate one region per logical array (graph offsets, graph
/// targets, walker array, edge buffers, ...) and translate indices to
/// simulated addresses with `base + index * element_size`.  Regions are
/// page-aligned so distinct arrays never share a cache line.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    page: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty simulated address space (4 KiB pages).
    pub fn new() -> Self {
        Self {
            next: 0x1000,
            page: 0x1000,
        }
    }

    /// Reserves `bytes` bytes and returns the region's base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let span = bytes.max(1).div_ceil(self.page) * self.page;
        self.next += span;
        base
    }

    /// Total bytes reserved so far (including alignment padding).
    pub fn reserved(&self) -> u64 {
        self.next - 0x1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_space_regions_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(5000);
        let r3 = a.alloc(1);
        assert_eq!(r1 % 0x1000, 0);
        assert_eq!(r2 % 0x1000, 0);
        assert!(r1 + 100 <= r2);
        assert!(r2 + 5000 <= r3);
    }

    #[test]
    fn null_probe_is_callable() {
        let mut p = NullProbe;
        p.touch(0, 8, AccessKind::Random);
        p.touch_write(64, 4, AccessKind::Sequential);
        p.step();
    }

    #[test]
    fn probe_forwarding_through_mut_ref() {
        #[derive(Default)]
        struct Counting(u64);
        impl Probe for Counting {
            fn touch(&mut self, _: u64, _: u32, _: AccessKind) {
                self.0 += 1;
            }
        }
        // Consume the probe by value through a generic bound, the way
        // engines receive `&mut P`; this exercises the forwarding impl.
        fn drive<P: Probe>(mut p: P) {
            p.touch(0, 1, AccessKind::Random);
            p.touch(8, 1, AccessKind::Random);
        }
        let mut c = Counting::default();
        drive(&mut c);
        assert_eq!(c.0, 2);
    }
}
