//! Real timed load-latency microbenchmarks (re-measuring Table 1).
//!
//! Three access patterns over a working set sized to a target memory
//! level, timed with `std::time::Instant`:
//!
//! * sequential read — unit-stride sum over a `u64` array;
//! * random read — index-array-driven gathers (indices precomputed so the
//!   loads themselves are independent);
//! * pointer chasing — a random-cycle permutation walked serially, the
//!   classic dependent-load latency benchmark.
//!
//! These run on the *host* machine, so absolute numbers differ from the
//! paper's Xeon; the harness prints them side by side with the
//! [`crate::latency::LatencyModel`] defaults.

use std::time::Instant;

use crate::AccessKind;

/// Result of one microbenchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchResult {
    /// The measured pattern.
    pub kind: AccessKind,
    /// Working-set size in bytes.
    pub working_set_bytes: usize,
    /// Average nanoseconds per load.
    pub ns_per_load: f64,
}

/// A deliberately simple xorshift for index generation, local so this
/// module stays dependency-free.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Measures average load latency for `kind` over a working set of
/// `bytes` bytes, performing at least `min_loads` loads.
///
/// Returns the measurement together with a checksum-derived `u64` that
/// callers should consume (e.g. `std::hint::black_box`) — it already
/// passed through `black_box` internally, so the loads cannot be
/// optimized away.
pub fn measure(kind: AccessKind, bytes: usize, min_loads: usize) -> MicrobenchResult {
    let n = (bytes / 8).max(64);
    match kind {
        AccessKind::Sequential => {
            let data = vec![1u64; n];
            let rounds = min_loads.div_ceil(n).max(1);
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..rounds {
                for &x in &data {
                    acc = acc.wrapping_add(x);
                }
            }
            let elapsed = start.elapsed();
            std::hint::black_box(acc);
            MicrobenchResult {
                kind,
                working_set_bytes: bytes,
                ns_per_load: elapsed.as_nanos() as f64 / (rounds * n) as f64,
            }
        }
        AccessKind::Random => {
            let data = vec![1u64; n];
            let mut seed = 0x12345u64;
            let idx: Vec<u32> = (0..min_loads.max(1))
                .map(|_| (xorshift(&mut seed) % n as u64) as u32)
                .collect();
            let start = Instant::now();
            let mut acc = 0u64;
            for &i in &idx {
                acc = acc.wrapping_add(data[i as usize]);
            }
            let elapsed = start.elapsed();
            std::hint::black_box(acc);
            MicrobenchResult {
                kind,
                working_set_bytes: bytes,
                ns_per_load: elapsed.as_nanos() as f64 / idx.len() as f64,
            }
        }
        AccessKind::PointerChase => {
            // Build one random cycle visiting every slot (Sattolo).
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut seed = 0xABCDEFu64;
            for i in (1..n).rev() {
                let j = (xorshift(&mut seed) % i as u64) as usize;
                perm.swap(i, j);
            }
            let mut next = vec![0u32; n];
            for i in 0..n {
                next[perm[i] as usize] = perm[(i + 1) % n];
            }
            let loads = min_loads.max(1);
            let start = Instant::now();
            let mut cur = perm[0];
            for _ in 0..loads {
                cur = next[cur as usize];
            }
            let elapsed = start.elapsed();
            std::hint::black_box(cur);
            MicrobenchResult {
                kind,
                working_set_bytes: bytes,
                ns_per_load: elapsed.as_nanos() as f64 / loads as f64,
            }
        }
    }
}

/// Runs the full Table 1 grid on the host: every pattern x the provided
/// working-set sizes.
pub fn table1_grid(
    sizes: &[(&'static str, usize)],
    min_loads: usize,
) -> Vec<(String, MicrobenchResult)> {
    let mut out = Vec::new();
    for kind in AccessKind::ALL {
        for &(label, bytes) in sizes {
            out.push((label.to_string(), measure(kind, bytes, min_loads)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_positive() {
        for kind in AccessKind::ALL {
            let r = measure(kind, 16 << 10, 10_000);
            assert!(r.ns_per_load > 0.0, "{kind:?}");
            assert!(r.ns_per_load < 10_000.0, "{kind:?} absurd latency");
        }
    }

    #[test]
    fn pointer_chase_slower_than_sequential_at_dram_scale() {
        // 64 MiB working set vs cache-resident: chasing must be clearly
        // slower than streaming.  Generous factor keeps this stable on
        // noisy CI machines.
        let seq = measure(AccessKind::Sequential, 32 << 20, 4_000_000);
        let chase = measure(AccessKind::PointerChase, 32 << 20, 400_000);
        assert!(
            chase.ns_per_load > seq.ns_per_load * 2.0,
            "chase {} vs seq {}",
            chase.ns_per_load,
            seq.ns_per_load
        );
    }

    #[test]
    fn grid_covers_all_cells() {
        let grid = table1_grid(&[("A", 4 << 10), ("B", 64 << 10)], 1_000);
        assert_eq!(grid.len(), 6);
    }
}
