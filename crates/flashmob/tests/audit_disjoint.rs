//! End-to-end tests for the `audit-disjoint` dynamic checker: the pool
//! binds workers to its claim log, `DisjointSlice` records every claim,
//! and `run_labeled` drains + checks at each epoch boundary.
//!
//! The overlap-injection test is constructed to be free of real
//! aliasing: worker 0 makes a genuine `slice_mut` claim (and writes
//! through it), while worker 1 registers a deliberately overlapping
//! claim through `fm_audit::disjoint::claim` *without* materializing a
//! second `&mut` — so the checker fires on the overlap but the program
//! under test never actually races.
#![cfg(feature = "audit-disjoint")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use flashmob::pool::{DisjointSlice, WorkerPool};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn overlapping_claims_trip_the_checker_naming_both_claimants() {
    let pool = WorkerPool::new(2);
    let mut data = vec![0u8; 64];
    let base = data.as_ptr() as usize;
    let ds = DisjointSlice::new(&mut data);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run_labeled("overlap-injection", &|t| {
            if t == 0 {
                // SAFETY: worker 0 is the only thread touching [0, 8).
                let chunk = unsafe { ds.slice_mut(0, 8) };
                chunk[0] = 1;
            } else {
                // Overlaps worker 0's slice_mut claim at bytes [4, 12)
                // without creating an aliasing &mut.
                fm_audit::disjoint::claim(base + 4, 8);
            }
        });
    }));
    let msg = panic_message(result.expect_err("checker must fire"));
    assert!(msg.contains("audit-disjoint"), "got: {msg}");
    assert!(msg.contains("stage `overlap-injection`"), "got: {msg}");
    assert!(msg.contains("worker 0"), "both claimants named; got: {msg}");
    assert!(msg.contains("worker 1"), "both claimants named; got: {msg}");
}

#[test]
fn disjoint_slice_claims_pass_across_epochs() {
    let pool = WorkerPool::new(4);
    let mut data = vec![0u64; 4096];
    let ds = DisjointSlice::new(&mut data);
    for epoch in 0..16u64 {
        pool.run_labeled("clean-epochs", &|t| {
            // SAFETY: worker t owns the disjoint range [t*1024, t*1024+1024).
            let chunk = unsafe { ds.slice_mut(t * 1024, 1024) };
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = epoch * 4096 + (t * 1024 + i) as u64;
            }
        });
    }
    assert!(data
        .iter()
        .enumerate()
        .all(|(i, &x)| x == 15 * 4096 + i as u64));
}

#[test]
fn point_writes_at_distinct_indices_pass() {
    let pool = WorkerPool::new(4);
    let mut data = vec![0u32; 128];
    let ds = DisjointSlice::new(&mut data);
    pool.run_labeled("scatter-writes", &|t| {
        // Strided scatter: worker t writes indices t, t+4, t+8, …
        let mut i = t;
        while i < 128 {
            // SAFETY: the stride-4 index sets of distinct workers are
            // disjoint.
            unsafe { ds.write(i, i as u32) };
            i += 4;
        }
    });
    assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
}

#[test]
fn coordinator_claims_are_ignored_and_pool_survives_a_trip() {
    let pool = WorkerPool::new(2);
    let mut data = vec![0u8; 16];
    let base = data.as_ptr() as usize;
    let ds = DisjointSlice::new(&mut data);
    // Claims from an unbound thread (this test thread) are no-ops:
    // calling slice_mut outside a pool job must not poison epoch 1.
    // SAFETY: no pool job is running; this thread has sole access.
    let chunk = unsafe { ds.slice_mut(0, 16) };
    chunk[3] = 3;
    let hits = AtomicUsize::new(0);
    pool.run_labeled("after-coordinator-claim", &|_t| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 2);
    // After a checker trip, the log is drained and the pool is reusable.
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run_labeled("trip", &|t| {
            fm_audit::disjoint::claim(base, 4 + t); // [base, base+4) vs [base, base+5)
        });
    }));
    assert!(result.is_err(), "overlap must trip");
    let ok = AtomicUsize::new(0);
    pool.run_labeled("recovered", &|_t| {
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 2);
}
