//! Verifies the steady-state step loop allocates nothing.
//!
//! A counting global allocator measures two parallel runs that differ
//! only in step count (4 vs 64 steps).  Setup allocations — walker
//! arrays, scratch, PS buffers, worker stacks — are identical for both,
//! so if the per-step loop is allocation-free the totals match exactly;
//! any per-step Vec/Box (the old cursor-matrix clone, scoped-spawn
//! bookkeeping, …) would show up as ~60 extra allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use flashmob::{FlashMob, WalkConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only addition
// is a relaxed atomic counter bump, which cannot violate GlobalAlloc's
// contract (no reentrant allocation, layout forwarded unchanged).
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout, same contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was produced by our alloc, i.e. by System.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr was produced by our alloc, i.e. by System.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one measured `run()` at the given step count.
fn measured_allocs(steps: usize) -> u64 {
    let g = fm_graph::synth::power_law(400, 2.0, 1, 40, 9);
    let cfg = WalkConfig::deepwalk()
        .walkers(512)
        .steps(steps)
        .seed(3)
        .threads(4)
        .record_paths(false);
    let engine = FlashMob::new(&g, cfg).unwrap();
    // Warm-up run so lazily initialized state doesn't skew the count.
    engine.run().unwrap();
    let before = ALLOCS.load(Ordering::SeqCst);
    engine.run().unwrap();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_step_loop_is_allocation_free() {
    let short = measured_allocs(4);
    let long = measured_allocs(64);
    assert_eq!(
        short, long,
        "allocation count must not grow with step count \
         ({short} allocs at 4 steps vs {long} at 64)"
    );
}
