//! Automatic vertex partitioning and policy assignment (paper §4.4).
//!
//! The planner reduces "how to cut the degree-sorted vertex array into
//! VPs, and which sampling policy each VP uses" to the Multiple-Choice
//! Knapsack Problem:
//!
//! * the sorted vertices are grouped into `G` equal, power-of-two-sized
//!   *groups* (the MCKP classes);
//! * each candidate *item* of a class is a power-of-two VP size for that
//!   group — optionally paired with an internal extra level of shuffle —
//!   whose **profit** is the negated estimated sampling cost (PS or DS,
//!   whichever is cheaper per VP) and whose **weight** is the number of
//!   first-level shuffle bins it creates (the VP count, or 1 when the
//!   group shuffles internally);
//! * the capacity is the number of bins one L2-resident shuffle level can
//!   drive (2048 on the paper's platform).
//!
//! The instance is solved exactly by `fm-mckp`'s pseudo-polynomial DP.

use fm_graph::{Csr, VertexId};
use fm_mckp::{solve, Item};
use fm_memsim::hierarchy::HierarchyConfig;

use crate::cost::{AnalyticCostModel, CostModel};
use crate::partition::{Partition, PartitionMap, SamplePolicy};
use crate::WalkError;

/// Planner inputs that describe the machine rather than the graph.
#[derive(Debug, Clone)]
pub struct PlannerParams {
    /// Cache hierarchy the plan optimizes for.
    pub hierarchy: HierarchyConfig,
    /// Target number of degree groups `G` (the paper uses 64-128).
    pub target_groups: usize,
    /// Shuffle-bin capacity `P` of one shuffle level (2048 on the
    /// paper's platform: the number of concurrent sequential write
    /// streams an L2-resident counting shuffle can sustain).
    pub max_partitions: u32,
    /// Smallest candidate VP size in vertices.
    pub min_vp_vertices: usize,
}

impl Default for PlannerParams {
    fn default() -> Self {
        Self {
            hierarchy: HierarchyConfig::skylake_server(),
            target_groups: 96,
            max_partitions: 2048,
            min_vp_vertices: 64,
        }
    }
}

/// Partitioning strategies (Figure 9b compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// The paper's MCKP/DP optimization.
    DynamicProgramming,
    /// Cut into `max_partitions` equal VPs, all pre-sampling.
    UniformPs,
    /// Cut into `max_partitions` equal VPs, all direct sampling.
    UniformDs,
    /// The authors' pre-MCKP heuristic: L2-sized VPs; PS for high-degree
    /// or low-density partitions, DS otherwise.
    ManualHeuristic,
}

/// One degree group's final decision.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// First vertex of the group.
    pub start: VertexId,
    /// Last vertex (exclusive).
    pub end: VertexId,
    /// Chosen VP size in vertices.
    pub vp_size: usize,
    /// Whether this group shuffles through an internal extra level.
    pub internal_shuffle: bool,
}

/// The complete partitioning decision for one graph + machine + walker
/// count.
#[derive(Debug, Clone)]
pub struct Plan {
    /// All vertex partitions, in vertex order.
    pub partitions: Vec<Partition>,
    /// Vertex → partition lookup.
    pub map: PartitionMap,
    /// Per-group decisions (empty for the uniform strategies).
    pub groups: Vec<GroupPlan>,
    /// Walker density (walkers per edge) the plan was made for.
    pub density: f64,
    /// Predicted per-walker-step sampling cost in nanoseconds.
    pub predicted_sample_ns: f64,
    /// Number of first-level shuffle bins (≤ `max_partitions` + dead bin).
    pub outer_bins: usize,
}

impl Plan {
    /// Number of shuffle levels (1, or 2 if any group shuffles
    /// internally).
    pub fn shuffle_levels(&self) -> usize {
        if self.groups.iter().any(|g| g.internal_shuffle) {
            2
        } else {
            1
        }
    }

    /// Per-partition latency-hiding ring depths (see
    /// [`crate::sample::ring`]): the model's
    /// [`ring_depth`](AnalyticCostModel::ring_depth) knob applied to
    /// each partition's sample working set, so only LLC-exceeding
    /// partitions pay for prefetch instructions.
    ///
    /// The working-set formulas mirror the cost model's
    /// `sample_cost_ns`: DS touches the partition's edges plus (for
    /// irregular layouts) its offset pairs; PS consumption touches one
    /// active buffer line and a cursor per vertex.
    pub fn ring_depths(&self, model: &AnalyticCostModel) -> Vec<usize> {
        let line = model.config().line_bytes;
        self.partitions
            .iter()
            .map(|p| {
                let s = p.vertex_count();
                let ws = match p.policy {
                    SamplePolicy::Direct => {
                        let offsets = if p.uniform_degree.is_some() { 0 } else { s * 8 };
                        p.edges * 4 + offsets
                    }
                    SamplePolicy::PreSample => s * (line + 4),
                };
                model.ring_depth(ws)
            })
            .collect()
    }

    /// Fraction of all edges owned by PS partitions.
    pub fn ps_edge_share(&self) -> f64 {
        let total: usize = self.partitions.iter().map(|p| p.edges).sum();
        if total == 0 {
            return 0.0;
        }
        let ps: usize = self
            .partitions
            .iter()
            .filter(|p| p.policy == SamplePolicy::PreSample)
            .map(|p| p.edges)
            .sum();
        ps as f64 / total as f64
    }

    /// Checks the structural invariants; used by tests and debug builds.
    pub fn validate(&self, vertex_count: usize, max_partitions: u32) -> Result<(), String> {
        if self.partitions.is_empty() {
            return Err("no partitions".into());
        }
        if self.partitions[0].start != 0 {
            return Err("first partition must start at vertex 0".into());
        }
        for w in self.partitions.windows(2) {
            if w[0].end != w[1].start {
                return Err(format!("gap between partitions at {}", w[0].end));
            }
        }
        if self.partitions.last().expect("non-empty").end as usize != vertex_count {
            return Err("partitions do not cover the graph".into());
        }
        // First-level bin budget: internally-shuffled groups count once.
        let mut outer = 0usize;
        for g in &self.groups {
            if g.internal_shuffle {
                outer += 1;
            } else {
                outer += self
                    .partitions
                    .iter()
                    .filter(|p| p.start >= g.start && p.start < g.end)
                    .count();
            }
        }
        if self.groups.is_empty() {
            outer = self.partitions.len();
        }
        if outer as u32 > max_partitions {
            return Err(format!("{outer} outer bins exceed budget {max_partitions}"));
        }
        Ok(())
    }
}

/// Plans vertex partitioning for a degree-sorted graph.
#[derive(Debug)]
pub struct Planner;

impl Planner {
    /// Produces a plan for `graph` (which must already be degree-sorted
    /// descending) walked by `walkers` walkers.
    ///
    /// Pass the cost model explicitly to use measured profiles; the
    /// engine defaults to [`AnalyticCostModel`].
    pub fn plan(
        graph: &Csr,
        walkers: usize,
        params: &PlannerParams,
        strategy: PlanStrategy,
        model: &dyn CostModel,
    ) -> Result<Plan, WalkError> {
        let n = graph.vertex_count();
        if n == 0 {
            return Err(WalkError::EmptyGraph);
        }
        debug_assert!(
            (0..n.saturating_sub(1))
                .all(|v| graph.degree(v as VertexId) >= graph.degree(v as VertexId + 1)),
            "planner requires a degree-sorted graph"
        );
        let density = walkers.max(1) as f64 / graph.edge_count().max(1) as f64;
        match strategy {
            PlanStrategy::DynamicProgramming => Self::plan_dp(graph, density, params, model),
            PlanStrategy::UniformPs => {
                Self::plan_uniform(graph, density, params, model, Some(SamplePolicy::PreSample))
            }
            PlanStrategy::UniformDs => {
                Self::plan_uniform(graph, density, params, model, Some(SamplePolicy::Direct))
            }
            PlanStrategy::ManualHeuristic => Self::plan_manual(graph, density, params, model),
        }
    }

    /// Convenience constructor for the default analytic model.
    pub fn analytic_model(params: &PlannerParams) -> AnalyticCostModel {
        AnalyticCostModel::new(params.hierarchy.clone())
    }

    fn plan_dp(
        graph: &Csr,
        density: f64,
        params: &PlannerParams,
        model: &dyn CostModel,
    ) -> Result<Plan, WalkError> {
        let n = graph.vertex_count();
        // Equal power-of-two group size; the last group may be ragged.
        // Every group consumes at least one shuffle bin (its internal-
        // shuffle item has weight 1), so the group count must not exceed
        // the bin budget or the MCKP becomes infeasible.
        let mut group_size = (n / params.target_groups.max(1)).next_power_of_two().max(1);
        while n.div_ceil(group_size) > params.max_partitions as usize {
            group_size *= 2;
        }
        let group_count = n.div_ceil(group_size);

        // Per-group aggregates.
        struct GroupInfo {
            start: usize,
            end: usize,
            edges: usize,
            uniform: bool,
        }
        let mut infos = Vec::with_capacity(group_count);
        for g in 0..group_count {
            let start = g * group_size;
            let end = ((g + 1) * group_size).min(n);
            let (edges, uniform) = Partition::annotate(graph, start as VertexId, end as VertexId);
            infos.push(GroupInfo {
                start,
                end,
                edges,
                uniform: uniform.is_some(),
            });
        }

        // Candidate items: (vp_size, internal_shuffle) per group.
        struct Candidate {
            vp_size: usize,
            internal: bool,
        }
        let shuffle_ns = model.shuffle_cost_ns();
        let mut classes: Vec<Vec<Item>> = Vec::with_capacity(group_count);
        let mut candidates: Vec<Vec<Candidate>> = Vec::with_capacity(group_count);
        for info in &infos {
            let len = info.end - info.start;
            let avg_degree = info.edges as f64 / len as f64;
            let walkers_here = density * info.edges as f64;
            let mut items = Vec::new();
            let mut cands = Vec::new();
            let mut vp = params.min_vp_vertices.next_power_of_two();
            loop {
                let vp_size = vp.min(len);
                let k = len.div_ceil(vp_size);
                let per_step = model
                    .sample_cost_ns(vp_size, avg_degree, density, SamplePolicy::PreSample, false)
                    .min(model.sample_cost_ns(
                        vp_size,
                        avg_degree,
                        density,
                        SamplePolicy::Direct,
                        info.uniform,
                    ));
                let cost = walkers_here * per_step;
                // Item A: VPs join the first-level shuffle directly.
                items.push(Item {
                    profit: -cost,
                    weight: k as u32,
                });
                cands.push(Candidate {
                    vp_size,
                    internal: false,
                });
                // Item B: group shuffles internally (one outer bin), at
                // the price of one extra shuffle pass for its walkers.
                if k > 1 {
                    items.push(Item {
                        profit: -(cost + walkers_here * shuffle_ns),
                        weight: 1,
                    });
                    cands.push(Candidate {
                        vp_size,
                        internal: true,
                    });
                }
                if vp >= len {
                    break;
                }
                vp *= 2;
            }
            classes.push(items);
            candidates.push(cands);
        }

        let solution = solve(&classes, params.max_partitions)
            .map_err(|e| WalkError::Planning(e.to_string()))?;

        // Materialize partitions with per-VP policy decisions based on
        // each VP's actual degree statistics.
        let mut partitions = Vec::new();
        let mut groups = Vec::with_capacity(group_count);
        let mut predicted = 0.0f64;
        for (g, info) in infos.iter().enumerate() {
            let choice = &candidates[g][solution.choices[g]];
            groups.push(GroupPlan {
                start: info.start as VertexId,
                end: info.end as VertexId,
                vp_size: choice.vp_size,
                internal_shuffle: choice.internal,
            });
            let mut start = info.start;
            while start < info.end {
                let end = (start + choice.vp_size).min(info.end);
                let (edges, uniform) =
                    Partition::annotate(graph, start as VertexId, end as VertexId);
                let vp_vertices = end - start;
                let avg_degree = edges as f64 / vp_vertices as f64;
                let ps = model.sample_cost_ns(
                    vp_vertices,
                    avg_degree,
                    density,
                    SamplePolicy::PreSample,
                    false,
                );
                let ds = model.sample_cost_ns(
                    vp_vertices,
                    avg_degree,
                    density,
                    SamplePolicy::Direct,
                    uniform.is_some(),
                );
                let policy = if ps < ds {
                    SamplePolicy::PreSample
                } else {
                    SamplePolicy::Direct
                };
                predicted += density * edges as f64 * ps.min(ds);
                partitions.push(Partition {
                    start: start as VertexId,
                    end: end as VertexId,
                    policy,
                    group: g,
                    edges,
                    uniform_degree: uniform,
                });
                start = end;
            }
        }
        let total_walkers = density * graph.edge_count() as f64;
        let predicted_sample_ns = predicted / total_walkers.max(1.0);
        let outer_bins = groups
            .iter()
            .map(|g| {
                if g.internal_shuffle {
                    1
                } else {
                    (g.end - g.start) as usize / g.vp_size.max(1)
                        + usize::from(
                            !((g.end - g.start) as usize).is_multiple_of(g.vp_size.max(1)),
                        )
                }
            })
            .sum();
        // DP plans are power-of-two structured, enabling the O(1)
        // shift-based partition lookup in the shuffle's hot scans.
        let vp_sizes: Vec<usize> = groups.iter().map(|g| g.vp_size).collect();
        let map = PartitionMap::with_pow2_structure(&partitions, n, group_size, &vp_sizes);
        Ok(Plan {
            partitions,
            map,
            groups,
            density,
            predicted_sample_ns,
            outer_bins,
        })
    }

    fn plan_uniform(
        graph: &Csr,
        density: f64,
        params: &PlannerParams,
        model: &dyn CostModel,
        forced: Option<SamplePolicy>,
    ) -> Result<Plan, WalkError> {
        let n = graph.vertex_count();
        let count = (params.max_partitions as usize).min(n).max(1);
        let vp_size = n.div_ceil(count);
        let mut partitions = Vec::with_capacity(count);
        let mut predicted = 0.0;
        let mut start = 0usize;
        while start < n {
            let end = (start + vp_size).min(n);
            let (edges, uniform) = Partition::annotate(graph, start as VertexId, end as VertexId);
            let avg_degree = edges as f64 / (end - start) as f64;
            let policy = forced.expect("uniform plans force a policy");
            let per_step = model.sample_cost_ns(
                end - start,
                avg_degree,
                density,
                policy,
                uniform.is_some() && policy == SamplePolicy::Direct,
            );
            predicted += density * edges as f64 * per_step;
            partitions.push(Partition {
                start: start as VertexId,
                end: end as VertexId,
                policy,
                group: 0,
                edges,
                uniform_degree: uniform,
            });
            start = end;
        }
        let total_walkers = density * graph.edge_count() as f64;
        let outer_bins = partitions.len();
        let map = PartitionMap::new(&partitions, n);
        Ok(Plan {
            partitions,
            map,
            groups: Vec::new(),
            density,
            predicted_sample_ns: predicted / total_walkers.max(1.0),
            outer_bins,
        })
    }

    fn plan_manual(
        graph: &Csr,
        density: f64,
        params: &PlannerParams,
        model: &dyn CostModel,
    ) -> Result<Plan, WalkError> {
        // The authors' pre-MCKP heuristic: L2-sized VPs throughout; PS
        // for high-degree or low-density partitions, DS for the rest.
        let n = graph.vertex_count();
        let l2 = params.hierarchy.l2.size_bytes;
        let mut partitions = Vec::new();
        let mut predicted = 0.0;
        let mut start = 0usize;
        while start < n {
            // Grow the VP until its DS working set would exceed L2.
            let mut end = start + 1;
            let mut edges = graph.degree(start as VertexId);
            while end < n
                && (edges + graph.degree(end as VertexId)) * 4 + (end - start + 2) * 8 <= l2
            {
                edges += graph.degree(end as VertexId);
                end += 1;
                if (end - start) >= n.div_ceil(params.max_partitions as usize).max(1)
                    && partitions.len() + 2 >= params.max_partitions as usize
                {
                    // Budget nearly exhausted: absorb the rest.
                    while end < n {
                        edges += graph.degree(end as VertexId);
                        end += 1;
                    }
                }
            }
            let (edges, uniform) = Partition::annotate(graph, start as VertexId, end as VertexId);
            let avg_degree = edges as f64 / (end - start) as f64;
            let policy = if avg_degree >= 32.0 || density < 0.5 {
                SamplePolicy::PreSample
            } else {
                SamplePolicy::Direct
            };
            let per_step = model.sample_cost_ns(
                end - start,
                avg_degree,
                density,
                policy,
                uniform.is_some() && policy == SamplePolicy::Direct,
            );
            predicted += density * edges as f64 * per_step;
            partitions.push(Partition {
                start: start as VertexId,
                end: end as VertexId,
                policy,
                group: 0,
                edges,
                uniform_degree: uniform,
            });
            start = end;
        }
        let total_walkers = density * graph.edge_count() as f64;
        let outer_bins = partitions.len();
        let map = PartitionMap::new(&partitions, n);
        Ok(Plan {
            partitions,
            map,
            groups: Vec::new(),
            density,
            predicted_sample_ns: predicted / total_walkers.max(1.0),
            outer_bins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::relabel::sort_by_degree;
    use fm_graph::synth;

    fn sorted_power_law(n: usize, alpha: f64, max_d: usize) -> Csr {
        let g = synth::power_law(n, alpha, 1, max_d, 42);
        sort_by_degree(&g).0
    }

    fn params() -> PlannerParams {
        PlannerParams {
            target_groups: 16,
            max_partitions: 256,
            min_vp_vertices: 16,
            ..PlannerParams::default()
        }
    }

    fn model(p: &PlannerParams) -> AnalyticCostModel {
        Planner::analytic_model(p)
    }

    #[test]
    fn ring_depths_follow_working_set_fit() {
        let g = sorted_power_law(20_000, 2.0, 500);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 20_000, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        let depths = plan.ring_depths(&m);
        assert_eq!(depths.len(), plan.partitions.len());
        for (part, &d) in plan.partitions.iter().zip(&depths) {
            let s = part.vertex_count();
            let ws = match part.policy {
                SamplePolicy::Direct => {
                    part.edges * 4 + if part.uniform_degree.is_some() { 0 } else { s * 8 }
                }
                SamplePolicy::PreSample => s * (m.config().line_bytes + 4),
            };
            assert_eq!(d, m.ring_depth(ws), "partition {part:?}");
            assert!(d == 1 || d == crate::sample::ring::DEFAULT_RING_DEPTH);
        }
    }

    #[test]
    fn dp_plan_is_valid() {
        let g = sorted_power_law(20_000, 2.0, 500);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 20_000, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        plan.validate(g.vertex_count(), p.max_partitions).unwrap();
        assert!(plan.predicted_sample_ns > 0.0);
    }

    #[test]
    fn dp_vp_sizes_are_powers_of_two_within_groups() {
        let g = sorted_power_law(8192, 2.0, 300);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 8192, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        for gp in &plan.groups {
            assert!(gp.vp_size.is_power_of_two(), "vp_size {}", gp.vp_size);
        }
    }

    #[test]
    fn dp_respects_bin_budget() {
        let g = sorted_power_law(50_000, 1.8, 2000);
        let mut p = params();
        p.max_partitions = 64; // tight budget forces larger VPs or internal shuffle
        let m = model(&p);
        let plan = Planner::plan(&g, 50_000, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        plan.validate(g.vertex_count(), p.max_partitions).unwrap();
        assert!(plan.outer_bins <= 64);
    }

    #[test]
    fn dp_assigns_ps_to_high_degree_ds_to_low_degree() {
        // Strongly skewed graph: hubs should pre-sample, the degree-1
        // tail should sample directly (Figure 10's qualitative shape).
        let g = sorted_power_law(30_000, 1.9, 3000);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 30_000, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        let first = &plan.partitions[0];
        let last = plan.partitions.last().unwrap();
        assert_eq!(last.policy, SamplePolicy::Direct, "tail should use DS");
        // The hub partition is PS whenever its degree is meaningful.
        if first.avg_degree() >= 64.0 {
            assert_eq!(first.policy, SamplePolicy::PreSample, "hubs should use PS");
        }
    }

    #[test]
    fn dp_beats_uniform_strategies_in_predicted_cost() {
        let g = sorted_power_law(30_000, 1.9, 3000);
        let p = params();
        let m = model(&p);
        let dp = Planner::plan(&g, 30_000, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        let ups = Planner::plan(&g, 30_000, &p, PlanStrategy::UniformPs, &m).unwrap();
        let uds = Planner::plan(&g, 30_000, &p, PlanStrategy::UniformDs, &m).unwrap();
        assert!(
            dp.predicted_sample_ns <= ups.predicted_sample_ns + 1e-9,
            "DP {} vs uniform PS {}",
            dp.predicted_sample_ns,
            ups.predicted_sample_ns
        );
        assert!(
            dp.predicted_sample_ns <= uds.predicted_sample_ns + 1e-9,
            "DP {} vs uniform DS {}",
            dp.predicted_sample_ns,
            uds.predicted_sample_ns
        );
    }

    #[test]
    fn uniform_plans_have_requested_bin_count() {
        let g = sorted_power_law(10_000, 2.0, 100);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 10_000, &p, PlanStrategy::UniformPs, &m).unwrap();
        assert!(plan.partitions.len() <= p.max_partitions as usize);
        assert!(plan
            .partitions
            .iter()
            .all(|x| x.policy == SamplePolicy::PreSample));
        plan.validate(g.vertex_count(), p.max_partitions).unwrap();
    }

    #[test]
    fn manual_plan_is_valid_and_mixed() {
        let g = sorted_power_law(20_000, 1.9, 1000);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 2_000, &p, PlanStrategy::ManualHeuristic, &m).unwrap();
        plan.validate(g.vertex_count(), p.max_partitions).unwrap();
    }

    #[test]
    fn tiny_graph_yields_single_partitionish_plan() {
        let g = sorted_power_law(50, 2.0, 10);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(&g, 50, &p, PlanStrategy::DynamicProgramming, &m).unwrap();
        plan.validate(g.vertex_count(), p.max_partitions).unwrap();
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let p = params();
        let m = model(&p);
        assert!(matches!(
            Planner::plan(&g, 10, &p, PlanStrategy::DynamicProgramming, &m),
            Err(WalkError::EmptyGraph)
        ));
    }

    #[test]
    fn density_reflects_walker_count() {
        let g = sorted_power_law(5_000, 2.0, 100);
        let p = params();
        let m = model(&p);
        let plan = Planner::plan(
            &g,
            g.edge_count() * 2,
            &p,
            PlanStrategy::DynamicProgramming,
            &m,
        )
        .unwrap();
        assert!((plan.density - 2.0).abs() < 1e-9);
    }
}
