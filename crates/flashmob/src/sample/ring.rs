//! The latency-hiding walker ring (software pipelining for sample tasks).
//!
//! Within a partition whose working set exceeds the LLC, direct
//! sampling and the node2vec connectivity probe still stall on DRAM:
//! each walker performs one or two *independent* random loads, and the
//! core sits idle for the full memory latency because the next walker's
//! addresses are not computed yet.  ThunderRW's step-interleaving
//! observation applies directly — the addresses of walker `j + k` are
//! known *now* (they depend only on the shuffled walker arrays, never on
//! RNG draws), so we can issue software prefetches for them while walker
//! `j` executes, overlapping `G` memory accesses instead of serializing
//! them.
//!
//! [`drive`] runs a three-stage pipeline over one task's walkers:
//!
//! ```text
//!   walker index:   j ......... j+G/2 ........ j+G
//!                   │            │              │
//!                   ▼            ▼              ▼
//!                execute       fetch         inspect
//!              (RNG draws)  (read offsets,  (prefetch CSR
//!               demand      prefetch edge    offset pair /
//!               loads)      range, bloom     PS cursor)
//!                           lines, cum-
//!                           weight slice)
//! ```
//!
//! `inspect` touches nothing the program needs yet — it only *hints* the
//! lines holding walker `j+G`'s offset pair (or PS cursor).  By the time
//! `fetch` runs for that walker, `G/2` iterations later, the offsets are
//! cached; `fetch` reads them and hints the dependent lines (edge range,
//! cumulative-weight slice, bloom probe words).  Another `G/2`
//! iterations later `execute` finds everything resident.
//!
//! # The RNG-order invariant
//!
//! Bit-exactness with the one-walker-at-a-time loop is mandatory (the
//! conformance lattice pins golden digests).  The pipeline guarantees it
//! structurally: **only the `execute` stage may consume RNG draws or
//! mutate walker state, and `execute(j)` runs in strict walker order
//! `j = 0, 1, 2, …`** — identical to the legacy loop.  `inspect` and
//! `fetch` compute addresses exclusively from immutable task inputs
//! (`scur`, `sprev`, CSR offsets), so reordering them ahead of `execute`
//! cannot change a single draw.  Any depth therefore produces the same
//! walk; depth only changes how far ahead the hints run.
//!
//! The planner disables the ring (depth 1) for partitions whose working
//! set already fits in cache — prefetch hints into a cache-resident set
//! are pure instruction overhead (see `cost::AnalyticCostModel::ring_depth`).

use fm_memsim::Probe;

/// Hard ceiling on the ring depth (slots are stack-allocated).
pub const MAX_RING_DEPTH: usize = 16;

/// Depth the planner assigns to partitions that exceed the LLC.
///
/// Eight in-flight walkers cover the common case of ~80-100 ns DRAM
/// latency over ~10-15 ns of per-walker execute work; the `fig_prefetch`
/// sweep measures the full {1, 2, 4, 8, 16} range.
pub const DEFAULT_RING_DEPTH: usize = 8;

/// Cache-line granularity assumed when spanning a range of elements.
const LINE_BYTES: usize = 64;

/// At most this many lines are hinted for one edge range; beyond that
/// the prefetches would evict each other before `execute` arrives.
const MAX_SPAN_LINES: usize = 4;

/// Issues one software-prefetch hint for the cache line holding `*ptr`.
///
/// Portable wrapper over the architectural prefetch instruction: a pure
/// performance hint with no architectural effect, valid for *any*
/// address (including dangling ones — the hardware drops hints that
/// miss the TLB).  Falls back to a no-op on other targets.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint instruction; it never faults and has
    // no effect on architectural state, so any pointer value is sound.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is a hint instruction; it never faults and
    // has no effect on architectural state, so any pointer value is
    // sound.  The asm touches no registers beyond the input operand.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr as *const u8,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = ptr;
}

/// Prefetch issuer for one sample task.
///
/// Bundles the hardware hint ([`prefetch_read`]), the memory-model hint
/// ([`Probe::prefetch`] at the same simulated address the later demand
/// touch will use), and the issue counter surfaced through telemetry.
/// Inactive (`depth <= 1`) issuers compile every helper to a branch on
/// one bool, so the depth-1 path stays the legacy machine code.
#[derive(Debug)]
pub struct Pf {
    active: bool,
    issued: u64,
}

impl Pf {
    /// Creates an issuer; `active = false` turns every hint into a no-op.
    pub fn new(active: bool) -> Self {
        Self { active, issued: 0 }
    }

    /// Whether hints are being issued (ring depth > 1).
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Hints issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Hints an arbitrary datum: hardware prefetch of `*ptr`, simulated
    /// prefetch of `bytes` bytes at `addr`.
    #[inline(always)]
    pub fn raw<T, P: Probe>(&mut self, probe: &mut P, ptr: *const T, addr: u64, bytes: u32) {
        if !self.active {
            return;
        }
        prefetch_read(ptr);
        probe.prefetch(addr, bytes);
        self.issued += 1;
    }

    /// Hardware-side hint only, for data whose simulated address is
    /// attributed separately (e.g. bloom probe words).  Not counted.
    #[inline(always)]
    pub fn hw<T>(&self, ptr: *const T) {
        if self.active {
            prefetch_read(ptr);
        }
    }

    /// Model-side hint only, paired with [`Pf::hw`]; counted as one
    /// issued hint.
    #[inline(always)]
    pub fn model<P: Probe>(&mut self, probe: &mut P, addr: u64, bytes: u32) {
        if !self.active {
            return;
        }
        probe.prefetch(addr, bytes);
        self.issued += 1;
    }

    /// Hints the single element `data[i]` (ignored when out of bounds —
    /// ring lookahead runs past slice ends by design).
    #[inline(always)]
    pub fn element<T, P: Probe>(&mut self, probe: &mut P, data: &[T], i: usize, base: u64) {
        if !self.active {
            return;
        }
        if let Some(r) = data.get(i) {
            let sz = core::mem::size_of::<T>();
            prefetch_read(r as *const T);
            probe.prefetch(base + (sz * i) as u64, sz as u32);
            self.issued += 1;
        }
    }

    /// Hints the lines covering `data[i .. i + len]`, capped at
    /// [`MAX_SPAN_LINES`]; used for edge ranges and cum-weight slices.
    #[inline]
    pub fn span<T, P: Probe>(
        &mut self,
        probe: &mut P,
        data: &[T],
        i: usize,
        len: usize,
        base: u64,
    ) {
        if !self.active || len == 0 || i >= data.len() {
            return;
        }
        let sz = core::mem::size_of::<T>().max(1);
        let end = (i + len).min(data.len());
        let bytes = ((end - i) * sz).min(LINE_BYTES * MAX_SPAN_LINES);
        let last = i + (bytes - 1) / sz;
        let step = (LINE_BYTES / sz).max(1);
        // One hint per line-stride; `hints = ceil(bytes / LINE_BYTES)`,
        // so the cap above bounds the count by MAX_SPAN_LINES.
        let mut k = i;
        while k <= last {
            prefetch_read(&data[k] as *const T);
            self.issued += 1;
            k += step;
        }
        probe.prefetch(base + (sz * i) as u64, bytes as u32);
    }
}

/// Runs one sample task's walkers through the inspect → fetch → execute
/// pipeline.
///
/// * `inspect(pf, ctx, j)` — hint-only stage, runs `depth` walkers ahead.
/// * `fetch(pf, ctx, j) -> T` — reads now-resident metadata (e.g. the
///   CSR offset pair), hints dependent lines, and returns the slot
///   payload `execute` will use.  Runs `depth / 2` walkers ahead.
/// * `execute(ctx, j, slot)` — the only stage allowed to consume RNG
///   draws or mutate walker state; runs in strict walker order.
///
/// `ctx` carries the state shared across stages (the probe, PS buffers);
/// state touched by a single stage is captured by that closure directly.
/// With `depth <= 1` the pipeline degenerates to the legacy
/// one-walker-at-a-time loop (`fetch` immediately followed by `execute`,
/// hints disabled via the inactive [`Pf`]).
pub fn drive<T: Copy + Default, C: ?Sized>(
    depth: usize,
    n: usize,
    pf: &mut Pf,
    ctx: &mut C,
    mut inspect: impl FnMut(&mut Pf, &mut C, usize),
    mut fetch: impl FnMut(&mut Pf, &mut C, usize) -> T,
    mut execute: impl FnMut(&mut C, usize, T),
) {
    if depth <= 1 || n == 0 {
        for j in 0..n {
            let slot = fetch(pf, ctx, j);
            execute(ctx, j, slot);
        }
        return;
    }
    let depth = depth.min(MAX_RING_DEPTH);
    let lead = (depth / 2).max(1);
    // Slot `j % depth` is written by fetch(j) and read by execute(j);
    // the `lead < depth` spacing guarantees no overwrite in between.
    let mut slots = [T::default(); MAX_RING_DEPTH];
    for k in 0..depth.min(n) {
        inspect(pf, ctx, k);
    }
    for k in 0..lead.min(n) {
        slots[k % depth] = fetch(pf, ctx, k);
    }
    for j in 0..n {
        if j + depth < n {
            inspect(pf, ctx, j + depth);
        }
        if j + lead < n {
            slots[(j + lead) % depth] = fetch(pf, ctx, j + lead);
        }
        execute(ctx, j, slots[j % depth]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_memsim::{AccessKind, HierarchyConfig, MemorySystem, NullProbe};

    #[test]
    fn prefetch_read_is_callable_on_any_pointer() {
        let x = 42u64;
        prefetch_read(&x as *const u64);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u8);
    }

    #[test]
    fn inactive_pf_issues_nothing() {
        let mut pf = Pf::new(false);
        let data = [1u32; 64];
        pf.element(&mut NullProbe, &data, 3, 0x1000);
        pf.span(&mut NullProbe, &data, 0, 64, 0x1000);
        pf.raw(&mut NullProbe, data.as_ptr(), 0x1000, 4);
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn element_hint_counts_and_warms_probe() {
        let mut pf = Pf::new(true);
        let mut mem = MemorySystem::new(HierarchyConfig::skylake_server());
        let data = [7u32; 16];
        pf.element(&mut mem, &data, 4, 0x1000);
        assert_eq!(pf.issued(), 1);
        assert_eq!(mem.stats().prefetch_lines, 1);
        // The demand load then hits L1.
        mem.touch(0x1000 + 16, 4, AccessKind::Random);
        assert_eq!(mem.stats().l1.hits, 1);
    }

    #[test]
    fn element_out_of_bounds_is_ignored() {
        let mut pf = Pf::new(true);
        let data = [1u32; 4];
        pf.element(&mut NullProbe, &data, 99, 0x1000);
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn span_caps_line_count() {
        let mut pf = Pf::new(true);
        let mut mem = MemorySystem::new(HierarchyConfig::skylake_server());
        // 1024 u32 = 4 KiB = 64 lines; only MAX_SPAN_LINES are hinted.
        let data = vec![1u32; 1024];
        pf.span(&mut mem, &data, 0, 1024, 0x1000);
        assert_eq!(pf.issued() as usize, MAX_SPAN_LINES);
        assert_eq!(mem.stats().prefetch_lines as usize, MAX_SPAN_LINES);
    }

    #[test]
    fn span_clamps_to_slice_end() {
        let mut pf = Pf::new(true);
        let data = [1u32; 8];
        pf.span(&mut NullProbe, &data, 6, 100, 0x1000);
        assert_eq!(pf.issued(), 1); // 2 elements, one line
    }

    /// The invariant the conformance lattice enforces end-to-end:
    /// execute order (and thus RNG-draw order) is walker order at every
    /// depth, while inspect/fetch run ahead by depth and depth/2.
    #[test]
    fn drive_executes_in_walker_order_at_every_depth() {
        for depth in [1usize, 2, 3, 4, 8, 16] {
            for n in [0usize, 1, 2, 5, 16, 57] {
                let mut pf = Pf::new(depth > 1);
                let mut log: Vec<(char, usize)> = Vec::new();
                let mut executed = Vec::new();
                drive(
                    depth,
                    n,
                    &mut pf,
                    &mut log,
                    |_, log, j| log.push(('i', j)),
                    |_, log, j| {
                        log.push(('f', j));
                        j
                    },
                    |log, j, slot| {
                        assert_eq!(slot, j, "slot payload must come from fetch({j})");
                        log.push(('e', j));
                        executed.push(j);
                    },
                );
                assert_eq!(executed, (0..n).collect::<Vec<_>>(), "depth {depth} n {n}");
                // Each stage visits every walker exactly once.
                for stage in ['f', 'e'] {
                    let mut seen: Vec<usize> =
                        log.iter().filter(|e| e.0 == stage).map(|e| e.1).collect();
                    seen.sort_unstable();
                    assert_eq!(seen, (0..n).collect::<Vec<_>>(), "stage {stage}");
                }
                // fetch(j) precedes execute(j); inspect(j) precedes fetch(j).
                for j in 0..n {
                    let pos = |s: char| log.iter().position(|&e| e == (s, j)).unwrap();
                    assert!(pos('f') < pos('e'), "fetch({j}) after execute({j})");
                    if depth > 1 {
                        assert!(pos('i') < pos('f'), "inspect({j}) after fetch({j})");
                    }
                }
            }
        }
    }
}
