//! Cross-socket execution modes (paper Section 4.5, Figure 12).
//!
//! * **FlashMob-P** ("P" for partitioning): the graph, its vertex
//!   partitions, and the walker arrays are split across sockets.  The
//!   only remote accesses are streaming reads in the sample stage, which
//!   Table 1 shows cost barely more than local streams — so P-mode keeps
//!   the whole DRAM of the machine available for walker arrays and
//!   nearly doubles walker density.
//! * **FlashMob-R** ("R" for replication): each socket holds a full copy
//!   of the graph and runs an independent walk.  No remote accesses at
//!   all, but the duplicated graph leaves less DRAM for walkers, halving
//!   density and hence cache reuse.
//!
//! A single-image OS process cannot pin real NUMA nodes portably, so the
//! reproduction models the trade-off exactly as the paper describes it:
//! the memory *budget* determines how many walkers each mode can hold,
//! both modes are then executed for real, and an instrumented run with a
//! remote-address boundary verifies that P-mode's remote traffic is
//! streaming-only and rare.

use std::path::Path;

use fm_graph::Csr;
use fm_memsim::{HierarchyConfig, MemorySystem};
use fm_recover::{CheckpointSpec, MANIFEST_NAME};
use fm_telemetry::Telemetry;

use crate::engine::FlashMob;
use crate::pool::PoolStats;
use crate::{WalkConfig, WalkError};

/// Which cross-socket mode to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumaMode {
    /// FlashMob-P: one graph copy, walker arrays spanning all sockets.
    Partitioned,
    /// FlashMob-R: one graph copy *per socket*, independent walks.
    Replicated,
}

impl NumaMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            NumaMode::Partitioned => "FlashMob-P",
            NumaMode::Replicated => "FlashMob-R",
        }
    }
}

/// Machine description for NUMA-mode sizing.
#[derive(Debug, Clone, Copy)]
pub struct NumaMachine {
    /// Number of sockets.
    pub sockets: usize,
    /// DRAM bytes available per socket for graph + walker arrays.
    pub dram_per_socket: usize,
}

/// Result of one NUMA-mode execution.
#[derive(Debug, Clone)]
pub struct NumaReport {
    /// Executed mode.
    pub mode: NumaMode,
    /// Total walkers across all sockets.
    pub walkers: usize,
    /// Walker density (walkers per edge seen by one engine instance).
    pub density: f64,
    /// Measured wall-clock nanoseconds per walker-step.
    pub per_step_ns: f64,
    /// Remote DRAM loads per step from the instrumented verification run
    /// (P-mode only; 0 for R-mode by construction).
    pub remote_loads_per_step: f64,
    /// Worker-pool accounting from the timed run (R-mode sums its
    /// per-socket instances).  Zero for single-threaded configs.
    pub pool: PoolStats,
}

/// A per-socket recorder matching the parent's enablement: socket `s`
/// records under trace pid `s` and is later merged into the parent with
/// [`Telemetry::absorb`], which keeps span attribution per socket while
/// summing counters exactly once.
fn socket_recorder(parent: &Telemetry, s: usize) -> Telemetry {
    if parent.is_on() {
        Telemetry::new().with_pid(s as u32)
    } else {
        Telemetry::off()
    }
}

/// Bytes of walker-array state per walker (W, SW, Snext, Wnext, plus
/// prev arrays for second-order walks).
fn bytes_per_walker(second_order: bool) -> usize {
    if second_order {
        7 * 4
    } else {
        4 * 4
    }
}

/// Computes how many walkers each mode can hold within the machine's
/// DRAM, following the paper's analysis.
pub fn walker_capacity(
    graph: &Csr,
    machine: &NumaMachine,
    mode: NumaMode,
    second_order: bool,
) -> usize {
    let graph_bytes = graph.footprint_bytes();
    let per_walker = bytes_per_walker(second_order);
    match mode {
        NumaMode::Partitioned => {
            // One graph copy spread over all sockets; the rest is walkers.
            let total = machine.sockets * machine.dram_per_socket;
            total.saturating_sub(graph_bytes) / per_walker
        }
        NumaMode::Replicated => {
            // A full graph copy per socket.
            let per_socket = machine.dram_per_socket.saturating_sub(graph_bytes) / per_walker;
            per_socket * machine.sockets
        }
    }
}

/// Runs one cross-socket mode and reports density + per-step time.
///
/// `base.walkers` is ignored; the walker count is derived from the
/// machine budget, mirroring the paper's "number of walkers per episode
/// is configured at runtime based on DRAM capacity".
pub fn run_numa(
    graph: &Csr,
    base: WalkConfig,
    machine: &NumaMachine,
    mode: NumaMode,
) -> Result<NumaReport, WalkError> {
    run_numa_traced(graph, base, machine, mode, &mut Telemetry::off())
}

/// [`run_numa`] with telemetry: in R-mode each socket records into its
/// own recorder (tagged with the socket index as the trace pid) which is
/// then merged into `tel` — spans keep per-socket attribution and the
/// partition counters sum exactly once, so the merged
/// `partition_steps_total` equals the total steps across sockets.
pub fn run_numa_traced(
    graph: &Csr,
    base: WalkConfig,
    machine: &NumaMachine,
    mode: NumaMode,
    tel: &mut Telemetry,
) -> Result<NumaReport, WalkError> {
    let second_order = base.algorithm.is_second_order();
    let walkers = walker_capacity(graph, machine, mode, second_order).max(machine.sockets);
    match mode {
        NumaMode::Partitioned => {
            // Executed single-threaded and credited with ideal per-socket
            // parallelism, exactly like the R-mode measurement below, so
            // the comparison is fair on hosts with fewer cores than the
            // simulated sockets.
            let config = base.clone().walkers(walkers).record_paths(false);
            let engine = FlashMob::new(graph, config)?;
            let (_, stats) = engine.run_traced(tel)?;

            // Instrumented verification: place the walker arrays beyond a
            // remote boundary covering half the address space, proving
            // the sample stage's remote traffic is streaming-only.
            let probe_cfg = base
                .clone()
                .walkers(walkers.min(10_000))
                .record_paths(false);
            let probe_engine = FlashMob::new(graph, probe_cfg)?;
            let hierarchy = HierarchyConfig::skylake_server()
                .with_remote_boundary(graph.footprint_bytes() as u64 / machine.sockets as u64);
            let mut probe = MemorySystem::new(hierarchy);
            let (_, _) = probe_engine.run_probed(&mut probe)?;
            let remote = probe.stats().per_step(probe.stats().remote_mem_loads);

            Ok(NumaReport {
                mode,
                walkers,
                density: walkers as f64 / graph.edge_count() as f64,
                per_step_ns: stats.per_step_ns() / machine.sockets as f64,
                remote_loads_per_step: remote,
                pool: stats.pool,
            })
        }
        NumaMode::Replicated => {
            // Independent per-socket instances; run them serially and
            // average (a single measured socket is representative — the
            // instances share nothing).
            let per_socket = walkers / machine.sockets;
            let mut total_ns = 0.0;
            let mut total_steps = 0u64;
            let mut pool = PoolStats::default();
            for s in 0..machine.sockets {
                let config = base
                    .clone()
                    .walkers(per_socket)
                    .seed(base.seed.wrapping_add(s as u64))
                    .record_paths(false);
                let engine = FlashMob::new(graph, config)?;
                let mut socket_tel = socket_recorder(tel, s);
                let (_, stats) = engine.run_traced(&mut socket_tel)?;
                tel.absorb(socket_tel);
                total_ns += stats.wall.as_nanos() as f64;
                total_steps += stats.steps_taken;
                pool.spawned += stats.pool.spawned;
                pool.epochs += stats.pool.epochs;
                pool.idle += stats.pool.idle;
            }
            Ok(NumaReport {
                mode,
                walkers,
                density: per_socket as f64 / graph.edge_count() as f64,
                per_step_ns: total_ns / total_steps.max(1) as f64 / machine.sockets as f64,
                remote_loads_per_step: 0.0,
                pool,
            })
        }
    }
}

/// Runs one cross-socket mode with path recording and an *explicit*
/// walker count, returning the per-instance outputs: one output for
/// P-mode (a single engine spans all sockets), `sockets` outputs for
/// R-mode (independent per-socket instances, socket `s` seeded with
/// `seed + s` exactly as [`run_numa`] seeds them).
///
/// [`run_numa`] sizes walkers from a DRAM budget and reports timings
/// only; the conformance harness needs the actual sampled paths of both
/// modes to prove they realize the same Markov chain, which is what this
/// entry point provides.
pub fn run_numa_paths(
    graph: &Csr,
    base: WalkConfig,
    mode: NumaMode,
    sockets: usize,
) -> Result<Vec<crate::output::WalkOutput>, WalkError> {
    run_numa_paths_traced(graph, base, mode, sockets, &mut Telemetry::off())
}

/// [`run_numa_paths`] with telemetry, following the same per-socket
/// merge protocol as [`run_numa_traced`]: each R-mode socket records
/// into a pid-tagged recorder absorbed into `tel`, so counters sum
/// exactly once across sockets.
pub fn run_numa_paths_traced(
    graph: &Csr,
    base: WalkConfig,
    mode: NumaMode,
    sockets: usize,
    tel: &mut Telemetry,
) -> Result<Vec<crate::output::WalkOutput>, WalkError> {
    if sockets == 0 {
        return Err(WalkError::Planning("need at least one socket".into()));
    }
    match mode {
        NumaMode::Partitioned => {
            let engine = FlashMob::new(graph, base.record_paths(true))?;
            Ok(vec![engine.run_traced(tel)?.0])
        }
        NumaMode::Replicated => {
            let total = base.walkers;
            if total < sockets {
                return Err(WalkError::NoWalkers);
            }
            let share = total / sockets;
            let mut outputs = Vec::with_capacity(sockets);
            for s in 0..sockets {
                // The first socket absorbs the remainder so every walker
                // is accounted for.
                let walkers = if s == 0 { total - share * (sockets - 1) } else { share };
                let config = base
                    .clone()
                    .walkers(walkers)
                    .seed(base.seed.wrapping_add(s as u64))
                    .record_paths(true);
                let engine = FlashMob::new(graph, config)?;
                let mut socket_tel = socket_recorder(tel, s);
                outputs.push(engine.run_traced(&mut socket_tel)?.0);
                tel.absorb(socket_tel);
            }
            Ok(outputs)
        }
    }
}

/// The checkpoint directory of R-mode socket `s` under the run's root
/// checkpoint directory (P-mode uses the root directly — it is one
/// spanning engine instance).
fn socket_dir(root: &Path, s: usize) -> std::path::PathBuf {
    root.join(format!("socket-{s}"))
}

/// [`run_numa_paths_traced`] with crash-consistent checkpointing.
///
/// P-mode delegates to the spanning engine's checkpoint path.  R-mode
/// gives every socket its own subdirectory (`<dir>/socket-<s>`) so the
/// independent instances never race on a manifest; sockets run serially,
/// so a `halt_after` kill stops the whole mode at the first socket that
/// reaches it — exactly the state [`resume_numa_paths`] recovers from.
pub fn run_numa_paths_with_checkpoints(
    graph: &Csr,
    base: WalkConfig,
    mode: NumaMode,
    sockets: usize,
    spec: &CheckpointSpec,
    tel: &mut Telemetry,
) -> Result<Vec<crate::output::WalkOutput>, WalkError> {
    if sockets == 0 {
        return Err(WalkError::Planning("need at least one socket".into()));
    }
    match mode {
        NumaMode::Partitioned => {
            let engine = FlashMob::new(graph, base.record_paths(true))?;
            Ok(vec![engine.run_with_checkpoints_traced(spec, tel)?.0])
        }
        NumaMode::Replicated => {
            let total = base.walkers;
            if total < sockets {
                return Err(WalkError::NoWalkers);
            }
            let share = total / sockets;
            let mut outputs = Vec::with_capacity(sockets);
            for s in 0..sockets {
                let walkers = if s == 0 { total - share * (sockets - 1) } else { share };
                let config = base
                    .clone()
                    .walkers(walkers)
                    .seed(base.seed.wrapping_add(s as u64))
                    .record_paths(true);
                let engine = FlashMob::new(graph, config)?;
                let socket_spec = CheckpointSpec {
                    dir: socket_dir(&spec.dir, s),
                    ..spec.clone()
                };
                let mut socket_tel = socket_recorder(tel, s);
                let result = engine.run_with_checkpoints_traced(&socket_spec, &mut socket_tel);
                tel.absorb(socket_tel);
                outputs.push(result?.0);
            }
            Ok(outputs)
        }
    }
}

/// Resumes a [`run_numa_paths_with_checkpoints`] run killed mid-flight,
/// producing outputs bit-identical to the uninterrupted run's.
///
/// R-mode sockets recover independently: a socket whose subdirectory
/// holds a checkpoint resumes from it (a socket that had already
/// finished resumes from its final checkpoint and completes in zero
/// iterations); a socket the kill never reached starts fresh.
pub fn resume_numa_paths(
    graph: &Csr,
    base: WalkConfig,
    mode: NumaMode,
    sockets: usize,
    dir: impl AsRef<Path>,
    tel: &mut Telemetry,
) -> Result<Vec<crate::output::WalkOutput>, WalkError> {
    if sockets == 0 {
        return Err(WalkError::Planning("need at least one socket".into()));
    }
    let dir = dir.as_ref();
    match mode {
        NumaMode::Partitioned => {
            let engine = FlashMob::new(graph, base.record_paths(true))?;
            Ok(vec![engine.resume_with(dir, None, tel)?.0])
        }
        NumaMode::Replicated => {
            let total = base.walkers;
            if total < sockets {
                return Err(WalkError::NoWalkers);
            }
            let share = total / sockets;
            let mut outputs = Vec::with_capacity(sockets);
            for s in 0..sockets {
                let walkers = if s == 0 { total - share * (sockets - 1) } else { share };
                let config = base
                    .clone()
                    .walkers(walkers)
                    .seed(base.seed.wrapping_add(s as u64))
                    .record_paths(true);
                let engine = FlashMob::new(graph, config)?;
                let sdir = socket_dir(dir, s);
                let mut socket_tel = socket_recorder(tel, s);
                let result = if sdir.join(MANIFEST_NAME).is_file() {
                    engine.resume_with(&sdir, None, &mut socket_tel)
                } else {
                    engine.run_traced(&mut socket_tel)
                };
                tel.absorb(socket_tel);
                outputs.push(result?.0);
            }
            Ok(outputs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlannerParams;
    use fm_graph::synth;

    fn machine(graph: &Csr) -> NumaMachine {
        NumaMachine {
            sockets: 2,
            dram_per_socket: graph.footprint_bytes() * 4,
        }
    }

    #[test]
    fn partitioned_holds_more_walkers_than_replicated() {
        let g = synth::power_law(2000, 2.0, 1, 60, 3);
        let m = machine(&g);
        let p = walker_capacity(&g, &m, NumaMode::Partitioned, false);
        let r = walker_capacity(&g, &m, NumaMode::Replicated, false);
        assert!(p > r, "P capacity {p} must exceed R capacity {r}");
        // With a graph occupying 1/4 of each socket, P ≈ (8-1)/(2*(4-1)) R.
        let ratio = p as f64 / r as f64;
        assert!(ratio > 1.1 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn second_order_reduces_capacity() {
        let g = synth::power_law(1000, 2.0, 1, 30, 3);
        let m = machine(&g);
        let first = walker_capacity(&g, &m, NumaMode::Partitioned, false);
        let second = walker_capacity(&g, &m, NumaMode::Partitioned, true);
        assert!(second < first);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_numa_paths_merge_without_double_counting() {
        let g = synth::power_law(400, 2.0, 1, 40, 2);
        let base = crate::WalkConfig::deepwalk()
            .walkers(120)
            .steps(4)
            .seed(5)
            .planner(PlannerParams {
                target_groups: 8,
                max_partitions: 64,
                min_vp_vertices: 8,
                ..PlannerParams::default()
            });
        let mut tel = Telemetry::new();
        let outputs =
            run_numa_paths_traced(&g, base.clone(), NumaMode::Replicated, 3, &mut tel).unwrap();
        assert_eq!(outputs.len(), 3);
        // 120 walkers × 4 steps across all sockets, counted exactly once
        // in the merged recorder.
        assert_eq!(tel.partition_steps_total(), 120 * 4);
        // Sockets 1 and 2 keep their own span lanes (pid tag in the
        // thread lane's high bits); socket 0 shares the parent's pid.
        for s in 1..3u32 {
            assert!(
                tel.events().iter().any(|e| e.thread >> 16 == s + 1),
                "socket {s} spans must survive the merge with attribution"
            );
        }
        // Tracing must not perturb the sampled paths.
        let plain = run_numa_paths(&g, base, NumaMode::Replicated, 3).unwrap();
        for (a, b) in plain.iter().zip(&outputs) {
            assert_eq!(a.paths(), b.paths());
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_numa_partitioned_counts_exactly() {
        let g = synth::power_law(300, 2.0, 1, 30, 4);
        let base = crate::WalkConfig::deepwalk().walkers(90).steps(3).seed(2);
        let mut tel = Telemetry::new();
        let outputs =
            run_numa_paths_traced(&g, base, NumaMode::Partitioned, 2, &mut tel).unwrap();
        assert_eq!(outputs.len(), 1, "P-mode is a single spanning instance");
        assert_eq!(tel.partition_steps_total(), 90 * 3);
    }

    #[test]
    fn both_modes_run_and_report() {
        let g = synth::power_law(800, 2.0, 1, 40, 5);
        let m = NumaMachine {
            sockets: 2,
            dram_per_socket: g.footprint_bytes() * 2,
        };
        let base = crate::WalkConfig::deepwalk()
            .steps(3)
            .seed(1)
            .planner(PlannerParams {
                target_groups: 8,
                max_partitions: 64,
                min_vp_vertices: 8,
                ..PlannerParams::default()
            });
        let p = run_numa(&g, base.clone(), &m, NumaMode::Partitioned).unwrap();
        let r = run_numa(&g, base, &m, NumaMode::Replicated).unwrap();
        assert!(p.density > r.density * 1.05, "P density should exceed R");
        assert!(p.per_step_ns > 0.0 && r.per_step_ns > 0.0);
        assert_eq!(r.remote_loads_per_step, 0.0);
        // Remote accesses in P-mode stay rare (streaming-only).
        assert!(p.remote_loads_per_step.is_finite());
    }
}
