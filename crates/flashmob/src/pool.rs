//! A persistent, epoch-based worker pool for the step pipeline.
//!
//! The original FlashMob keeps an OpenMP-style pool of threads alive for
//! the whole run; the sample and shuffle stages are barriers between
//! phases, not thread lifetimes.  Spawning scoped threads per stage
//! instead — as this reproduction first did — pays up to four
//! spawn/join cycles *per walk step*, which for an 80-step run means
//! hundreds of thread creations whose latency dwarfs the per-stage work
//! on small inputs.
//!
//! [`WorkerPool`] spawns the configured number of OS threads **once**
//! (per [`crate::FlashMob::run`]) and afterwards dispatches stage jobs
//! by bumping an *epoch*:
//!
//! 1. The coordinator stores the job (a lifetime-erased
//!    `&dyn Fn(usize)`), increments the epoch under the mutex, and
//!    notifies the workers.
//! 2. Each worker observes the new epoch, runs `job(worker_index)`
//!    exactly once, and decrements the outstanding-worker count.
//! 3. The last worker to finish wakes the coordinator, which was
//!    blocked in [`WorkerPool::run`] the whole time — that blocking is
//!    what makes borrowing stack data into the job sound.
//!
//! Both sides spin briefly before parking on a condvar, because epochs
//! in the steady-state step loop arrive microseconds apart.
//!
//! # Determinism
//!
//! The pool assigns worker `t` the `t`-th pre-computed disjoint slice of
//! every stage, and each partition keeps its own seeded RNG stream
//! (`split_stream(seed, iter * K + partition)`), so which thread runs a
//! partition never influences the sampled values.  First-order walk
//! output therefore stays bit-identical across thread counts — the
//! `parallel_matches_sequential` guarantee — and the shuffle passes
//! reproduce the sequential stable counting sort exactly.
//!
//! Dispatching a job does not allocate: the job is passed by reference,
//! and all stage scratch (cursor matrices, visit arrays) lives in
//! buffers reused across epochs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Iterations both sides spin before parking on the condvar — but only
/// when the machine has more cores than pool threads; with the CPUs
/// oversubscribed (or just one core), spinning steals the quantum the
/// *other* side needs to make progress, so both sides park immediately.
const SPIN_ITERS: u32 = 8_192;

/// The spin budget for this machine/pool combination.
fn spin_budget(threads: usize) -> u32 {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores > threads {
        SPIN_ITERS
    } else {
        0
    }
}

/// Pool overhead counters for one run (surfaced in
/// [`crate::RunStats::pool`] and `fmwalk walk --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// OS threads spawned — equals the configured thread count, once
    /// per pool, never O(steps).
    pub spawned: usize,
    /// Stage jobs (epochs) dispatched over the pool's lifetime.
    pub epochs: u64,
    /// Cumulative wall-clock time workers spent waiting for work.
    pub idle: Duration,
}

/// Lifetime-erased pointer to the current epoch's job.  Raw (not a
/// reference) so that a stale value left from a finished epoch is merely
/// dangling, never an invalid reference.
///
/// # Safety
///
/// The pointer is produced in [`WorkerPool::run_labeled`] from a job
/// reference that outlives the dispatch, and must only be dereferenced
/// by workers between the epoch publish and their `remaining`
/// decrement — the window during which the coordinator keeps the
/// referent alive by blocking.  Outside that window the value is
/// treated as opaque bits.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced by workers between the epoch
// publish and their `remaining` decrement, a window during which the
// coordinator keeps the referent alive by blocking in `run`.
unsafe impl Send for JobPtr {}

struct State {
    /// Monotone epoch counter; a bump publishes `job`.
    epoch: u64,
    job: Option<JobPtr>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The coordinator waits here for `remaining` to reach zero.
    done: Condvar,
    /// Workers still running the current epoch's job.
    remaining: AtomicUsize,
    /// Lock-free mirror of `state.epoch` for the workers' spin phase
    /// (`u64::MAX` signals shutdown).
    epoch_hint: AtomicU64,
    /// 0 = no panic; otherwise 1 + the index of the *first* worker
    /// whose job panicked this epoch (for the re-raise message).
    panicked: AtomicUsize,
    idle_ns: AtomicU64,
    /// Spin iterations before parking (0 when cores are oversubscribed).
    spin: u32,
    /// Per-epoch interval log of `DisjointSlice` claims, drained and
    /// checked at each epoch boundary (see fm-audit's `disjoint`).
    #[cfg(feature = "audit-disjoint")]
    claims: Arc<fm_audit::ClaimLog>,
}

/// A pool of persistent worker threads dispatching jobs by epoch.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one), parked until the first
    /// [`WorkerPool::run`].
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            remaining: AtomicUsize::new(0),
            epoch_hint: AtomicU64::new(0),
            panicked: AtomicUsize::new(0),
            idle_ns: AtomicU64::new(0),
            spin: spin_budget(threads),
            #[cfg(feature = "audit-disjoint")]
            claims: fm_audit::ClaimLog::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fm-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads (and of job invocations per epoch).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Dispatches one epoch: every worker `t` in `0..threads()` calls
    /// `job(t)` exactly once; returns when all have finished.  Does not
    /// allocate.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any worker's job panicked.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        self.run_labeled("unlabeled", job);
    }

    /// [`WorkerPool::run`] with a stage label: if a worker's job
    /// panics, the re-raised panic names the worker index and `stage`,
    /// so a crash in an 8-thread 80-step run points at the failing
    /// stage instead of a bare "job panicked".
    ///
    /// A panicked epoch never publishes partial state to later stages:
    /// every stage writes through disjoint slices into its *output*
    /// arrays only, and the re-raise happens before the engine swaps
    /// those outputs in — the walker arrays a subsequent run observes
    /// are the untouched inputs.
    pub fn run_labeled(&self, stage: &'static str, job: &(dyn Fn(usize) + Sync)) {
        let threads = self.handles.len();
        // SAFETY: the job outlives this call, and workers dereference
        // the pointer only while this call blocks below (it returns only
        // once `remaining` hits zero), so the erased lifetime is sound.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            self.shared.remaining.store(threads, Ordering::Release);
            st.job = Some(ptr);
            st.epoch += 1;
            self.shared.epoch_hint.store(st.epoch, Ordering::Release);
            self.shared.work.notify_all();
        }
        // Spin briefly — stage jobs are typically short — then park.
        let mut spins = 0u32;
        while spins < self.shared.spin && self.shared.remaining.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
            spins += 1;
        }
        if self.shared.remaining.load(Ordering::Acquire) != 0 {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            while self.shared.remaining.load(Ordering::Acquire) != 0 {
                st = self.shared.done.wait(st).expect("pool lock poisoned");
            }
        }
        let panicked = self.shared.panicked.swap(0, Ordering::AcqRel);
        #[cfg(feature = "audit-disjoint")]
        {
            if panicked == 0 {
                // Panics with both claimants on any cross-worker overlap
                // among this epoch's DisjointSlice claims.
                self.shared.claims.drain_and_check(stage);
            } else {
                // A panicked epoch left partial claims; checking them
                // would only add noise to the re-raise below.
                self.shared.claims.drain_discard();
            }
        }
        if panicked != 0 {
            panic!(
                "worker pool job panicked (worker {}, stage {stage})",
                panicked - 1
            );
        }
    }

    /// Snapshot of the pool's overhead counters.
    pub fn stats(&self) -> PoolStats {
        let epochs = self.shared.state.lock().expect("pool lock poisoned").epoch;
        PoolStats {
            spawned: self.handles.len(),
            epochs,
            idle: Duration::from_nanos(self.shared.idle_ns.load(Ordering::Relaxed)),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            st.shutdown = true;
            self.shared.epoch_hint.store(u64::MAX, Ordering::Release);
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    // Bind this thread to the pool's claim log so DisjointSlice can
    // attribute its claims to worker `index`.
    #[cfg(feature = "audit-disjoint")]
    fm_audit::disjoint::set_worker(Arc::clone(&shared.claims), index);
    let mut seen_epoch = 0u64;
    loop {
        let wait_start = Instant::now();
        let mut spins = 0u32;
        while spins < shared.spin && shared.epoch_hint.load(Ordering::Acquire) == seen_epoch {
            std::hint::spin_loop();
            spins += 1;
        }
        let job = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            while st.epoch == seen_epoch && !st.shutdown {
                st = shared.work.wait(st).expect("pool lock poisoned");
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.job.expect("epoch published without a job")
        };
        shared
            .idle_ns
            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // SAFETY: the coordinator blocks in `run` until `remaining`
        // reaches zero, keeping the job referent alive for this call.
        let job = unsafe { &*job.0 };
        if catch_unwind(AssertUnwindSafe(|| job(index))).is_err() {
            // Record the *first* panicker only; later ones lose the race
            // and the message stays deterministic for a single failure.
            let _ = shared.panicked.compare_exchange(
                0,
                index + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last finisher: lock so the notify cannot race ahead of the
            // coordinator's check-then-wait.
            let _guard = shared.state.lock().expect("pool lock poisoned");
            shared.done.notify_all();
        }
    }
}

/// A raw-pointer view of a slice allowing writes at *disjoint* indices
/// (or to disjoint sub-ranges) from multiple pool workers.
///
/// This is the lock-free sharing primitive behind the parallel shuffle
/// scatter and the per-partition sample outputs: the coordinator
/// precomputes index sets that partition the slice, so no two workers
/// ever touch the same element — the paper's "threads work on disjoint
/// array areas, eliminating the need for locks".
pub struct DisjointSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the wrapper is just a pointer + length; every use site
// guarantees disjoint index sets per thread (see `par_scatter` and
// `sample_stage_parallel`).
unsafe impl<T: Send> Sync for DisjointSlice<T> {}
// SAFETY: as above — ownership of the elements stays with the borrowed
// slice; the wrapper only brokers disjoint access.
unsafe impl<T: Send> Send for DisjointSlice<T> {}

impl<T> DisjointSlice<T> {
    /// Wraps a mutable slice for the duration of one dispatch.
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows the sub-range `[start, start + len)` mutably.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and no other thread may concurrently
    /// access any element of it.
    #[allow(clippy::mut_from_ref)] // disjointness is the caller contract
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start.checked_add(len).is_some_and(|end| end <= self.len));
        #[cfg(feature = "audit-disjoint")]
        fm_audit::disjoint::claim(
            self.ptr as usize + start * std::mem::size_of::<T>(),
            len * std::mem::size_of::<T>(),
        );
        // SAFETY: in-bounds and exclusive per the caller contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

impl<T: Copy> DisjointSlice<T> {
    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and no other thread may concurrently
    /// access the same index.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        #[cfg(feature = "audit-disjoint")]
        fm_audit::disjoint::claim(
            self.ptr as usize + index * std::mem::size_of::<T>(),
            std::mem::size_of::<T>(),
        );
        // SAFETY: in-bounds and exclusive per the caller contract.
        unsafe { *self.ptr.add(index) = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_covers_every_worker_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn epochs_reuse_the_same_threads() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(&|t| {
                sum.fetch_add(t as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 100 * (1 + 2 + 3));
        let stats = pool.stats();
        assert_eq!(stats.spawned, 3, "threads spawned once, not per epoch");
        assert_eq!(stats.epochs, 100);
    }

    #[test]
    fn borrows_stack_data_into_jobs() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 4000];
        let shared = DisjointSlice::new(&mut data);
        pool.run(&|t| {
            // SAFETY: each worker owns a disjoint 1000-element range.
            let chunk = unsafe { shared.slice_mut(t * 1000, 1000) };
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (t * 1000 + i) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicUsize::new(0);
        pool.run(&|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_propagates_to_coordinator() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|t| {
                if t == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "coordinator must observe the panic");
        // The pool stays usable after a job panic.
        let ok = AtomicUsize::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panic_message_names_worker_and_stage() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_labeled("shuffle-scatter", &|t| {
                if t == 2 {
                    panic!("boom");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("worker 2") && msg.contains("stage shuffle-scatter"),
            "panic message must name the worker and stage, got: {msg}"
        );
    }

    #[test]
    fn stats_track_idle_time() {
        let pool = WorkerPool::new(2);
        pool.run(&|_| {});
        std::thread::sleep(Duration::from_millis(5));
        pool.run(&|_| {});
        // Workers idled at least the sleep (times two workers).
        assert!(pool.stats().idle >= Duration::from_millis(5));
    }

    #[test]
    fn disjoint_slice_point_writes() {
        let mut data = vec![0u32; 8];
        let shared = DisjointSlice::new(&mut data);
        assert_eq!(shared.len(), 8);
        assert!(!shared.is_empty());
        // SAFETY: single-threaded, distinct indices.
        unsafe {
            shared.write(3, 30);
            shared.write(5, 50);
        }
        assert_eq!(data[3], 30);
        assert_eq!(data[5], 50);
    }
}
