//! Vertex partitions and the walker-location → partition lookup.

use fm_graph::{Csr, FixedDegreeSlab, VertexId};

use crate::DEAD;

/// The per-partition edge-sampling policy (paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplePolicy {
    /// Pre-sampling: per-vertex pre-sampled edge buffers of size `d(v)`,
    /// refilled in batch and consumed sequentially by co-located walkers.
    PreSample,
    /// Direct sampling: throw the dice on the spot against the (often
    /// short) adjacency list.
    Direct,
}

impl SamplePolicy {
    /// Short label used by reports ("PS" / "DS").
    pub fn tag(self) -> &'static str {
        match self {
            SamplePolicy::PreSample => "PS",
            SamplePolicy::Direct => "DS",
        }
    }
}

/// One contiguous vertex partition of the degree-sorted graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// First vertex (inclusive, sorted ID space).
    pub start: VertexId,
    /// Last vertex (exclusive).
    pub end: VertexId,
    /// Assigned sampling policy.
    pub policy: SamplePolicy,
    /// Degree group this partition was cut from.
    pub group: usize,
    /// Total out-edges owned by the partition's vertices.
    pub edges: usize,
    /// `Some(d)` when every vertex in the partition has out-degree `d`
    /// (enables the offset-free fixed-degree layout).
    pub uniform_degree: Option<usize>,
}

impl Partition {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Average out-degree.
    #[inline]
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edges as f64 / self.vertex_count() as f64
        }
    }

    /// Bytes of graph data a DS task must keep hot: the partition's
    /// edges (4 B each) plus, for irregular partitions, CSR offsets.
    pub fn ds_working_set_bytes(&self) -> usize {
        let edges = self.edges * std::mem::size_of::<VertexId>();
        let offsets = if self.uniform_degree.is_some() {
            0
        } else {
            (self.vertex_count() + 1) * std::mem::size_of::<usize>()
        };
        edges + offsets
    }

    /// Bytes a PS task must keep hot: one active cache line per vertex
    /// of pre-sampled edges plus the per-vertex buffer cursor.
    pub fn ps_working_set_bytes(&self, line_bytes: usize) -> usize {
        self.vertex_count() * (line_bytes + std::mem::size_of::<u32>())
    }

    /// Examines the graph and fills in `edges` / `uniform_degree`.
    pub fn annotate(graph: &Csr, start: VertexId, end: VertexId) -> (usize, Option<usize>) {
        debug_assert!(start < end);
        let d0 = graph.degree(start);
        let mut edges = 0usize;
        let mut uniform = true;
        for v in start..end {
            let d = graph.degree(v);
            edges += d;
            uniform &= d == d0;
        }
        (edges, uniform.then_some(d0))
    }

    /// Builds the fixed-degree slab for a uniform partition, if any.
    pub fn slab(&self, graph: &Csr) -> Option<FixedDegreeSlab> {
        self.uniform_degree?;
        FixedDegreeSlab::from_csr(graph, self.start, self.vertex_count())
    }
}

/// Maps a vertex ID to its partition index.
///
/// Two lookup paths exist.  DP plans obey the paper's "power-of-2 for
/// easy indexing" rule — equal power-of-two groups, each cut into equal
/// power-of-two VPs — which admits a branch-free O(1) lookup of two
/// shifts and two tiny table reads ([`PartitionMap::with_pow2_structure`]).
/// Arbitrary partitionings (the uniform/manual strategies) fall back to
/// a binary search over the starts table, which is at most the shuffle
/// budget (2048 entries ≈ 8 KiB) and therefore L1-resident.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    /// `starts[i]` = first vertex of partition `i`; ends with `|V|`.
    starts: Vec<VertexId>,
    /// O(1) lookup tables for power-of-two-structured plans.
    fast: Option<FastLookup>,
}

#[derive(Debug, Clone)]
struct FastLookup {
    /// `log2` of the (power-of-two) group vertex count.
    group_shift: u32,
    /// Per-group `log2` of the VP vertex count.
    vp_shift: Vec<u32>,
    /// Per-group index of its first partition.
    vp_base: Vec<u32>,
}

impl PartitionMap {
    /// Builds the map from an ordered partition list.
    ///
    /// # Panics
    ///
    /// Panics if the partitions do not tile `[0, vertex_count)`
    /// contiguously and in order.
    pub fn new(partitions: &[Partition], vertex_count: usize) -> Self {
        assert!(!partitions.is_empty(), "need at least one partition");
        assert_eq!(partitions[0].start, 0, "partitions must start at 0");
        for w in partitions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "partitions must be contiguous");
        }
        assert_eq!(
            partitions.last().expect("non-empty").end as usize,
            vertex_count,
            "partitions must cover all vertices"
        );
        let mut starts: Vec<VertexId> = partitions.iter().map(|p| p.start).collect();
        starts.push(vertex_count as VertexId);
        Self { starts, fast: None }
    }

    /// Builds the map with the O(1) power-of-two lookup.
    ///
    /// `group_size` is the (power-of-two) vertex count of every group
    /// except a possibly ragged last one; `vp_sizes[g]` is group `g`'s
    /// VP size.  The structure is verified against the partition list
    /// at every partition boundary; a mismatch panics (it would be a
    /// planner bug).
    ///
    /// # Panics
    ///
    /// Panics if the partitions do not tile `[0, vertex_count)` or the
    /// claimed structure disagrees with them.
    pub fn with_pow2_structure(
        partitions: &[Partition],
        vertex_count: usize,
        group_size: usize,
        vp_sizes: &[usize],
    ) -> Self {
        assert!(group_size.is_power_of_two(), "group size must be 2^k");
        let mut map = Self::new(partitions, vertex_count);
        let group_shift = group_size.trailing_zeros();
        let mut vp_shift = Vec::with_capacity(vp_sizes.len());
        let mut vp_base = Vec::with_capacity(vp_sizes.len());
        let mut base = 0u32;
        for (g, &vp) in vp_sizes.iter().enumerate() {
            let gstart = g * group_size;
            let glen = group_size.min(vertex_count - gstart);
            // A non-power-of-two VP size only arises for a single-VP
            // ragged last group, where any shift >= log2(len) works.
            let shift = if vp.is_power_of_two() {
                vp.trailing_zeros()
            } else {
                assert!(vp >= glen, "non-pow2 VP must cover its group");
                group_shift
            };
            vp_shift.push(shift);
            vp_base.push(base);
            base += (glen >> shift) as u32 + u32::from(glen & ((1 << shift) - 1) != 0);
        }
        assert_eq!(base as usize, partitions.len(), "structure mismatch");
        map.fast = Some(FastLookup {
            group_shift,
            vp_shift,
            vp_base,
        });
        // Verify the fast path against the authoritative starts table at
        // every partition boundary.
        for (i, p) in partitions.iter().enumerate() {
            assert_eq!(map.partition_of(p.start), i, "fast lookup start mismatch");
            assert_eq!(map.partition_of(p.end - 1), i, "fast lookup end mismatch");
        }
        map
    }

    /// Number of partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Returns `true` when the map holds no partitions (never
    /// constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shuffle bins: one per partition plus the dead bin.
    #[inline]
    pub fn bins(&self) -> usize {
        self.len() + 1
    }

    /// Partition index of vertex `v`; terminated walkers ([`DEAD`]) map
    /// to the extra trailing dead bin.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        if v == DEAD {
            return self.len();
        }
        debug_assert!((v as usize) < *self.starts.last().expect("non-empty") as usize + 1);
        if let Some(fast) = &self.fast {
            let g = ((v as usize) >> fast.group_shift).min(fast.vp_shift.len() - 1);
            let local = v as usize - (g << fast.group_shift);
            return fast.vp_base[g] as usize + (local >> fast.vp_shift[g]);
        }
        // partition_point returns the first start > v; minus one is v's
        // partition.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// The vertex range `[start, end)` of partition `i`.
    #[inline]
    pub fn range(&self, i: usize) -> (VertexId, VertexId) {
        (self.starts[i], self.starts[i + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    fn parts(bounds: &[(u32, u32)]) -> Vec<Partition> {
        bounds
            .iter()
            .map(|&(s, e)| Partition {
                start: s,
                end: e,
                policy: SamplePolicy::Direct,
                group: 0,
                edges: 0,
                uniform_degree: None,
            })
            .collect()
    }

    #[test]
    fn partition_of_finds_ranges() {
        let m = PartitionMap::new(&parts(&[(0, 4), (4, 6), (6, 10)]), 10);
        assert_eq!(m.partition_of(0), 0);
        assert_eq!(m.partition_of(3), 0);
        assert_eq!(m.partition_of(4), 1);
        assert_eq!(m.partition_of(5), 1);
        assert_eq!(m.partition_of(6), 2);
        assert_eq!(m.partition_of(9), 2);
    }

    #[test]
    fn dead_walkers_map_to_trailing_bin() {
        let m = PartitionMap::new(&parts(&[(0, 10)]), 10);
        assert_eq!(m.partition_of(DEAD), 1);
        assert_eq!(m.bins(), 2);
    }

    #[test]
    fn range_round_trips() {
        let m = PartitionMap::new(&parts(&[(0, 4), (4, 10)]), 10);
        assert_eq!(m.range(0), (0, 4));
        assert_eq!(m.range(1), (4, 10));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_rejected() {
        let _ = PartitionMap::new(&parts(&[(0, 4), (5, 10)]), 10);
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn short_coverage_rejected() {
        let _ = PartitionMap::new(&parts(&[(0, 4)]), 10);
    }

    #[test]
    fn pow2_fast_lookup_matches_binary_search() {
        // 2 groups of 8 vertices; group 0 cut into VPs of 2, group 1
        // into VPs of 4; total 6 partitions over 16 vertices.
        let bounds = [(0u32, 2u32), (2, 4), (4, 6), (6, 8), (8, 12), (12, 16)];
        let parts = parts(&bounds);
        let slow = PartitionMap::new(&parts, 16);
        let fast = PartitionMap::with_pow2_structure(&parts, 16, 8, &[2, 4]);
        for v in 0..16u32 {
            assert_eq!(fast.partition_of(v), slow.partition_of(v), "vertex {v}");
        }
        assert_eq!(fast.partition_of(DEAD), 6);
    }

    #[test]
    fn pow2_fast_lookup_handles_ragged_last_group() {
        // Group size 8 over 13 vertices: last group has 5 vertices, cut
        // at VP size 4 -> partitions (8,12),(12,13).
        let bounds = [(0u32, 4u32), (4, 8), (8, 12), (12, 13)];
        let parts = parts(&bounds);
        let slow = PartitionMap::new(&parts, 13);
        let fast = PartitionMap::with_pow2_structure(&parts, 13, 8, &[4, 4]);
        for v in 0..13u32 {
            assert_eq!(fast.partition_of(v), slow.partition_of(v), "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "structure mismatch")]
    fn pow2_structure_mismatch_rejected() {
        let parts = parts(&[(0, 8), (8, 16)]);
        // Claims VPs of 2 (8 partitions) but only 2 exist.
        let _ = PartitionMap::with_pow2_structure(&parts, 16, 8, &[2, 2]);
    }

    #[test]
    fn annotate_detects_uniform_degree() {
        let g = synth::regular_ring(16, 4);
        let (edges, uniform) = Partition::annotate(&g, 0, 16);
        assert_eq!(edges, 64);
        assert_eq!(uniform, Some(4));

        let star = synth::star(8);
        let (edges, uniform) = Partition::annotate(&star, 0, 8);
        assert_eq!(edges, 14);
        assert_eq!(uniform, None);
        // The leaf range alone is uniform degree-1.
        let (_, uniform_leaves) = Partition::annotate(&star, 1, 8);
        assert_eq!(uniform_leaves, Some(1));
    }

    #[test]
    fn working_set_sizes() {
        let g = synth::regular_ring(16, 4);
        let (edges, uniform) = Partition::annotate(&g, 0, 16);
        let p = Partition {
            start: 0,
            end: 16,
            policy: SamplePolicy::Direct,
            group: 0,
            edges,
            uniform_degree: uniform,
        };
        // Uniform: just the 64 targets.
        assert_eq!(p.ds_working_set_bytes(), 64 * 4);
        // PS: one line + cursor per vertex.
        assert_eq!(p.ps_working_set_bytes(64), 16 * 68);
        // Irregular variant pays for offsets.
        let q = Partition {
            uniform_degree: None,
            ..p.clone()
        };
        assert!(q.ds_working_set_bytes() > p.ds_working_set_bytes());
    }

    #[test]
    fn slab_built_only_for_uniform() {
        let g = synth::regular_ring(8, 2);
        let (edges, uniform) = Partition::annotate(&g, 0, 8);
        let p = Partition {
            start: 0,
            end: 8,
            policy: SamplePolicy::Direct,
            group: 0,
            edges,
            uniform_degree: uniform,
        };
        assert!(p.slab(&g).is_some());
        let q = Partition {
            uniform_degree: None,
            ..p
        };
        assert!(q.slab(&g).is_none());
    }
}
