//! Walk algorithms (transition-probability specifications) and stop rules.

/// Maximum metapath pattern length (phases stored inline, `Copy`).
pub const MAX_METAPATH_LEN: usize = 8;

/// A fixed cyclic sequence of edge-type labels for metapath walks.
///
/// Stored inline (up to [`MAX_METAPATH_LEN`] phases) so the enum that
/// carries it stays `Copy` and can be threaded through the hot paths by
/// value, like every other algorithm parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetapathPattern {
    labels: [u8; MAX_METAPATH_LEN],
    len: u8,
}

impl MetapathPattern {
    /// Builds a pattern from a non-empty label sequence.
    ///
    /// Returns `None` when `labels` is empty or longer than
    /// [`MAX_METAPATH_LEN`].
    pub fn new(labels: &[u8]) -> Option<Self> {
        if labels.is_empty() || labels.len() > MAX_METAPATH_LEN {
            return None;
        }
        let mut buf = [0u8; MAX_METAPATH_LEN];
        buf[..labels.len()].copy_from_slice(labels);
        Some(Self {
            labels: buf,
            len: labels.len() as u8,
        })
    }

    /// Number of phases in the pattern.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Patterns are validated non-empty; this always returns `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The label required at walk iteration `iter` (cyclic).
    #[inline]
    pub fn label_at(&self, iter: usize) -> u8 {
        self.labels[iter % self.len as usize]
    }

    /// The phase labels as a slice.
    #[inline]
    pub fn labels(&self) -> &[u8] {
        &self.labels[..self.len as usize]
    }
}

/// The transition-probability specification of a walk.
///
/// The paper evaluates DeepWalk (first-order, uniform) and node2vec
/// (second-order); [`WalkAlgorithm::Weighted`] covers static per-edge
/// weights, the other classical first-order case.  The remaining
/// variants are the kernels behind the programmable-walk API
/// (`flashmob::program`): personalized PageRank with restart, walks
/// that terminate on returning to their origin, and metapath walks
/// over typed edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkAlgorithm {
    /// First-order uniform walk (DeepWalk).
    DeepWalk,
    /// First-order walk biased by the graph's static edge weights.
    Weighted,
    /// Second-order node2vec walk.
    ///
    /// Given previous vertex `t` and current vertex `u`, the unnormalized
    /// weight of moving to candidate `x` is `1/p` if `x == t`, `1` if
    /// `x` is adjacent to `t`, and `1/q` otherwise.  `p` interpolates
    /// toward BFS-like revisiting, `q` toward DFS-like exploration.
    Node2Vec {
        /// Return parameter.
        p: f64,
        /// In-out parameter.
        q: f64,
    },
    /// Personalized PageRank: at every step the walker teleports back to
    /// its origin with probability `alpha`, otherwise takes a uniform
    /// edge.  The origin is per-walker state (the walker's start vertex).
    Ppr {
        /// Restart probability in `(0, 1]`.
        alpha: f64,
    },
    /// Uniform walk that records its return to the origin and dies on
    /// the following iteration (temporal/early-exit family): per-walker
    /// termination driven by per-walker state.
    EarlyExit,
    /// First-order walk constrained to typed edges: at iteration `i`
    /// only edges labeled `pattern.label_at(i)` are admissible, uniform
    /// among them; a walker with no admissible edge terminates.
    Metapath {
        /// The cyclic phase pattern.
        pattern: MetapathPattern,
    },
}

impl WalkAlgorithm {
    /// Whether edge sampling needs the walker's previous position.
    pub fn is_second_order(&self) -> bool {
        matches!(self, WalkAlgorithm::Node2Vec { .. })
    }

    /// Whether the walker carries per-walker program state (its origin)
    /// through the shuffle stages.
    pub fn is_stateful(&self) -> bool {
        matches!(self, WalkAlgorithm::Ppr { .. } | WalkAlgorithm::EarlyExit)
    }

    /// Whether individual walkers can die before the step budget runs
    /// out, independent of any [`StopRule::Geometric`] coin.
    pub fn can_terminate_early(&self) -> bool {
        matches!(
            self,
            WalkAlgorithm::EarlyExit | WalkAlgorithm::Metapath { .. }
        )
    }

    /// Whether sampling consults the graph's per-edge type labels.
    pub fn uses_edge_labels(&self) -> bool {
        matches!(self, WalkAlgorithm::Metapath { .. })
    }

    /// Stable short name, matching the CLI `--program` spelling.
    pub fn name(&self) -> &'static str {
        match self {
            WalkAlgorithm::DeepWalk => "deepwalk",
            WalkAlgorithm::Weighted => "weighted",
            WalkAlgorithm::Node2Vec { .. } => "node2vec",
            WalkAlgorithm::Ppr { .. } => "ppr",
            WalkAlgorithm::EarlyExit => "early-exit",
            WalkAlgorithm::Metapath { .. } => "metapath",
        }
    }

    /// The maximum unnormalized node2vec weight (rejection bound).
    ///
    /// # Panics
    ///
    /// Panics if called on a first-order algorithm.
    pub fn node2vec_bound(&self) -> f64 {
        match self {
            WalkAlgorithm::Node2Vec { p, q } => (1.0 / p).max(1.0).max(1.0 / q),
            _ => panic!("node2vec_bound on a first-order algorithm"),
        }
    }
}

/// When walkers terminate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Every walker takes exactly this many steps.
    FixedSteps(usize),
    /// After each step a walker exits with probability `exit_prob`
    /// (PageRank-style); `max_steps` bounds the episode length.
    Geometric {
        /// Per-step exit probability in `(0, 1)`.
        exit_prob: f64,
        /// Hard upper bound on steps.
        max_steps: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_classification() {
        assert!(!WalkAlgorithm::DeepWalk.is_second_order());
        assert!(!WalkAlgorithm::Weighted.is_second_order());
        assert!(WalkAlgorithm::Node2Vec { p: 1.0, q: 1.0 }.is_second_order());
    }

    #[test]
    fn node2vec_bound_covers_all_cases() {
        let a = WalkAlgorithm::Node2Vec { p: 0.25, q: 2.0 };
        assert_eq!(a.node2vec_bound(), 4.0);
        let b = WalkAlgorithm::Node2Vec { p: 4.0, q: 0.5 };
        assert_eq!(b.node2vec_bound(), 2.0);
        let c = WalkAlgorithm::Node2Vec { p: 2.0, q: 2.0 };
        assert_eq!(c.node2vec_bound(), 1.0);
    }

    #[test]
    #[should_panic(expected = "first-order")]
    fn bound_panics_for_first_order() {
        let _ = WalkAlgorithm::DeepWalk.node2vec_bound();
    }

    #[test]
    fn program_kernels_classify() {
        let ppr = WalkAlgorithm::Ppr { alpha: 0.15 };
        assert!(!ppr.is_second_order());
        assert!(ppr.is_stateful());
        assert!(!ppr.can_terminate_early());
        assert!(!ppr.uses_edge_labels());

        let ee = WalkAlgorithm::EarlyExit;
        assert!(ee.is_stateful());
        assert!(ee.can_terminate_early());

        let mp = WalkAlgorithm::Metapath {
            pattern: MetapathPattern::new(&[0, 1]).unwrap(),
        };
        assert!(!mp.is_stateful());
        assert!(mp.can_terminate_early());
        assert!(mp.uses_edge_labels());
        assert_eq!(mp.name(), "metapath");
    }

    #[test]
    fn metapath_pattern_cycles() {
        let p = MetapathPattern::new(&[3, 5, 7]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.label_at(0), 3);
        assert_eq!(p.label_at(4), 5);
        assert_eq!(p.labels(), &[3, 5, 7]);
        assert!(MetapathPattern::new(&[]).is_none());
        assert!(MetapathPattern::new(&[0; 9]).is_none());
    }
}
