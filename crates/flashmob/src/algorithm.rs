//! Walk algorithms (transition-probability specifications) and stop rules.

/// The transition-probability specification of a walk.
///
/// The paper evaluates DeepWalk (first-order, uniform) and node2vec
/// (second-order); [`WalkAlgorithm::Weighted`] covers static per-edge
/// weights, the other classical first-order case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkAlgorithm {
    /// First-order uniform walk (DeepWalk).
    DeepWalk,
    /// First-order walk biased by the graph's static edge weights.
    Weighted,
    /// Second-order node2vec walk.
    ///
    /// Given previous vertex `t` and current vertex `u`, the unnormalized
    /// weight of moving to candidate `x` is `1/p` if `x == t`, `1` if
    /// `x` is adjacent to `t`, and `1/q` otherwise.  `p` interpolates
    /// toward BFS-like revisiting, `q` toward DFS-like exploration.
    Node2Vec {
        /// Return parameter.
        p: f64,
        /// In-out parameter.
        q: f64,
    },
}

impl WalkAlgorithm {
    /// Whether edge sampling needs the walker's previous position.
    pub fn is_second_order(&self) -> bool {
        matches!(self, WalkAlgorithm::Node2Vec { .. })
    }

    /// The maximum unnormalized node2vec weight (rejection bound).
    ///
    /// # Panics
    ///
    /// Panics if called on a first-order algorithm.
    pub fn node2vec_bound(&self) -> f64 {
        match self {
            WalkAlgorithm::Node2Vec { p, q } => (1.0 / p).max(1.0).max(1.0 / q),
            _ => panic!("node2vec_bound on a first-order algorithm"),
        }
    }
}

/// When walkers terminate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Every walker takes exactly this many steps.
    FixedSteps(usize),
    /// After each step a walker exits with probability `exit_prob`
    /// (PageRank-style); `max_steps` bounds the episode length.
    Geometric {
        /// Per-step exit probability in `(0, 1)`.
        exit_prob: f64,
        /// Hard upper bound on steps.
        max_steps: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_classification() {
        assert!(!WalkAlgorithm::DeepWalk.is_second_order());
        assert!(!WalkAlgorithm::Weighted.is_second_order());
        assert!(WalkAlgorithm::Node2Vec { p: 1.0, q: 1.0 }.is_second_order());
    }

    #[test]
    fn node2vec_bound_covers_all_cases() {
        let a = WalkAlgorithm::Node2Vec { p: 0.25, q: 2.0 };
        assert_eq!(a.node2vec_bound(), 4.0);
        let b = WalkAlgorithm::Node2Vec { p: 4.0, q: 0.5 };
        assert_eq!(b.node2vec_bound(), 2.0);
        let c = WalkAlgorithm::Node2Vec { p: 2.0, q: 2.0 };
        assert_eq!(c.node2vec_bound(), 1.0);
    }

    #[test]
    #[should_panic(expected = "first-order")]
    fn bound_panics_for_first_order() {
        let _ = WalkAlgorithm::DeepWalk.node2vec_bound();
    }
}
