//! Out-of-core walking of disk-resident graphs (the paper's future work).
//!
//! Section 4.5 closes with: "[FlashMob's streaming results show] strong
//! promise for its future extension to walk disk-resident graphs at
//! cache speed", and Section 5.4 budgets it — streaming a larger graph
//! through DRAM every iteration would need ~5 GB/s, "below the
//! capability of today's commodity NVMe SSDs".
//!
//! This module implements that extension for first-order uniform walks:
//! the degree-sorted CSR lives in a file; only the offsets index and the
//! walker arrays stay in memory.  Each iteration shuffles walkers in
//! memory exactly as the in-memory engine does, then streams the
//! adjacency bytes of each partition *that currently hosts walkers* from
//! disk into a reusable buffer and direct-samples from it.  Because
//! walkers concentrate on the high-degree head (Table 2), cold
//! partitions are skipped and the realized read volume per iteration is
//! typically far below the file size — the sparse-access advantage the
//! shuffle buys.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fm_graph::relabel::{sort_by_degree, Relabeling};
use fm_graph::{Csr, GraphError, VertexId};
use fm_memsim::NullProbe;
use fm_recover::{
    load_latest, transient_io, with_retries, CheckpointSink, CheckpointSpec, FaultPolicy,
    FaultyFile, Fingerprint, RecoverError, RetryPolicy, WalkSnapshot,
};
use fm_rng::{Rng64, Xorshift64Star};
use fm_telemetry::{Stage, Telemetry, NO_PARTITION, NO_STEP};

use crate::output::WalkOutput;
use crate::shuffle::{ShuffleAddrs, ShuffleScratch, Shuffler};
use crate::walker::{initialize, WalkerInit};
use crate::{Partition, PartitionMap, SamplePolicy, WalkConfig, WalkError, DEAD};

const MAGIC: &[u8; 8] = b"FMDISK1\0";

/// A degree-sorted CSR graph whose targets array resides on disk.
///
/// The offsets index (`|V| + 1` words) stays in memory; adjacency bytes
/// are read on demand per partition.
#[derive(Debug)]
pub struct DiskGraph {
    path: PathBuf,
    offsets: Vec<usize>,
    relabel: Relabeling,
}

impl DiskGraph {
    /// Sorts `graph` by descending degree and writes its targets to
    /// `path`, returning the handle.
    pub fn create<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let at = |e: std::io::Error| GraphError::io_at(path, None, e);
        let (sorted, relabel) = sort_by_degree(graph);
        let file = File::create(path).map_err(at)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC).map_err(at)?;
        w.write_all(&(sorted.vertex_count() as u64).to_le_bytes())
            .map_err(at)?;
        w.write_all(&(sorted.edge_count() as u64).to_le_bytes())
            .map_err(at)?;
        for &o in sorted.offsets() {
            w.write_all(&(o as u64).to_le_bytes()).map_err(at)?;
        }
        for &t in sorted.targets() {
            w.write_all(&t.to_le_bytes()).map_err(at)?;
        }
        w.flush().map_err(at)?;
        Ok(Self {
            path: path.to_path_buf(),
            offsets: sorted.offsets().to_vec(),
            relabel,
        })
    }

    /// Opens an existing on-disk graph, loading only the offsets index.
    ///
    /// The header is validated against the actual file length before any
    /// allocation: a corrupt vertex count can claim an index far larger
    /// than the file (or than the address space), and must fail with a
    /// clean `Format` error instead of a panic or a wild allocation.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let mut f = File::open(path).map_err(|e| GraphError::io_at(path, None, e))?;
        let file_len = f
            .metadata()
            .map_err(|e| GraphError::io_at(path, None, e))?
            .len();
        let mut header = [0u8; 24];
        f.read_exact(&mut header)
            .map_err(|e| GraphError::io_at(path, Some(0), e))?;
        if &header[..8] != MAGIC {
            return Err(GraphError::Format("bad disk-graph magic".into()));
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&header[8..16]);
        let vcount64 = u64::from_le_bytes(word);
        word.copy_from_slice(&header[16..24]);
        let ecount64 = u64::from_le_bytes(word);
        let expect_len = vcount64
            .checked_add(1)
            .and_then(|v| v.checked_mul(8))
            .and_then(|idx| ecount64.checked_mul(4).and_then(|t| idx.checked_add(t)))
            .and_then(|payload| payload.checked_add(24))
            .filter(|&n| n <= usize::MAX as u64)
            .ok_or_else(|| {
                GraphError::Format(format!(
                    "disk-graph header counts overflow: {vcount64} vertices, {ecount64} edges"
                ))
            })?;
        if file_len != expect_len {
            return Err(GraphError::Format(format!(
                "disk graph is {file_len} bytes, header implies {expect_len}"
            )));
        }
        let vcount = vcount64 as usize;
        let mut raw = vec![0u8; (vcount + 1) * 8];
        f.read_exact(&mut raw)
            .map_err(|e| GraphError::io_at(path, Some(24), e))?;
        let offsets: Vec<usize> = raw
            .chunks_exact(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_le_bytes(w) as usize
            })
            .collect();
        if offsets.first() != Some(&0)
            || offsets.last() != Some(&(ecount64 as usize))
            || offsets.windows(2).any(|p| p[0] > p[1])
        {
            return Err(GraphError::Format(
                "disk-graph offsets index is not a monotone CSR".into(),
            ));
        }
        Ok(Self {
            path: path.to_path_buf(),
            offsets,
            relabel: Relabeling::identity(vcount),
        })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.offsets.last().map_or(0, |&o| o)
    }

    /// Out-degree of sorted-space vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted-space → original-ID mapping (identity for graphs
    /// opened from disk, which are already in sorted space).
    pub fn relabeling(&self) -> &Relabeling {
        &self.relabel
    }

    /// Byte offset of the targets array within the file.
    fn targets_base(&self) -> u64 {
        24 + (self.offsets.len() as u64) * 8
    }

    /// Reads the adjacency bytes for the vertex range `[start, end)`
    /// into `buf` (resized to fit); returns the bytes read.
    ///
    /// Generic over the reader so the fault-injection wrapper slots in
    /// under it; IO errors carry the file path and byte offset.
    fn read_partition<R: Read + Seek>(
        &self,
        file: &mut R,
        start: VertexId,
        end: VertexId,
        buf: &mut Vec<VertexId>,
    ) -> Result<usize, GraphError> {
        let lo = self.offsets[start as usize];
        let hi = self.offsets[end as usize];
        let bytes = (hi - lo) * 4;
        buf.resize(hi - lo, 0);
        let off = self.targets_base() + (lo as u64) * 4;
        file.seek(SeekFrom::Start(off))
            .map_err(|e| GraphError::io_at(&self.path, Some(off), e))?;
        // SAFETY-free byte view: read into a u8 scratch then decode;
        // avoids unsafe transmutes at a small copy cost.
        let mut raw = vec![0u8; bytes];
        file.read_exact(&mut raw)
            .map_err(|e| GraphError::io_at(&self.path, Some(off), e))?;
        for (slot, c) in buf.iter_mut().zip(raw.chunks_exact(4)) {
            let mut le = [0u8; 4];
            le.copy_from_slice(c);
            *slot = VertexId::from_le_bytes(le);
        }
        Ok(bytes)
    }
}

/// Statistics of one out-of-core run.
#[derive(Debug, Clone, Default)]
pub struct OocStats {
    /// Live walker-steps executed.
    pub steps_taken: u64,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Bytes of adjacency data streamed from disk.
    pub bytes_read: u64,
    /// Time spent in disk reads.
    pub read_time: Duration,
    /// Partitions whose read was skipped because no walker was present.
    pub partitions_skipped: u64,
    /// Partition reads performed.
    pub partitions_read: u64,
    /// Transient IO errors absorbed by the retry layer (disk reads and
    /// checkpoint writes).
    pub io_retries: u64,
}

impl OocStats {
    /// Average nanoseconds per walker-step.
    pub fn per_step_ns(&self) -> f64 {
        if self.steps_taken == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.steps_taken as f64
    }

    /// Average adjacency bytes streamed per walker-step.
    pub fn bytes_per_step(&self) -> f64 {
        if self.steps_taken == 0 {
            return 0.0;
        }
        self.bytes_read as f64 / self.steps_taken as f64
    }
}

/// Robustness options of an out-of-core run: checkpointing, fault
/// injection, retries, and resume.
#[derive(Debug, Default)]
pub struct OocOptions {
    /// Write crash-consistent checkpoints per this spec.
    pub checkpoint: Option<CheckpointSpec>,
    /// Inject seeded faults into the disk-graph read stream (tests).
    pub fault: Option<FaultPolicy>,
    /// Retry policy for transient disk-read errors.
    pub retry: RetryPolicy,
    /// Resume from the latest checkpoint in this directory instead of
    /// starting fresh.
    pub resume_from: Option<PathBuf>,
}

impl OocOptions {
    /// Enables checkpointing per `spec`.
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Injects seeded faults into disk-graph reads.
    pub fn fault(mut self, policy: FaultPolicy) -> Self {
        self.fault = Some(policy);
        self
    }

    /// Sets the transient-read retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Resumes from the latest checkpoint in `dir`.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(dir.into());
        self
    }
}

/// Walks a disk-resident graph with first-order uniform (DeepWalk)
/// semantics.
///
/// `partition_budget_bytes` bounds each partition's adjacency bytes (and
/// therefore the streaming buffer); the paper's analysis suggests the L3
/// capacity.  Only [`crate::WalkAlgorithm::DeepWalk`] is supported out
/// of core.
pub fn run_ooc(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
) -> Result<(WalkOutput, OocStats), WalkError> {
    run_ooc_traced(disk, config, partition_budget_bytes, &mut Telemetry::off())
}

/// [`run_ooc`] with telemetry: Shuffle/Sample spans per iteration, an
/// Io span per partition read, per-partition counters (steps plus the
/// actual adjacency bytes streamed from disk), and heartbeat ticks.
pub fn run_ooc_traced(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
    tel: &mut Telemetry,
) -> Result<(WalkOutput, OocStats), WalkError> {
    run_ooc_with(
        disk,
        config,
        partition_budget_bytes,
        &OocOptions::default(),
        tel,
    )
}

/// Fingerprint of everything that determines the out-of-core chain;
/// the partition budget is included because it fixes the partition
/// layout and therefore the per-partition RNG stream assignment.
fn ooc_config_tag(config: &WalkConfig, partition_budget_bytes: usize) -> u64 {
    let mut fp = Fingerprint::new();
    fp.fold_u64(0x00C0_FEED) // domain separator: out-of-core engine
        .fold_u64(config.walkers as u64)
        .fold_u64(config.seed)
        .fold_u64(config.max_steps() as u64)
        .fold_u64(config.record_paths as u64)
        .fold_u64(partition_budget_bytes as u64);
    match &config.init {
        WalkerInit::UniformVertex => {
            fp.fold_u64(1);
        }
        WalkerInit::UniformEdge => {
            fp.fold_u64(2);
        }
        WalkerInit::EveryVertex => {
            fp.fold_u64(3);
        }
        WalkerInit::Fixed(starts) => {
            fp.fold_u64(4).fold_u64(starts.len() as u64);
            for &s in starts {
                fp.fold_u64(s as u64);
            }
        }
    }
    fp.value()
}

/// Fingerprint of the disk graph's shape.
fn ooc_graph_tag(disk: &DiskGraph) -> u64 {
    let mut fp = Fingerprint::new();
    fp.fold_u64(disk.vertex_count() as u64)
        .fold_u64(disk.edge_count() as u64);
    for &o in &disk.offsets {
        fp.fold_u64(o as u64);
    }
    fp.value()
}

/// [`run_ooc`] with the full robustness surface: crash-consistent
/// checkpoints, resume, seeded fault injection on the read stream, and
/// bounded retries with exponential backoff for transient IO errors.
pub fn run_ooc_with(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
    opts: &OocOptions,
    tel: &mut Telemetry,
) -> Result<(WalkOutput, OocStats), WalkError> {
    if !matches!(config.algorithm, crate::WalkAlgorithm::DeepWalk) {
        return Err(WalkError::Planning(
            "out-of-core walking supports DeepWalk only".into(),
        ));
    }
    if config.walkers == 0 {
        return Err(WalkError::NoWalkers);
    }
    let n = disk.vertex_count();
    if n == 0 {
        return Err(WalkError::EmptyGraph);
    }
    for v in 0..n {
        if disk.degree(v as VertexId) == 0 {
            return Err(WalkError::SinkVertex(v as VertexId));
        }
    }

    // Cut the sorted vertex array into partitions under the byte budget.
    let mut partitions = Vec::new();
    let mut start = 0usize;
    while start < n {
        let budget_edges = (partition_budget_bytes / 4).max(disk.degree(start as VertexId));
        let lo = disk.offsets[start];
        let mut end = start + 1;
        while end < n && disk.offsets[end + 1] - lo <= budget_edges {
            end += 1;
        }
        partitions.push(Partition {
            start: start as VertexId,
            end: end as VertexId,
            policy: SamplePolicy::Direct,
            group: 0,
            edges: disk.offsets[end] - lo,
            uniform_degree: None,
        });
        start = end;
    }
    let map = PartitionMap::new(&partitions, n);
    let shuffler = Shuffler::single_level(&map);

    let wall_start = Instant::now();
    let steps = config.max_steps();
    let walkers = config.walkers;
    let init = match &config.init {
        WalkerInit::Fixed(starts) => {
            WalkerInit::Fixed(starts.iter().map(|&v| disk.relabel.to_new(v)).collect())
        }
        other => other.clone(),
    };
    // Uniform-edge init needs degrees only, which we have in memory.
    let mut w = match init {
        WalkerInit::UniformEdge => {
            let e = disk.edge_count();
            let mut rng = Xorshift64Star::new(config.seed);
            (0..walkers)
                .map(|_| {
                    let edge = rng.gen_index(e);
                    (disk.offsets.partition_point(|&o| o <= edge) - 1) as VertexId
                })
                .collect()
        }
        other => {
            // Vertex-based inits need no adjacency; a degree-1 dummy CSR
            // carries the vertex count.
            let dummy = Csr::from_parts(
                (0..=n).collect(),
                (0..n).map(|v| v as VertexId).collect(),
                None,
            )
            .expect("dummy CSR");
            initialize(&dummy, &other, walkers, config.seed)
        }
    };
    let mut w_next = vec![0 as VertexId; walkers];
    let mut sw = vec![0 as VertexId; walkers];
    let mut snext = vec![0 as VertexId; walkers];
    let mut scratch = ShuffleScratch::default();
    let mut rows = Vec::new();
    if config.record_paths {
        rows.push(w.clone());
    }

    let mut stats = OocStats::default();
    let file = File::open(&disk.path).map_err(|e| GraphError::io_at(&disk.path, None, e))?;
    let mut file = match opts.fault {
        Some(policy) => FaultyFile::with_policy(file, policy),
        None => FaultyFile::passthrough(file),
    };
    let mut buf: Vec<VertexId> = Vec::new();
    let mut probe = NullProbe;
    if tel.is_on() {
        tel.ensure_partitions(partitions.len());
    }

    // Checkpoint sink and the tags that pin snapshots to this engine.
    let mut sink = opts
        .checkpoint
        .as_ref()
        .filter(|ck| ck.every > 0)
        .map(CheckpointSink::from_spec);
    let (config_tag, graph_tag) = if sink.is_some() || opts.resume_from.is_some() {
        (
            ooc_config_tag(config, partition_budget_bytes),
            ooc_graph_tag(disk),
        )
    } else {
        (0, 0)
    };

    // Resume: replace the fresh walker state with the snapshot's.
    let mut start_iter = 0usize;
    if let Some(dir) = opts.resume_from.as_ref() {
        let span = tel.is_on().then(|| tel.now_ns());
        let (_generation, snap) = load_latest(dir)?;
        let mismatch = |detail: String| WalkError::Recover(RecoverError::Mismatch { detail });
        if snap.config_tag != config_tag {
            return Err(mismatch(
                "snapshot was written under a different out-of-core configuration".into(),
            ));
        }
        if snap.graph_tag != graph_tag {
            return Err(mismatch(
                "snapshot was written against a different disk graph".into(),
            ));
        }
        if snap.seed != config.seed
            || snap.walkers as usize != walkers
            || snap.w.len() != walkers
            || snap.steps_total as usize != steps
            || snap.iter_next as usize > steps
            || snap.ps.len() != partitions.len()
        {
            return Err(mismatch("snapshot shape does not fit this run".into()));
        }
        if config.record_paths
            && (snap.rows.len() != snap.iter_next as usize + 1
                || snap.rows.iter().any(|r| r.len() != walkers))
        {
            return Err(mismatch("snapshot path rows are inconsistent".into()));
        }
        w = snap.w;
        if config.record_paths {
            rows = snap.rows;
        }
        stats.steps_taken = snap.steps_taken;
        start_iter = snap.iter_next as usize;
        if let Some(s) = span {
            tel.span_since(Stage::Recovery, s, NO_STEP, NO_PARTITION);
        }
    }

    for iter in start_iter..steps {
        let traced = tel.is_on();
        let span0 = traced.then(|| tel.now_ns());
        shuffler.count(&w, &mut scratch, ShuffleAddrs::default(), &mut probe);
        shuffler.scatter(
            &w,
            None,
            &mut sw,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut probe,
        );
        if let Some(s) = span0 {
            tel.span_since(Stage::Shuffle, s, iter as u32, NO_PARTITION);
        }
        let dead_start = scratch.offsets[partitions.len()] as usize;
        snext[dead_start..].fill(DEAD);

        for (pi, part) in partitions.iter().enumerate() {
            let (a, b) = (
                scratch.offsets[pi] as usize,
                scratch.offsets[pi + 1] as usize,
            );
            if a == b {
                stats.partitions_skipped += 1;
                continue;
            }
            // Stream this partition's adjacency bytes from disk.
            let io_span = traced.then(|| tel.now_ns());
            let t0 = Instant::now();
            // Transient read errors (injected or real) are retried with
            // exponential backoff; permanent ones escalate typed.
            let bytes = with_retries(
                &opts.retry,
                &mut stats.io_retries,
                |e: &GraphError| e.io_source().is_some_and(transient_io),
                || disk.read_partition(&mut file, part.start, part.end, &mut buf),
            )?;
            stats.read_time += t0.elapsed();
            stats.bytes_read += bytes as u64;
            stats.partitions_read += 1;
            if let Some(s) = io_span {
                tel.span_since(Stage::Io, s, iter as u32, pi as u32);
                tel.record_partition_bytes(pi, bytes as u64);
            }

            let sample_span = traced.then(|| tel.now_ns());
            let base = disk.offsets[part.start as usize];
            let mut rng =
                Xorshift64Star::new(crate::engine::partition_stream_id(config.seed, iter, pi));
            for j in a..b {
                let v = sw[j];
                let lo = disk.offsets[v as usize] - base;
                let d = disk.degree(v);
                let k = rng.gen_index(d);
                snext[j] = buf[lo + k];
                stats.steps_taken += 1;
            }
            if let Some(s) = sample_span {
                tel.span_since(Stage::Sample, s, iter as u32, pi as u32);
                tel.record_partition_step(pi, (b - a) as u64, false);
            }
        }
        tel.tick(iter + 1, steps, stats.steps_taken);

        shuffler.gather(
            &w,
            &snext,
            &mut w_next,
            None,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut probe,
        );
        std::mem::swap(&mut w, &mut w_next);
        if config.record_paths {
            rows.push(w.clone());
        }

        // Checkpoint at the epoch boundary: the walker array here is
        // exactly the input of iteration `iter + 1`.
        if let Some((ck, sink)) = opts.checkpoint.as_ref().zip(sink.as_mut()) {
            if (iter + 1) % ck.every == 0 {
                let span = tel.is_on().then(|| tel.now_ns());
                let generation = ((iter + 1) / ck.every) as u64;
                let snap = WalkSnapshot {
                    seed: config.seed,
                    iter_next: (iter + 1) as u64,
                    steps_total: steps as u64,
                    walkers: walkers as u64,
                    steps_taken: stats.steps_taken,
                    config_tag,
                    graph_tag,
                    per_partition_steps: vec![0; partitions.len()],
                    w: w.clone(),
                    prev: Vec::new(),
                    visits: Vec::new(),
                    ps: vec![None; partitions.len()],
                    rows: rows.clone(),
                };
                let retries_before = sink.retries;
                sink.save(generation, &snap)?;
                stats.io_retries += sink.retries - retries_before;
                if let Some(s) = span {
                    tel.span_since(Stage::Checkpoint, s, iter as u32, NO_PARTITION);
                }
                if ck.halt_after == Some(generation) {
                    return Err(WalkError::Halted { generation });
                }
            }
        }
    }

    tel.record_io_retries(stats.io_retries);
    stats.wall = wall_start.elapsed();
    let output = if config.record_paths {
        WalkOutput::new(rows, walkers, disk.relabel.clone())
    } else {
        WalkOutput::new(vec![w], walkers, disk.relabel.clone())
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fm_oocore_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn create_open_round_trip() {
        let g = synth::power_law(500, 2.0, 1, 50, 3);
        let path = temp_path("roundtrip.fmdisk");
        let created = DiskGraph::create(&g, &path).unwrap();
        let opened = DiskGraph::open(&path).unwrap();
        assert_eq!(created.vertex_count(), opened.vertex_count());
        assert_eq!(created.edge_count(), opened.edge_count());
        assert_eq!(created.offsets, opened.offsets);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_walk_stays_on_edges() {
        let g = synth::power_law(400, 2.0, 1, 40, 5);
        let path = temp_path("edges.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(200).steps(6).seed(9);
        let (out, stats) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(stats.steps_taken, 200 * 6);
        for path in out.paths() {
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_matches_in_memory_distribution() {
        let g = synth::power_law(600, 1.9, 1, 80, 7);
        let path = temp_path("dist.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(20_000).steps(10).seed(3);
        let (out, _) = run_ooc(&disk, &cfg, 16 << 10).unwrap();
        let ooc_visits = out.visit_counts(g.vertex_count());

        let engine = crate::FlashMob::new(&g, cfg.clone().record_visits(true)).unwrap();
        let (_, mem_stats) = engine.run_with_stats().unwrap();
        let mem_visits = mem_stats.visits_original(engine.relabeling()).unwrap();

        let (ta, tb) = (
            ooc_visits.iter().sum::<u64>() as f64,
            mem_visits.iter().sum::<u64>() as f64,
        );
        let l1: f64 = ooc_visits
            .iter()
            .zip(&mem_visits)
            .map(|(&a, &b)| (a as f64 / ta - b as f64 / tb).abs())
            .sum();
        assert!(l1 < 0.08, "visit distributions diverge: L1 = {l1:.4}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cold_partitions_are_skipped() {
        // All walkers pinned on the hub: tail partitions never read.
        let g = synth::star(10_000);
        let path = temp_path("skip.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk()
            .walkers(64)
            .steps(2)
            .seed(1)
            .init(WalkerInit::Fixed(vec![0]));
        let (_, stats) = run_ooc(&disk, &cfg, 512).unwrap();
        assert!(
            stats.partitions_skipped > stats.partitions_read,
            "read {} skipped {}",
            stats.partitions_read,
            stats.partitions_skipped
        );
        // Read volume far below 2 full passes over the file.
        assert!(stats.bytes_read < 2 * disk.edge_count() as u64 * 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_is_deterministic() {
        let g = synth::power_law(300, 2.0, 1, 30, 11);
        let path = temp_path("det.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(100).steps(5).seed(21);
        let (a, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        let (b, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(a.paths(), b.paths());
        std::fs::remove_file(path).ok();
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_ooc_records_io_spans_and_exact_counters() {
        let g = synth::power_law(400, 2.0, 1, 40, 5);
        let path = temp_path("traced.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(200).steps(6).seed(9);
        let mut tel = Telemetry::new();
        let (out, stats) = run_ooc_traced(&disk, &cfg, 8 << 10, &mut tel).unwrap();
        assert_eq!(tel.partition_steps_total(), stats.steps_taken);
        // One Io span per performed partition read, none for skips.
        assert_eq!(tel.stage(Stage::Io).spans, stats.partitions_read);
        // Counters include the streamed adjacency bytes.
        let counted: u64 = tel.partition_counters().iter().map(|c| c.edge_bytes).sum();
        assert!(counted >= stats.bytes_read);
        // Tracing must not perturb the chain.
        let (plain, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(plain.paths(), out.paths());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_deepwalk_rejected() {
        let g = synth::cycle(16);
        let path = temp_path("reject.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::node2vec(1.0, 2.0).walkers(10).steps(2);
        assert!(matches!(
            run_ooc(&disk, &cfg, 4 << 10),
            Err(WalkError::Planning(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
