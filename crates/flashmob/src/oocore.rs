//! Out-of-core walking of disk-resident graphs (the paper's future work).
//!
//! Section 4.5 closes with: "[FlashMob's streaming results show] strong
//! promise for its future extension to walk disk-resident graphs at
//! cache speed", and Section 5.4 budgets it — streaming a larger graph
//! through DRAM every iteration would need ~5 GB/s, "below the
//! capability of today's commodity NVMe SSDs".
//!
//! This module implements that extension for first-order uniform walks:
//! the degree-sorted CSR lives in a file; only the offsets index and the
//! walker arrays stay in memory.  Each iteration shuffles walkers in
//! memory exactly as the in-memory engine does, then streams the
//! adjacency bytes of each partition *that currently hosts walkers* from
//! disk into a reusable buffer and direct-samples from it.  Because
//! walkers concentrate on the high-degree head (Table 2), cold
//! partitions are skipped and the realized read volume per iteration is
//! typically far below the file size — the sparse-access advantage the
//! shuffle buys.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fm_graph::relabel::{sort_by_degree, Relabeling};
use fm_graph::{Csr, GraphError, VertexId};
use fm_memsim::NullProbe;
use fm_recover::{
    load_latest, transient_io, with_retries, BiBlockState, CheckpointSink, CheckpointSpec,
    FaultPolicy, FaultyFile, Fingerprint, RecoverError, RetryPolicy, WalkSnapshot,
};
use fm_rng::{Rng64, Xorshift64Star};
use fm_telemetry::{Stage, Telemetry, NO_PARTITION, NO_STEP};

use crate::output::WalkOutput;
use crate::shuffle::{ShuffleAddrs, ShuffleScratch, Shuffler};
use crate::walker::{initialize, WalkerInit};
use crate::{Partition, PartitionMap, SamplePolicy, WalkConfig, WalkError, DEAD};

const MAGIC: &[u8; 8] = b"FMDISK1\0";

/// A degree-sorted CSR graph whose targets array resides on disk.
///
/// The offsets index (`|V| + 1` words) stays in memory; adjacency bytes
/// are read on demand per partition.
#[derive(Debug)]
pub struct DiskGraph {
    path: PathBuf,
    offsets: Vec<usize>,
    relabel: Relabeling,
}

impl DiskGraph {
    /// Sorts `graph` by descending degree and writes its targets to
    /// `path`, returning the handle.
    pub fn create<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let at = |e: std::io::Error| GraphError::io_at(path, None, e);
        let (sorted, relabel) = sort_by_degree(graph);
        let file = File::create(path).map_err(at)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC).map_err(at)?;
        w.write_all(&(sorted.vertex_count() as u64).to_le_bytes())
            .map_err(at)?;
        w.write_all(&(sorted.edge_count() as u64).to_le_bytes())
            .map_err(at)?;
        for &o in sorted.offsets() {
            w.write_all(&(o as u64).to_le_bytes()).map_err(at)?;
        }
        for &t in sorted.targets() {
            w.write_all(&t.to_le_bytes()).map_err(at)?;
        }
        w.flush().map_err(at)?;
        Ok(Self {
            path: path.to_path_buf(),
            offsets: sorted.offsets().to_vec(),
            relabel,
        })
    }

    /// Opens an existing on-disk graph, loading only the offsets index.
    ///
    /// The header is validated against the actual file length before any
    /// allocation: a corrupt vertex count can claim an index far larger
    /// than the file (or than the address space), and must fail with a
    /// clean `Format` error instead of a panic or a wild allocation.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        let path = path.as_ref();
        let mut f = File::open(path).map_err(|e| GraphError::io_at(path, None, e))?;
        let file_len = f
            .metadata()
            .map_err(|e| GraphError::io_at(path, None, e))?
            .len();
        let mut header = [0u8; 24];
        f.read_exact(&mut header).map_err(|e| {
            // A sub-header file is corruption (a torn create, not an
            // environment fault): classify as Format so the CLI exits
            // with the corrupt-input code rather than the IO one.
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                GraphError::Format("disk graph is shorter than its 24-byte header".into())
            } else {
                GraphError::io_at(path, Some(0), e)
            }
        })?;
        if &header[..8] != MAGIC {
            return Err(GraphError::Format("bad disk-graph magic".into()));
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&header[8..16]);
        let vcount64 = u64::from_le_bytes(word);
        word.copy_from_slice(&header[16..24]);
        let ecount64 = u64::from_le_bytes(word);
        let expect_len = vcount64
            .checked_add(1)
            .and_then(|v| v.checked_mul(8))
            .and_then(|idx| ecount64.checked_mul(4).and_then(|t| idx.checked_add(t)))
            .and_then(|payload| payload.checked_add(24))
            .filter(|&n| n <= usize::MAX as u64)
            .ok_or_else(|| {
                GraphError::Format(format!(
                    "disk-graph header counts overflow: {vcount64} vertices, {ecount64} edges"
                ))
            })?;
        if file_len != expect_len {
            return Err(GraphError::Format(format!(
                "disk graph is {file_len} bytes, header implies {expect_len}"
            )));
        }
        let vcount = vcount64 as usize;
        let mut raw = vec![0u8; (vcount + 1) * 8];
        f.read_exact(&mut raw)
            .map_err(|e| GraphError::io_at(path, Some(24), e))?;
        let offsets: Vec<usize> = raw
            .chunks_exact(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w.copy_from_slice(c);
                u64::from_le_bytes(w) as usize
            })
            .collect();
        if offsets.first() != Some(&0)
            || offsets.last() != Some(&(ecount64 as usize))
            || offsets.windows(2).any(|p| p[0] > p[1])
        {
            return Err(GraphError::Format(
                "disk-graph offsets index is not a monotone CSR".into(),
            ));
        }
        Ok(Self {
            path: path.to_path_buf(),
            offsets,
            relabel: Relabeling::identity(vcount),
        })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.offsets.last().map_or(0, |&o| o)
    }

    /// Out-degree of sorted-space vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted-space → original-ID mapping (identity for graphs
    /// opened from disk, which are already in sorted space).
    pub fn relabeling(&self) -> &Relabeling {
        &self.relabel
    }

    /// Byte offset of the targets array within the file.
    fn targets_base(&self) -> u64 {
        24 + (self.offsets.len() as u64) * 8
    }

    /// Reads the adjacency bytes for the vertex range `[start, end)`
    /// into `buf` (resized to fit); returns the bytes read.
    ///
    /// Generic over the reader so the fault-injection wrapper slots in
    /// under it; IO errors carry the file path and byte offset.
    fn read_partition<R: Read + Seek>(
        &self,
        file: &mut R,
        start: VertexId,
        end: VertexId,
        buf: &mut Vec<VertexId>,
    ) -> Result<usize, GraphError> {
        let lo = self.offsets[start as usize];
        let hi = self.offsets[end as usize];
        let bytes = (hi - lo) * 4;
        buf.resize(hi - lo, 0);
        let off = self.targets_base() + (lo as u64) * 4;
        file.seek(SeekFrom::Start(off))
            .map_err(|e| GraphError::io_at(&self.path, Some(off), e))?;
        // SAFETY-free byte view: read into a u8 scratch then decode;
        // avoids unsafe transmutes at a small copy cost.
        let mut raw = vec![0u8; bytes];
        file.read_exact(&mut raw)
            .map_err(|e| GraphError::io_at(&self.path, Some(off), e))?;
        for (slot, c) in buf.iter_mut().zip(raw.chunks_exact(4)) {
            let mut le = [0u8; 4];
            le.copy_from_slice(c);
            *slot = VertexId::from_le_bytes(le);
        }
        Ok(bytes)
    }
}

/// Statistics of one out-of-core run.
#[derive(Debug, Clone, Default)]
pub struct OocStats {
    /// Live walker-steps executed.
    pub steps_taken: u64,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Bytes of adjacency data streamed from disk.
    pub bytes_read: u64,
    /// Time spent in disk reads.
    pub read_time: Duration,
    /// Partitions whose read was skipped because no walker was present.
    pub partitions_skipped: u64,
    /// Partition reads performed.
    pub partitions_read: u64,
    /// Transient IO errors absorbed by the retry layer (disk reads and
    /// checkpoint writes).
    pub io_retries: u64,
    /// Bi-block scheduler only: block loads performed (an off-diagonal
    /// pair loads two blocks, a diagonal pair one).
    pub blocks_streamed: u64,
    /// Bi-block scheduler only: pair slots whose boundary bucket held
    /// walkers and were therefore scheduled.
    pub pairs_scheduled: u64,
    /// Bi-block scheduler only: pair slots skipped because their
    /// boundary bucket was empty.
    pub pairs_skipped: u64,
    /// Bi-block scheduler only: walkers parked into boundary buckets,
    /// cumulative over the run.
    pub walkers_parked: u64,
    /// Bi-block scheduler only: peak simultaneous boundary-buffer
    /// occupancy (the scheduler's memory high-water mark in walkers).
    pub peak_parked: u64,
}

impl OocStats {
    /// Average nanoseconds per walker-step.
    pub fn per_step_ns(&self) -> f64 {
        if self.steps_taken == 0 {
            return 0.0;
        }
        self.wall.as_nanos() as f64 / self.steps_taken as f64
    }

    /// Average adjacency bytes streamed per walker-step.
    pub fn bytes_per_step(&self) -> f64 {
        if self.steps_taken == 0 {
            return 0.0;
        }
        self.bytes_read as f64 / self.steps_taken as f64
    }
}

/// Robustness options of an out-of-core run: checkpointing, fault
/// injection, retries, and resume.
#[derive(Debug, Default)]
pub struct OocOptions {
    /// Write crash-consistent checkpoints per this spec.
    pub checkpoint: Option<CheckpointSpec>,
    /// Inject seeded faults into the disk-graph read stream (tests).
    pub fault: Option<FaultPolicy>,
    /// Retry policy for transient disk-read errors.
    pub retry: RetryPolicy,
    /// Resume from the latest checkpoint in this directory instead of
    /// starting fresh.
    pub resume_from: Option<PathBuf>,
}

impl OocOptions {
    /// Enables checkpointing per `spec`.
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// Injects seeded faults into disk-graph reads.
    pub fn fault(mut self, policy: FaultPolicy) -> Self {
        self.fault = Some(policy);
        self
    }

    /// Sets the transient-read retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Resumes from the latest checkpoint in `dir`.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(dir.into());
        self
    }
}

/// Walks a disk-resident graph with first-order uniform (DeepWalk)
/// semantics.
///
/// `partition_budget_bytes` bounds each partition's adjacency bytes (and
/// therefore the streaming buffer); the paper's analysis suggests the L3
/// capacity.  Only [`crate::WalkAlgorithm::DeepWalk`] is supported out
/// of core.
pub fn run_ooc(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
) -> Result<(WalkOutput, OocStats), WalkError> {
    run_ooc_traced(disk, config, partition_budget_bytes, &mut Telemetry::off())
}

/// [`run_ooc`] with telemetry: Shuffle/Sample spans per iteration, an
/// Io span per partition read, per-partition counters (steps plus the
/// actual adjacency bytes streamed from disk), and heartbeat ticks.
pub fn run_ooc_traced(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
    tel: &mut Telemetry,
) -> Result<(WalkOutput, OocStats), WalkError> {
    run_ooc_with(
        disk,
        config,
        partition_budget_bytes,
        &OocOptions::default(),
        tel,
    )
}

/// Places walkers per `config.init` using only in-memory metadata (the
/// offsets index); shared by the first-order and bi-block paths.
fn init_positions(disk: &DiskGraph, config: &WalkConfig) -> Result<Vec<VertexId>, WalkError> {
    let n = disk.vertex_count();
    let walkers = config.walkers;
    let init = match &config.init {
        WalkerInit::Fixed(starts) => {
            WalkerInit::Fixed(starts.iter().map(|&v| disk.relabel.to_new(v)).collect())
        }
        other => other.clone(),
    };
    // Uniform-edge init needs degrees only, which we have in memory.
    match init {
        WalkerInit::UniformEdge => {
            let e = disk.edge_count();
            let mut rng = Xorshift64Star::new(config.seed);
            Ok((0..walkers)
                .map(|_| {
                    let edge = rng.gen_index(e);
                    (disk.offsets.partition_point(|&o| o <= edge) - 1) as VertexId
                })
                .collect())
        }
        other => {
            // Vertex-based inits need no adjacency; a degree-1 dummy CSR
            // carries the vertex count.
            let dummy = Csr::from_parts(
                (0..=n).collect(),
                (0..n).map(|v| v as VertexId).collect(),
                None,
            )?;
            Ok(initialize(&dummy, &other, walkers, config.seed))
        }
    }
}

/// Folds the walker-initialization mode into a fingerprint.
fn fold_init(fp: &mut Fingerprint, init: &WalkerInit) {
    match init {
        WalkerInit::UniformVertex => {
            fp.fold_u64(1);
        }
        WalkerInit::UniformEdge => {
            fp.fold_u64(2);
        }
        WalkerInit::EveryVertex => {
            fp.fold_u64(3);
        }
        WalkerInit::Fixed(starts) => {
            fp.fold_u64(4).fold_u64(starts.len() as u64);
            for &s in starts {
                fp.fold_u64(s as u64);
            }
        }
    }
}

/// Fingerprint of everything that determines the out-of-core chain;
/// the partition budget is included because it fixes the partition
/// layout and therefore the per-partition RNG stream assignment.
fn ooc_config_tag(config: &WalkConfig, partition_budget_bytes: usize) -> u64 {
    let mut fp = Fingerprint::new();
    fp.fold_u64(0x00C0_FEED) // domain separator: out-of-core engine
        .fold_u64(config.walkers as u64)
        .fold_u64(config.seed)
        .fold_u64(config.max_steps() as u64)
        .fold_u64(config.record_paths as u64)
        .fold_u64(partition_budget_bytes as u64);
    fold_init(&mut fp, &config.init);
    fp.value()
}

/// Fingerprint of a bi-block second-order run.  A distinct domain
/// separator keeps first-order snapshots from resuming bi-block runs
/// (and vice versa) even when every scalar matches; the algorithm
/// parameters are folded because they change the sampled chain.
fn biblock_config_tag(config: &WalkConfig, partition_budget_bytes: usize) -> u64 {
    let mut fp = Fingerprint::new();
    fp.fold_u64(0x00B1_B10C) // domain separator: bi-block scheduler
        .fold_u64(config.walkers as u64)
        .fold_u64(config.seed)
        .fold_u64(config.max_steps() as u64)
        .fold_u64(config.record_paths as u64)
        .fold_u64(partition_budget_bytes as u64);
    match config.algorithm {
        crate::WalkAlgorithm::Node2Vec { p, q } => {
            fp.fold_u64(1).fold_u64(p.to_bits()).fold_u64(q.to_bits());
        }
        crate::WalkAlgorithm::Ppr { alpha } => {
            fp.fold_u64(2).fold_u64(alpha.to_bits());
        }
        _ => unreachable!("bi-block scheduler runs node2vec and PPR only"),
    }
    fold_init(&mut fp, &config.init);
    fp.value()
}

/// Fingerprint of the disk graph's shape.
fn ooc_graph_tag(disk: &DiskGraph) -> u64 {
    let mut fp = Fingerprint::new();
    fp.fold_u64(disk.vertex_count() as u64)
        .fold_u64(disk.edge_count() as u64);
    for &o in &disk.offsets {
        fp.fold_u64(o as u64);
    }
    fp.value()
}

/// [`run_ooc`] with the full robustness surface: crash-consistent
/// checkpoints, resume, seeded fault injection on the read stream, and
/// bounded retries with exponential backoff for transient IO errors.
pub fn run_ooc_with(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
    opts: &OocOptions,
    tel: &mut Telemetry,
) -> Result<(WalkOutput, OocStats), WalkError> {
    if config.walkers == 0 {
        return Err(WalkError::NoWalkers);
    }
    let n = disk.vertex_count();
    if n == 0 {
        return Err(WalkError::EmptyGraph);
    }
    for v in 0..n {
        if disk.degree(v as VertexId) == 0 {
            return Err(WalkError::SinkVertex(v as VertexId));
        }
    }
    match config.algorithm {
        crate::WalkAlgorithm::DeepWalk => {}
        crate::WalkAlgorithm::Node2Vec { .. } | crate::WalkAlgorithm::Ppr { .. } => {
            return run_ooc_biblock(disk, config, partition_budget_bytes, opts, tel);
        }
        _ => {
            return Err(WalkError::Planning(
                "out-of-core walking supports DeepWalk, node2vec, and PPR only".into(),
            ))
        }
    }

    // Cut the sorted vertex array into partitions under the byte budget.
    let mut partitions = Vec::new();
    let mut start = 0usize;
    while start < n {
        let budget_edges = (partition_budget_bytes / 4).max(disk.degree(start as VertexId));
        let lo = disk.offsets[start];
        let mut end = start + 1;
        while end < n && disk.offsets[end + 1] - lo <= budget_edges {
            end += 1;
        }
        partitions.push(Partition {
            start: start as VertexId,
            end: end as VertexId,
            policy: SamplePolicy::Direct,
            group: 0,
            edges: disk.offsets[end] - lo,
            uniform_degree: None,
        });
        start = end;
    }
    let map = PartitionMap::new(&partitions, n);
    let shuffler = Shuffler::single_level(&map);

    let wall_start = Instant::now();
    let steps = config.max_steps();
    let walkers = config.walkers;
    let mut w = init_positions(disk, config)?;
    let mut w_next = vec![0 as VertexId; walkers];
    let mut sw = vec![0 as VertexId; walkers];
    let mut snext = vec![0 as VertexId; walkers];
    let mut scratch = ShuffleScratch::default();
    let mut rows = Vec::new();
    if config.record_paths {
        rows.push(w.clone());
    }

    let mut stats = OocStats::default();
    let file = File::open(&disk.path).map_err(|e| GraphError::io_at(&disk.path, None, e))?;
    let mut file = match opts.fault {
        Some(policy) => FaultyFile::with_policy(file, policy),
        None => FaultyFile::passthrough(file),
    };
    let mut buf: Vec<VertexId> = Vec::new();
    let mut probe = NullProbe;
    if tel.is_on() {
        tel.ensure_partitions(partitions.len());
    }

    // Checkpoint sink and the tags that pin snapshots to this engine.
    let mut sink = opts
        .checkpoint
        .as_ref()
        .filter(|ck| ck.every > 0)
        .map(CheckpointSink::from_spec);
    let (config_tag, graph_tag) = if sink.is_some() || opts.resume_from.is_some() {
        (
            ooc_config_tag(config, partition_budget_bytes),
            ooc_graph_tag(disk),
        )
    } else {
        (0, 0)
    };

    // Resume: replace the fresh walker state with the snapshot's.
    let mut start_iter = 0usize;
    if let Some(dir) = opts.resume_from.as_ref() {
        let span = tel.is_on().then(|| tel.now_ns());
        let (_generation, snap) = load_latest(dir)?;
        let mismatch = |detail: String| WalkError::Recover(RecoverError::Mismatch { detail });
        if snap.config_tag != config_tag {
            return Err(mismatch(
                "snapshot was written under a different out-of-core configuration".into(),
            ));
        }
        if snap.graph_tag != graph_tag {
            return Err(mismatch(
                "snapshot was written against a different disk graph".into(),
            ));
        }
        if snap.seed != config.seed
            || snap.walkers as usize != walkers
            || snap.w.len() != walkers
            || snap.steps_total as usize != steps
            || snap.iter_next as usize > steps
            || snap.ps.len() != partitions.len()
        {
            return Err(mismatch("snapshot shape does not fit this run".into()));
        }
        if config.record_paths
            && (snap.rows.len() != snap.iter_next as usize + 1
                || snap.rows.iter().any(|r| r.len() != walkers))
        {
            return Err(mismatch("snapshot path rows are inconsistent".into()));
        }
        w = snap.w;
        if config.record_paths {
            rows = snap.rows;
        }
        stats.steps_taken = snap.steps_taken;
        start_iter = snap.iter_next as usize;
        if let Some(s) = span {
            tel.span_since(Stage::Recovery, s, NO_STEP, NO_PARTITION);
        }
    }

    for iter in start_iter..steps {
        let traced = tel.is_on();
        let span0 = traced.then(|| tel.now_ns());
        shuffler.count(&w, &mut scratch, ShuffleAddrs::default(), &mut probe);
        shuffler.scatter(
            &w,
            None,
            &mut sw,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut probe,
        );
        if let Some(s) = span0 {
            tel.span_since(Stage::Shuffle, s, iter as u32, NO_PARTITION);
        }
        let dead_start = scratch.offsets[partitions.len()] as usize;
        snext[dead_start..].fill(DEAD);

        for (pi, part) in partitions.iter().enumerate() {
            let (a, b) = (
                scratch.offsets[pi] as usize,
                scratch.offsets[pi + 1] as usize,
            );
            if a == b {
                stats.partitions_skipped += 1;
                continue;
            }
            // Stream this partition's adjacency bytes from disk.
            let io_span = traced.then(|| tel.now_ns());
            let t0 = Instant::now();
            // Transient read errors (injected or real) are retried with
            // exponential backoff; permanent ones escalate typed.
            let bytes = with_retries(
                &opts.retry,
                &mut stats.io_retries,
                |e: &GraphError| e.io_source().is_some_and(transient_io),
                || disk.read_partition(&mut file, part.start, part.end, &mut buf),
            )?;
            stats.read_time += t0.elapsed();
            stats.bytes_read += bytes as u64;
            stats.partitions_read += 1;
            if let Some(s) = io_span {
                tel.span_since(Stage::Io, s, iter as u32, pi as u32);
                tel.record_partition_bytes(pi, bytes as u64);
            }

            let sample_span = traced.then(|| tel.now_ns());
            let base = disk.offsets[part.start as usize];
            let mut rng =
                Xorshift64Star::new(crate::engine::partition_stream_id(config.seed, iter, pi));
            for j in a..b {
                let v = sw[j];
                let lo = disk.offsets[v as usize] - base;
                let d = disk.degree(v);
                let k = rng.gen_index(d);
                snext[j] = buf[lo + k];
                stats.steps_taken += 1;
            }
            if let Some(s) = sample_span {
                tel.span_since(Stage::Sample, s, iter as u32, pi as u32);
                tel.record_partition_step(pi, (b - a) as u64, false);
            }
        }
        tel.tick(iter + 1, steps, stats.steps_taken);

        shuffler.gather(
            &w,
            &snext,
            &mut w_next,
            None,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut probe,
        );
        std::mem::swap(&mut w, &mut w_next);
        if config.record_paths {
            rows.push(w.clone());
        }

        // Checkpoint at the epoch boundary: the walker array here is
        // exactly the input of iteration `iter + 1`.
        if let Some((ck, sink)) = opts.checkpoint.as_ref().zip(sink.as_mut()) {
            if (iter + 1) % ck.every == 0 {
                let span = tel.is_on().then(|| tel.now_ns());
                let generation = ((iter + 1) / ck.every) as u64;
                let snap = WalkSnapshot {
                    seed: config.seed,
                    iter_next: (iter + 1) as u64,
                    steps_total: steps as u64,
                    walkers: walkers as u64,
                    steps_taken: stats.steps_taken,
                    config_tag,
                    graph_tag,
                    per_partition_steps: vec![0; partitions.len()],
                    w: w.clone(),
                    prev: Vec::new(),
                    visits: Vec::new(),
                    ps: vec![None; partitions.len()],
                    rows: rows.clone(),
                    biblock: None,
                };
                let retries_before = sink.retries;
                sink.save(generation, &snap)?;
                stats.io_retries += sink.retries - retries_before;
                if let Some(s) = span {
                    tel.span_since(Stage::Checkpoint, s, iter as u32, NO_PARTITION);
                }
                if ck.halt_after == Some(generation) {
                    return Err(WalkError::Halted { generation });
                }
            }
        }
    }

    tel.record_io_retries(stats.io_retries);
    stats.wall = wall_start.elapsed();
    let output = if config.record_paths {
        WalkOutput::new(rows, walkers, disk.relabel.clone())
    } else {
        WalkOutput::new(vec![w], walkers, disk.relabel.clone())
    };
    Ok((output, stats))
}

/// Flat triangular index of the block pair `(i, j)` with `i <= j`
/// among `blocks` blocks: row-major over the upper triangle.
fn pair_index(i: usize, j: usize, blocks: usize) -> usize {
    debug_assert!(i <= j && j < blocks);
    i * (2 * blocks - i + 1) / 2 + (j - i)
}

/// Streams one block's adjacency array from disk through the
/// fault-injection/retry layer, attributing the bytes and an Io span to
/// the block's telemetry partition.
#[allow(clippy::too_many_arguments)]
fn load_block(
    disk: &DiskGraph,
    file: &mut FaultyFile<File>,
    retry: &RetryPolicy,
    start: VertexId,
    end: VertexId,
    buf: &mut Vec<VertexId>,
    epoch: usize,
    blk: usize,
    stats: &mut OocStats,
    tel: &mut Telemetry,
) -> Result<(), WalkError> {
    let io_span = tel.is_on().then(|| tel.now_ns());
    let t0 = Instant::now();
    // Transient read errors (injected or real) are retried with
    // exponential backoff; permanent ones escalate typed.
    let bytes = with_retries(
        retry,
        &mut stats.io_retries,
        |e: &GraphError| e.io_source().is_some_and(transient_io),
        || disk.read_partition(file, start, end, buf),
    )?;
    stats.read_time += t0.elapsed();
    stats.bytes_read += bytes as u64;
    stats.blocks_streamed += 1;
    stats.partitions_read += 1;
    if let Some(s) = io_span {
        tel.span_since(Stage::Io, s, epoch as u32, blk as u32);
        tel.record_partition_bytes(blk, bytes as u64);
    }
    Ok(())
}

/// GraSorw-style triangular bi-block scheduling for second-order
/// (node2vec) and origin-stateful (PPR) walks over a disk-resident CSR.
///
/// The sorted vertex array is cut into blocks of at most *half* the
/// byte budget, so a block **pair** always fits in the configured
/// buffer; a hub vertex whose adjacency alone exceeds the half-budget
/// gets a singleton block — the scheduler degrades to smaller pairs
/// instead of overrunning the budget.  Each epoch sweeps the upper
/// triangle of block pairs `(i, j)`, `i <= j`; a walker is *resident*
/// while both its `prev` and `cur` adjacency lookups land in the
/// loaded pair, steps repeatedly while resident, and parks into the
/// boundary bucket of its next pair when a step crosses out.  PPR
/// walkers read only the current vertex's adjacency (the origin rides
/// in the `prev` lane and needs no lookup), so they live on the
/// diagonal and off-diagonal slots stay empty.
///
/// Determinism and crash safety: the RNG stream of a pair slot is
/// `partition_stream_id(seed, epoch, slot)`, restarted at each slot,
/// so resume at any slot boundary has no RNG carry-over; buckets are
/// drained and refilled in deterministic walker order; checkpoints
/// fire on a pair-slot cadence (`pairs_done % every`), which counts
/// empty slots too and is therefore data-independent within an epoch.
fn run_ooc_biblock(
    disk: &DiskGraph,
    config: &WalkConfig,
    partition_budget_bytes: usize,
    opts: &OocOptions,
    tel: &mut Telemetry,
) -> Result<(WalkOutput, OocStats), WalkError> {
    let n = disk.vertex_count();
    let steps = config.max_steps();
    let walkers = config.walkers;
    let is_ppr = matches!(config.algorithm, crate::WalkAlgorithm::Ppr { .. });
    let (p_ret, q_inout, bound, bound_min, alpha) = match config.algorithm {
        crate::WalkAlgorithm::Node2Vec { p, q } => (
            p,
            q,
            config.algorithm.node2vec_bound(),
            (1.0 / p).min(1.0).min(1.0 / q),
            0.0,
        ),
        crate::WalkAlgorithm::Ppr { alpha } => (0.0, 0.0, 1.0, 1.0, alpha),
        _ => unreachable!("bi-block scheduler runs node2vec and PPR only"),
    };

    // Cut the sorted vertex array into half-budget blocks.
    let half_budget = partition_budget_bytes / 2;
    let mut block_start: Vec<usize> = Vec::new();
    {
        let mut start = 0usize;
        while start < n {
            let budget_edges = (half_budget / 4)
                .max(disk.degree(start as VertexId))
                .max(1);
            let lo = disk.offsets[start];
            let mut end = start + 1;
            while end < n && disk.offsets[end + 1] - lo <= budget_edges {
                end += 1;
            }
            block_start.push(start);
            start = end;
        }
    }
    let nblocks = block_start.len();
    let n_pairs = nblocks * (nblocks + 1) / 2;
    let block_of =
        |v: VertexId| -> usize { block_start.partition_point(|&s| s <= v as usize) - 1 };
    let block_end = |b: usize| -> usize { block_start.get(b + 1).copied().unwrap_or(n) };
    // The pair slot a walker waits in for its next step.
    let pair_of = |cur: VertexId, prev: VertexId| -> usize {
        let bc = block_of(cur);
        if is_ppr || prev == DEAD {
            return pair_index(bc, bc, nblocks);
        }
        let bp = block_of(prev);
        let (a, b) = if bp <= bc { (bp, bc) } else { (bc, bp) };
        pair_index(a, b, nblocks)
    };

    let wall_start = Instant::now();
    let mut cur = init_positions(disk, config)?;
    // `prevv` carries the node2vec predecessor (DEAD before the first,
    // first-order step) or the PPR origin.
    let mut prevv: Vec<VertexId> = if is_ppr {
        cur.clone()
    } else {
        vec![DEAD; walkers]
    };
    let mut done: Vec<u32> = vec![0; walkers];
    let mut paths: Vec<Vec<VertexId>> = if config.record_paths {
        cur.iter().map(|&v| vec![v]).collect()
    } else {
        Vec::new()
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_pairs];
    let mut remaining = if steps == 0 { 0 } else { walkers };
    let mut parked_now: u64 = 0;
    let mut stats = OocStats::default();
    let mut epoch = 0usize;
    let mut start_slot = 0usize;
    let mut pairs_done = 0u64;

    let file = File::open(&disk.path).map_err(|e| GraphError::io_at(&disk.path, None, e))?;
    let mut file = match opts.fault {
        Some(policy) => FaultyFile::with_policy(file, policy),
        None => FaultyFile::passthrough(file),
    };
    if tel.is_on() {
        tel.ensure_partitions(nblocks);
    }
    let mut sink = opts
        .checkpoint
        .as_ref()
        .filter(|ck| ck.every > 0)
        .map(CheckpointSink::from_spec);
    let (config_tag, graph_tag) = if sink.is_some() || opts.resume_from.is_some() {
        (
            biblock_config_tag(config, partition_budget_bytes),
            ooc_graph_tag(disk),
        )
    } else {
        (0, 0)
    };

    if let Some(dir) = opts.resume_from.as_ref() {
        let span = tel.is_on().then(|| tel.now_ns());
        let (_generation, mut snap) = load_latest(dir)?;
        let mismatch =
            |detail: &str| WalkError::Recover(RecoverError::Mismatch { detail: detail.into() });
        if snap.config_tag != config_tag {
            return Err(mismatch(
                "snapshot was written under a different out-of-core configuration",
            ));
        }
        if snap.graph_tag != graph_tag {
            return Err(mismatch("snapshot was written against a different disk graph"));
        }
        let bb = snap
            .biblock
            .take()
            .ok_or_else(|| mismatch("snapshot carries no bi-block scheduler state"))?;
        if snap.seed != config.seed
            || snap.walkers as usize != walkers
            || snap.w.len() != walkers
            || snap.prev.len() != walkers
            || snap.steps_total as usize != steps
            || bb.done.len() != walkers
            || bb.blocks as usize != nblocks
            || bb.buckets.len() != n_pairs
            || bb.cursor as usize >= n_pairs
            || bb.done.iter().any(|&d| d as usize > steps)
        {
            return Err(mismatch("snapshot shape does not fit this run"));
        }
        if config.record_paths {
            if bb.paths.len() != walkers
                || bb
                    .paths
                    .iter()
                    .zip(&bb.done)
                    .any(|(p, &d)| p.len() != d as usize + 1)
            {
                return Err(mismatch("snapshot path rows are inconsistent"));
            }
        } else if !bb.paths.is_empty() {
            return Err(mismatch("snapshot path rows are inconsistent"));
        }
        // Every unfinished walker must be parked in exactly one bucket.
        let mut seen = vec![false; walkers];
        let mut parked = 0u64;
        for bucket in &bb.buckets {
            for &k in bucket {
                let k = k as usize;
                if k >= walkers || seen[k] || bb.done[k] as usize >= steps {
                    return Err(mismatch("snapshot boundary buckets are inconsistent"));
                }
                seen[k] = true;
                parked += 1;
            }
        }
        let unfinished = bb.done.iter().filter(|&&d| (d as usize) < steps).count();
        if parked != unfinished as u64 {
            return Err(mismatch("snapshot boundary buckets are inconsistent"));
        }
        cur = snap.w;
        prevv = snap.prev;
        done = bb.done;
        buckets = bb.buckets;
        if config.record_paths {
            paths = bb.paths;
        }
        parked_now = parked;
        remaining = unfinished;
        stats.steps_taken = snap.steps_taken;
        pairs_done = snap.iter_next;
        epoch = bb.epoch as usize;
        start_slot = bb.cursor as usize;
        if let Some(s) = span {
            tel.span_since(Stage::Recovery, s, NO_STEP, NO_PARTITION);
        }
    } else if steps > 0 {
        // Fresh start: park every walker in its home bucket.
        for (k, (&c, &p)) in cur.iter().zip(&prevv).enumerate() {
            buckets[pair_of(c, p)].push(k as u32);
        }
        parked_now = walkers as u64;
        stats.walkers_parked = walkers as u64;
        stats.peak_parked = walkers as u64;
    }

    let mut buf_i: Vec<VertexId> = Vec::new();
    let mut buf_j: Vec<VertexId> = Vec::new();
    'sweep: while remaining > 0 {
        // Every unfinished walker's own pair is visited once per sweep
        // and steps it at least once, so epochs are bounded by steps.
        assert!(
            epoch <= steps,
            "bi-block sweep failed to converge: epoch {epoch} of a {steps}-step walk"
        );
        let mut slot = 0usize;
        for i in 0..nblocks {
            for j in i..nblocks {
                let s = slot;
                slot += 1;
                if s < start_slot {
                    continue;
                }
                let bucket = std::mem::take(&mut buckets[s]);
                if bucket.is_empty() {
                    stats.pairs_skipped += 1;
                    stats.partitions_skipped += 1;
                } else {
                    parked_now -= bucket.len() as u64;
                    stats.pairs_scheduled += 1;
                    load_block(
                        disk,
                        &mut file,
                        &opts.retry,
                        block_start[i] as VertexId,
                        block_end(i) as VertexId,
                        &mut buf_i,
                        epoch,
                        i,
                        &mut stats,
                        tel,
                    )?;
                    if j != i {
                        load_block(
                            disk,
                            &mut file,
                            &opts.retry,
                            block_start[j] as VertexId,
                            block_end(j) as VertexId,
                            &mut buf_j,
                            epoch,
                            j,
                            &mut stats,
                            tel,
                        )?;
                    }
                    let sample_span = tel.is_on().then(|| tel.now_ns());
                    let mut rng = Xorshift64Star::new(crate::engine::partition_stream_id(
                        config.seed,
                        epoch,
                        s,
                    ));
                    let mut slot_steps = 0u64;
                    let base_i = disk.offsets[block_start[i]];
                    let base_j = disk.offsets[block_start[j]];
                    for &kw in &bucket {
                        let k = kw as usize;
                        // Step while the walker's lookups stay resident.
                        loop {
                            let v = cur[k];
                            let bv = block_of(v);
                            let (vbuf, vbase) = if bv == i {
                                (&buf_i, base_i)
                            } else {
                                (&buf_j, base_j)
                            };
                            let lo = disk.offsets[v as usize] - vbase;
                            let d = disk.degree(v);
                            let adj = &vbuf[lo..lo + d];
                            let next = if is_ppr {
                                // Restart coin first: a teleport reads no
                                // edge at all (mirrors the in-memory
                                // sampler and the PPR oracle).
                                if rng.next_f64() < alpha {
                                    prevv[k]
                                } else {
                                    adj[rng.gen_index(d)]
                                }
                            } else if prevv[k] == DEAD {
                                // First transition of a node2vec walker:
                                // first-order uniform, matching the
                                // oracle's edge-chain start.
                                adj[rng.gen_index(d)]
                            } else {
                                let t = prevv[k];
                                let bt = block_of(t);
                                let (tbuf, tbase) = if bt == i {
                                    (&buf_i, base_i)
                                } else {
                                    (&buf_j, base_j)
                                };
                                let tlo = disk.offsets[t as usize] - tbase;
                                let tadj = &tbuf[tlo..tlo + disk.degree(t)];
                                let mut attempts = 0;
                                // Stratified rejection, mirroring the
                                // in-memory sampler: a draw below the
                                // minimum weight accepts any candidate
                                // with zero connectivity scans; the
                                // attempt cap is the termination
                                // backstop.
                                loop {
                                    let cand = adj[rng.gen_index(d)];
                                    attempts += 1;
                                    let x = rng.next_f64() * bound;
                                    if x < bound_min || attempts >= 64 {
                                        break cand;
                                    }
                                    let weight = if cand == t {
                                        1.0 / p_ret
                                    } else if tadj.contains(&cand) {
                                        1.0
                                    } else {
                                        1.0 / q_inout
                                    };
                                    if x < weight {
                                        break cand;
                                    }
                                }
                            };
                            if !is_ppr {
                                prevv[k] = v;
                            }
                            cur[k] = next;
                            done[k] += 1;
                            slot_steps += 1;
                            if config.record_paths {
                                paths[k].push(next);
                            }
                            if done[k] as usize >= steps {
                                remaining -= 1;
                                break;
                            }
                            let bc = block_of(cur[k]);
                            let resident = (bc == i || bc == j)
                                && (is_ppr || {
                                    let bp = block_of(prevv[k]);
                                    bp == i || bp == j
                                });
                            if !resident {
                                buckets[pair_of(cur[k], prevv[k])].push(kw);
                                parked_now += 1;
                                stats.walkers_parked += 1;
                                stats.peak_parked = stats.peak_parked.max(parked_now);
                                break;
                            }
                        }
                    }
                    stats.steps_taken += slot_steps;
                    if let Some(sp) = sample_span {
                        tel.span_since(Stage::Sample, sp, epoch as u32, i as u32);
                        tel.record_partition_step(i, slot_steps, false);
                    }
                }

                // Pair-slot cadence checkpointing: `pairs_done` counts
                // empty slots too, so kill generations are deterministic
                // and data-independent within an epoch.
                pairs_done += 1;
                if let Some((ck, sink)) = opts.checkpoint.as_ref().zip(sink.as_mut()) {
                    if pairs_done.is_multiple_of(ck.every as u64) {
                        let span = tel.is_on().then(|| tel.now_ns());
                        let generation = pairs_done / ck.every as u64;
                        let (next_epoch, next_cursor) = if s + 1 == n_pairs {
                            (epoch as u64 + 1, 0)
                        } else {
                            (epoch as u64, s as u64 + 1)
                        };
                        let snap = WalkSnapshot {
                            seed: config.seed,
                            iter_next: pairs_done,
                            steps_total: steps as u64,
                            walkers: walkers as u64,
                            steps_taken: stats.steps_taken,
                            config_tag,
                            graph_tag,
                            per_partition_steps: Vec::new(),
                            w: cur.clone(),
                            prev: prevv.clone(),
                            visits: Vec::new(),
                            ps: Vec::new(),
                            rows: Vec::new(),
                            biblock: Some(BiBlockState {
                                epoch: next_epoch,
                                cursor: next_cursor,
                                blocks: nblocks as u64,
                                done: done.clone(),
                                buckets: buckets.clone(),
                                paths: paths.clone(),
                            }),
                        };
                        let retries_before = sink.retries;
                        sink.save(generation, &snap)?;
                        stats.io_retries += sink.retries - retries_before;
                        if let Some(sp) = span {
                            tel.span_since(Stage::Checkpoint, sp, epoch as u32, NO_PARTITION);
                        }
                        if ck.halt_after == Some(generation) {
                            return Err(WalkError::Halted { generation });
                        }
                    }
                }
                if remaining == 0 {
                    break 'sweep;
                }
            }
        }
        start_slot = 0;
        epoch += 1;
        tel.tick(epoch, steps, stats.steps_taken);
    }

    // Unconditional completion checkpoint: a kill *after* the last work
    // slot must still resume cleanly (the resume-after-complete case),
    // so the final generation is written whenever the cadence did not
    // land exactly on the last processed slot.
    if let Some((ck, sink)) = opts.checkpoint.as_ref().zip(sink.as_mut()) {
        if !pairs_done.is_multiple_of(ck.every as u64) {
            let span = tel.is_on().then(|| tel.now_ns());
            let generation = pairs_done / ck.every as u64 + 1;
            let snap = WalkSnapshot {
                seed: config.seed,
                iter_next: pairs_done,
                steps_total: steps as u64,
                walkers: walkers as u64,
                steps_taken: stats.steps_taken,
                config_tag,
                graph_tag,
                per_partition_steps: Vec::new(),
                w: cur.clone(),
                prev: prevv.clone(),
                visits: Vec::new(),
                ps: Vec::new(),
                rows: Vec::new(),
                biblock: Some(BiBlockState {
                    epoch: epoch as u64,
                    cursor: 0,
                    blocks: nblocks as u64,
                    done: done.clone(),
                    buckets: buckets.clone(),
                    paths: paths.clone(),
                }),
            };
            let retries_before = sink.retries;
            sink.save(generation, &snap)?;
            stats.io_retries += sink.retries - retries_before;
            if let Some(sp) = span {
                tel.span_since(Stage::Checkpoint, sp, epoch as u32, NO_PARTITION);
            }
            if ck.halt_after == Some(generation) {
                return Err(WalkError::Halted { generation });
            }
        }
    }

    tel.record_io_retries(stats.io_retries);
    stats.wall = wall_start.elapsed();
    let output = if config.record_paths {
        // Transpose walker-major paths into the iteration-major rows
        // WalkOutput expects; node2vec and PPR walkers never die early,
        // so every path has exactly `steps + 1` entries.
        let mut rows = vec![vec![0 as VertexId; walkers]; steps + 1];
        for (k, path) in paths.iter().enumerate() {
            debug_assert_eq!(path.len(), steps + 1);
            for (t, &v) in path.iter().enumerate() {
                rows[t][k] = v;
            }
        }
        WalkOutput::new(rows, walkers, disk.relabel.clone())
    } else {
        WalkOutput::new(vec![cur], walkers, disk.relabel.clone())
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fm_oocore_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn create_open_round_trip() {
        let g = synth::power_law(500, 2.0, 1, 50, 3);
        let path = temp_path("roundtrip.fmdisk");
        let created = DiskGraph::create(&g, &path).unwrap();
        let opened = DiskGraph::open(&path).unwrap();
        assert_eq!(created.vertex_count(), opened.vertex_count());
        assert_eq!(created.edge_count(), opened.edge_count());
        assert_eq!(created.offsets, opened.offsets);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_walk_stays_on_edges() {
        let g = synth::power_law(400, 2.0, 1, 40, 5);
        let path = temp_path("edges.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(200).steps(6).seed(9);
        let (out, stats) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(stats.steps_taken, 200 * 6);
        for path in out.paths() {
            for hop in path.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_matches_in_memory_distribution() {
        let g = synth::power_law(600, 1.9, 1, 80, 7);
        let path = temp_path("dist.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(20_000).steps(10).seed(3);
        let (out, _) = run_ooc(&disk, &cfg, 16 << 10).unwrap();
        let ooc_visits = out.visit_counts(g.vertex_count());

        let engine = crate::FlashMob::new(&g, cfg.clone().record_visits(true)).unwrap();
        let (_, mem_stats) = engine.run_with_stats().unwrap();
        let mem_visits = mem_stats.visits_original(engine.relabeling()).unwrap();

        let (ta, tb) = (
            ooc_visits.iter().sum::<u64>() as f64,
            mem_visits.iter().sum::<u64>() as f64,
        );
        let l1: f64 = ooc_visits
            .iter()
            .zip(&mem_visits)
            .map(|(&a, &b)| (a as f64 / ta - b as f64 / tb).abs())
            .sum();
        assert!(l1 < 0.08, "visit distributions diverge: L1 = {l1:.4}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cold_partitions_are_skipped() {
        // All walkers pinned on the hub: tail partitions never read.
        let g = synth::star(10_000);
        let path = temp_path("skip.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk()
            .walkers(64)
            .steps(2)
            .seed(1)
            .init(WalkerInit::Fixed(vec![0]));
        let (_, stats) = run_ooc(&disk, &cfg, 512).unwrap();
        assert!(
            stats.partitions_skipped > stats.partitions_read,
            "read {} skipped {}",
            stats.partitions_read,
            stats.partitions_skipped
        );
        // Read volume far below 2 full passes over the file.
        assert!(stats.bytes_read < 2 * disk.edge_count() as u64 * 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ooc_is_deterministic() {
        let g = synth::power_law(300, 2.0, 1, 30, 11);
        let path = temp_path("det.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(100).steps(5).seed(21);
        let (a, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        let (b, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(a.paths(), b.paths());
        std::fs::remove_file(path).ok();
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn traced_ooc_records_io_spans_and_exact_counters() {
        let g = synth::power_law(400, 2.0, 1, 40, 5);
        let path = temp_path("traced.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::deepwalk().walkers(200).steps(6).seed(9);
        let mut tel = Telemetry::new();
        let (out, stats) = run_ooc_traced(&disk, &cfg, 8 << 10, &mut tel).unwrap();
        assert_eq!(tel.partition_steps_total(), stats.steps_taken);
        // One Io span per performed partition read, none for skips.
        assert_eq!(tel.stage(Stage::Io).spans, stats.partitions_read);
        // Counters include the streamed adjacency bytes.
        let counted: u64 = tel.partition_counters().iter().map(|c| c.edge_bytes).sum();
        assert!(counted >= stats.bytes_read);
        // Tracing must not perturb the chain.
        let (plain, _) = run_ooc(&disk, &cfg, 8 << 10).unwrap();
        assert_eq!(plain.paths(), out.paths());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unsupported_algorithms_rejected() {
        let g = synth::cycle(16);
        let path = temp_path("reject.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let mut cfg = WalkConfig::deepwalk().walkers(10).steps(2);
        cfg.algorithm = crate::WalkAlgorithm::Weighted;
        assert!(matches!(
            run_ooc(&disk, &cfg, 4 << 10),
            Err(WalkError::Planning(_))
        ));
        cfg.algorithm = crate::WalkAlgorithm::EarlyExit;
        assert!(matches!(
            run_ooc(&disk, &cfg, 4 << 10),
            Err(WalkError::Planning(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn biblock_node2vec_stays_on_edges() {
        let g = synth::power_law(400, 2.0, 1, 40, 5);
        let path = temp_path("bb_edges.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::node2vec(0.25, 4.0).walkers(150).steps(6).seed(9);
        let (out, stats) = run_ooc(&disk, &cfg, 4 << 10).unwrap();
        assert_eq!(stats.steps_taken, 150 * 6);
        assert!(stats.blocks_streamed > 0);
        assert!(stats.pairs_scheduled > 0);
        assert!(stats.peak_parked >= 150);
        let rows = out.paths();
        assert_eq!(rows.len(), 150);
        for p in rows {
            assert_eq!(p.len(), 7);
            for hop in p.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn biblock_is_deterministic_across_budgets_only_within_budget() {
        // Same budget → bit-identical; the chain is a deterministic
        // function of (config, budget), which the config tag captures.
        let g = synth::power_law(300, 2.0, 1, 30, 11);
        let path = temp_path("bb_det.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::node2vec(0.5, 2.0).walkers(80).steps(5).seed(21);
        let (a, _) = run_ooc(&disk, &cfg, 4 << 10).unwrap();
        let (b, _) = run_ooc(&disk, &cfg, 4 << 10).unwrap();
        assert_eq!(a.paths(), b.paths());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn biblock_ppr_hops_are_edges_or_origin() {
        let g = synth::power_law(300, 2.0, 2, 30, 17);
        let path = temp_path("bb_ppr.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let mut cfg = WalkConfig::deepwalk().walkers(120).steps(8).seed(4);
        cfg.algorithm = crate::WalkAlgorithm::Ppr { alpha: 0.2 };
        let (out, stats) = run_ooc(&disk, &cfg, 4 << 10).unwrap();
        assert_eq!(stats.steps_taken, 120 * 8);
        let mut teleports = 0u64;
        for p in out.paths() {
            let origin = p[0];
            for hop in p.windows(2) {
                let edge = g.neighbors(hop[0]).contains(&hop[1]);
                assert!(edge || hop[1] == origin, "hop neither edge nor restart");
                if !edge {
                    teleports += 1;
                }
            }
        }
        assert!(teleports > 0, "alpha=0.2 over 960 steps must teleport");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn biblock_tiny_budget_falls_back_to_singleton_blocks() {
        // A budget below any vertex's adjacency degrades to one-vertex
        // blocks instead of overrunning or erroring.
        let g = synth::power_law(120, 2.0, 1, 30, 3);
        let path = temp_path("bb_tiny.fmdisk");
        let disk = DiskGraph::create(&g, &path).unwrap();
        let cfg = WalkConfig::node2vec(0.25, 4.0).walkers(40).steps(4).seed(2);
        let (tiny, stats) = run_ooc(&disk, &cfg, 2).unwrap();
        assert_eq!(stats.steps_taken, 40 * 4);
        for p in tiny.paths() {
            for hop in p.windows(2) {
                assert!(g.neighbors(hop[0]).contains(&hop[1]));
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_corruption_with_typed_errors() {
        let g = synth::power_law(200, 2.0, 1, 20, 9);
        let path = temp_path("corrupt.fmdisk");
        DiskGraph::create(&g, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bytes = pristine.clone();
        bytes[..8].copy_from_slice(b"NOTADISK");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskGraph::open(&path),
            Err(GraphError::Format(_))
        ));

        // Short targets array (torn write / truncation).
        std::fs::write(&path, &pristine[..pristine.len() - 5]).unwrap();
        assert!(matches!(
            DiskGraph::open(&path),
            Err(GraphError::Format(_))
        ));

        // Sub-header file.
        std::fs::write(&path, &pristine[..10]).unwrap();
        assert!(matches!(
            DiskGraph::open(&path),
            Err(GraphError::Format(_))
        ));

        // Vertex count claiming more than the address space: must fail
        // cleanly, not attempt a wild allocation.
        let mut bytes = pristine.clone();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskGraph::open(&path),
            Err(GraphError::Format(_))
        ));

        // Non-monotone offsets index.
        let mut bytes = pristine.clone();
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskGraph::open(&path),
            Err(GraphError::Format(_))
        ));

        // The pristine bytes still open.
        std::fs::write(&path, &pristine).unwrap();
        assert!(DiskGraph::open(&path).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn biblock_checkpoint_resume_is_bit_exact() {
        let g = synth::power_law(250, 2.0, 1, 25, 7);
        let gpath = temp_path("bb_ck.fmdisk");
        let disk = DiskGraph::create(&g, &gpath).unwrap();
        let cfg = WalkConfig::node2vec(0.25, 4.0).walkers(60).steps(5).seed(13);
        let budget = 2 << 10;

        let (reference, _) = run_ooc(&disk, &cfg, budget).unwrap();

        let ckdir = temp_path("bb_ck_dir");
        std::fs::remove_dir_all(&ckdir).ok();
        let halt = OocOptions {
            checkpoint: Some(CheckpointSpec {
                halt_after: Some(2),
                ..CheckpointSpec::new(&ckdir, 3)
            }),
            ..OocOptions::default()
        };
        let mut tel = Telemetry::off();
        let err = run_ooc_with(&disk, &cfg, budget, &halt, &mut tel).unwrap_err();
        assert!(matches!(err, WalkError::Halted { generation: 2 }));

        let resume = OocOptions {
            resume_from: Some(ckdir.clone()),
            ..OocOptions::default()
        };
        let (resumed, _) = run_ooc_with(&disk, &cfg, budget, &resume, &mut tel).unwrap();
        assert_eq!(reference.paths(), resumed.paths());

        // Wrong budget → different config tag → typed mismatch.
        let err = run_ooc_with(&disk, &cfg, budget * 2, &resume, &mut tel).unwrap_err();
        assert!(matches!(
            err,
            WalkError::Recover(RecoverError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&ckdir).ok();
        std::fs::remove_file(gpath).ok();
    }
}
