//! Walker initialization and the compact walker-state arrays.
//!
//! FlashMob stores walker state as bare vertex IDs in 1-D arrays
//! (Section 4.3, "Compact walker state storage"): `W_i[j]` is the
//! location of walker `j` after step `i`, and walker identity is carried
//! implicitly by array order — halving message footprint versus explicit
//! `<walker, vertex>` pairs.

use fm_graph::{Csr, VertexId};
use fm_rng::{Rng64, Xorshift64Star};

/// How walkers are initially placed on the graph.
#[derive(Debug, Clone)]
pub enum WalkerInit {
    /// Place each walker on a uniformly random vertex.
    UniformVertex,
    /// Place each walker at the source of a uniformly random edge
    /// (degree-proportional placement; the paper's Table 2 workload).
    UniformEdge,
    /// One walker per vertex, in vertex order, repeated cyclically when
    /// there are more walkers than vertices (DeepWalk's "10 walks
    /// starting from each node").
    EveryVertex,
    /// Explicit start vertices (walker `j` starts at `starts[j % len]`).
    Fixed(Vec<VertexId>),
}

/// Materializes the initial walker array `W_0`.
///
/// # Panics
///
/// Panics if the graph is empty, `count` is zero, or a `Fixed` list is
/// empty or out of range.
pub fn initialize(graph: &Csr, init: &WalkerInit, count: usize, seed: u64) -> Vec<VertexId> {
    assert!(
        graph.vertex_count() > 0,
        "cannot place walkers on an empty graph"
    );
    assert!(count > 0, "need at least one walker");
    let n = graph.vertex_count();
    let mut rng = Xorshift64Star::new(seed);
    match init {
        WalkerInit::UniformVertex => (0..count).map(|_| rng.gen_index(n) as VertexId).collect(),
        WalkerInit::UniformEdge => {
            let e = graph.edge_count();
            assert!(e > 0, "uniform-edge init needs edges");
            let offsets = graph.offsets();
            (0..count)
                .map(|_| {
                    let edge = rng.gen_index(e);
                    // Source of the sampled edge: last offset <= edge.
                    (offsets.partition_point(|&o| o <= edge) - 1) as VertexId
                })
                .collect()
        }
        WalkerInit::EveryVertex => (0..count).map(|j| (j % n) as VertexId).collect(),
        WalkerInit::Fixed(starts) => {
            assert!(!starts.is_empty(), "fixed init needs start vertices");
            assert!(
                starts.iter().all(|&v| (v as usize) < n),
                "fixed start vertex out of range"
            );
            (0..count).map(|j| starts[j % starts.len()]).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::synth;

    #[test]
    fn uniform_vertex_covers_range() {
        let g = synth::cycle(10);
        let w = initialize(&g, &WalkerInit::UniformVertex, 10_000, 3);
        assert_eq!(w.len(), 10_000);
        assert!(w.iter().all(|&v| (v as usize) < 10));
        // All vertices should be hit at this sample size.
        let mut seen = [false; 10];
        for &v in &w {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_edge_is_degree_proportional() {
        // Star: hub has degree n-1, leaves degree 1 -> hub gets ~half.
        let g = synth::star(11);
        let w = initialize(&g, &WalkerInit::UniformEdge, 100_000, 5);
        let hub = w.iter().filter(|&&v| v == 0).count() as f64 / w.len() as f64;
        assert!((hub - 0.5).abs() < 0.01, "hub share {hub}");
    }

    #[test]
    fn every_vertex_cycles() {
        let g = synth::cycle(4);
        let w = initialize(&g, &WalkerInit::EveryVertex, 10, 0);
        assert_eq!(w, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn fixed_starts_cycle() {
        let g = synth::cycle(5);
        let w = initialize(&g, &WalkerInit::Fixed(vec![2, 4]), 5, 0);
        assert_eq!(w, vec![2, 4, 2, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_out_of_range_panics() {
        let g = synth::cycle(3);
        let _ = initialize(&g, &WalkerInit::Fixed(vec![9]), 1, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = synth::cycle(50);
        let a = initialize(&g, &WalkerInit::UniformVertex, 100, 7);
        let b = initialize(&g, &WalkerInit::UniformVertex, 100, 7);
        assert_eq!(a, b);
    }
}
