//! The shuffle stage: regrouping walkers by vertex partition.
//!
//! After a sample stage disperses walkers, the shuffle rearranges the
//! walker array so that walkers now within the same VP are stored
//! contiguously (paper Section 4.3).  The shuffle is a *stable two-pass
//! counting sort*: one pass counts walkers per destination bin, a prefix
//! sum turns counts into bin offsets, and a second pass scatters.
//!
//! Stability is what makes the paper's implicit-walker-identity trick
//! work: walkers within each VP keep the order in which a linear scan of
//! `W_i` encounters them, so scanning `W_i` again after sampling locates
//! each walker's updated position in `SW_i` without storing walker IDs.
//!
//! The number of concurrent scatter streams is bounded by what fits in
//! L2; when a plan creates more VPs than that budget, the shuffle runs
//! in **two levels** — first into coarse outer bins (one per
//! internally-shuffled group), then within each such bin into its VPs.
//! Because both passes are stable, the two-level result is *identical*
//! to a hypothetical single-level shuffle (verified by tests), only the
//! memory traffic differs.

use fm_graph::VertexId;
use fm_memsim::{AccessKind, Probe};

use crate::partition::PartitionMap;
use crate::pool::{DisjointSlice, WorkerPool};

/// Reusable shuffle working memory.
#[derive(Debug, Default, Clone)]
pub struct ShuffleScratch {
    /// Walkers per fine bin (partitions + dead bin).
    pub counts: Vec<u32>,
    /// Exclusive prefix sums of `counts` (bin start offsets).
    pub offsets: Vec<u32>,
    /// Mutable cursors, reset from `offsets` per pass.
    cursors: Vec<u32>,
    /// Intermediate walker buffer for the two-level path.
    tmp: Vec<VertexId>,
    /// Intermediate aux buffer for the two-level path.
    tmp_aux: Vec<VertexId>,
    /// Outer-bin cursors for the two-level path.
    outer_cursors: Vec<u32>,
    /// Per-(chunk, bin) walker counts for the parallel passes, flattened
    /// chunk-major (`chunk * bins + bin`); filled by `par_count` and kept
    /// valid through the matching `par_scatter` / `par_gather` (all
    /// three passes scan the same pre-shuffle walker array).
    chunk_counts: Vec<u32>,
    /// Per-(chunk, bin) write cursors derived from `chunk_counts`,
    /// rebuilt in place before each parallel scatter/gather pass so the
    /// steady-state step performs no heap allocation.
    chunk_cursors: Vec<u32>,
}

/// Simulated-address bases for probe attribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShuffleAddrs {
    /// Base address of the source walker array.
    pub src: u64,
    /// Base address of the destination walker array.
    pub dst: u64,
}

/// A configured shuffler over one partition map.
#[derive(Debug)]
pub struct Shuffler<'p> {
    map: &'p PartitionMap,
    /// For two-level shuffles: the outer bin of each fine bin (monotone
    /// non-decreasing; the dead bin maps to its own outer bin).
    outer_of_fine: Option<Vec<u32>>,
}

impl<'p> Shuffler<'p> {
    /// A single-level shuffler.
    pub fn single_level(map: &'p PartitionMap) -> Self {
        Self {
            map,
            outer_of_fine: None,
        }
    }

    /// A two-level shuffler; `outer_of_fine[i]` assigns fine bin `i`
    /// (partition, plus the trailing dead bin) to an outer bin.
    ///
    /// # Panics
    ///
    /// Panics unless the assignment covers every fine bin and is
    /// monotone non-decreasing starting at 0 (outer bins must be
    /// contiguous runs of fine bins).
    pub fn two_level(map: &'p PartitionMap, outer_of_fine: Vec<u32>) -> Self {
        assert_eq!(
            outer_of_fine.len(),
            map.bins(),
            "assignment must cover all bins"
        );
        assert_eq!(outer_of_fine[0], 0, "outer bins start at 0");
        assert!(
            outer_of_fine
                .windows(2)
                .all(|w| w[1] == w[0] || w[1] == w[0] + 1),
            "outer bins must be contiguous runs"
        );
        Self {
            map,
            outer_of_fine: Some(outer_of_fine),
        }
    }

    /// Number of fine bins.
    pub fn bins(&self) -> usize {
        self.map.bins()
    }

    /// Number of shuffle levels (1 or 2).
    pub fn levels(&self) -> usize {
        if self.outer_of_fine.is_some() {
            2
        } else {
            1
        }
    }

    /// Counting pass: fills `scratch.counts` / `scratch.offsets` from the
    /// walker positions in `w`.
    pub fn count<P: Probe>(
        &self,
        w: &[VertexId],
        scratch: &mut ShuffleScratch,
        addrs: ShuffleAddrs,
        probe: &mut P,
    ) {
        let bins = self.map.bins();
        scratch.counts.clear();
        scratch.counts.resize(bins, 0);
        for (j, &v) in w.iter().enumerate() {
            probe.touch(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
            scratch.counts[self.map.partition_of(v)] += 1;
        }
        scratch.offsets.clear();
        scratch.offsets.resize(bins + 1, 0);
        let mut acc = 0u32;
        for (i, &c) in scratch.counts.iter().enumerate() {
            scratch.offsets[i] = acc;
            acc += c;
        }
        scratch.offsets[bins] = acc;
    }

    /// Scatter pass: writes `sw` (and `saux`, when provided) grouped by
    /// fine bin, in stable `w` order.  [`Shuffler::count`] must have run
    /// on the same `w` first.
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter<P: Probe>(
        &self,
        w: &[VertexId],
        aux: Option<&[VertexId]>,
        sw: &mut [VertexId],
        saux: Option<&mut [VertexId]>,
        scratch: &mut ShuffleScratch,
        addrs: ShuffleAddrs,
        probe: &mut P,
    ) {
        assert_eq!(w.len(), sw.len());
        if let (Some(a), Some(ref s)) = (aux, &saux) {
            assert_eq!(a.len(), w.len());
            assert_eq!(s.len(), w.len());
        }
        match &self.outer_of_fine {
            None => {
                scratch.cursors.clear();
                scratch
                    .cursors
                    .extend_from_slice(&scratch.offsets[..self.map.bins()]);
                scatter_pass(
                    w,
                    aux,
                    sw,
                    saux,
                    &mut scratch.cursors,
                    |v| self.map.partition_of(v),
                    addrs,
                    probe,
                );
            }
            Some(outer_of_fine) => {
                let outer_bins = *outer_of_fine.last().expect("non-empty") as usize + 1;
                // Outer counts by summing fine counts.
                scratch.outer_cursors.clear();
                scratch.outer_cursors.resize(outer_bins, 0);
                for (fine, &o) in outer_of_fine.iter().enumerate() {
                    scratch.outer_cursors[o as usize] += scratch.counts[fine];
                }
                // Exclusive prefix -> outer cursors.
                let mut acc = 0u32;
                for c in scratch.outer_cursors.iter_mut() {
                    let n = *c;
                    *c = acc;
                    acc += n;
                }
                // Level 1: scatter into the intermediate buffer by outer
                // bin.
                scratch.tmp.resize(w.len(), 0);
                if aux.is_some() {
                    scratch.tmp_aux.resize(w.len(), 0);
                }
                {
                    // Split borrows of scratch fields.
                    let ShuffleScratch {
                        tmp,
                        tmp_aux,
                        outer_cursors,
                        ..
                    } = scratch;
                    scatter_pass(
                        w,
                        aux,
                        tmp,
                        aux.is_some().then_some(tmp_aux.as_mut_slice()),
                        outer_cursors,
                        |v| outer_of_fine[self.map.partition_of(v)] as usize,
                        addrs,
                        probe,
                    );
                }
                // Level 2: within each outer bin, scatter by fine bin.
                scratch.cursors.clear();
                scratch
                    .cursors
                    .extend_from_slice(&scratch.offsets[..self.map.bins()]);
                let ShuffleScratch {
                    tmp,
                    tmp_aux,
                    cursors,
                    ..
                } = scratch;
                scatter_pass(
                    tmp,
                    aux.is_some().then_some(tmp_aux.as_slice()),
                    sw,
                    saux,
                    cursors,
                    |v| self.map.partition_of(v),
                    addrs,
                    probe,
                );
            }
        }
    }

    /// Gather pass: the inverse permutation.  Scanning the *pre-shuffle*
    /// walker array `w_old` in order locates, for each walker, its slot
    /// in the shuffled array; `w_new[j] = snext[slot]` (and likewise for
    /// the aux arrays).  This is how `W_{i+1}` is produced while
    /// preserving walker order (paper Figure 5).
    #[allow(clippy::too_many_arguments)]
    pub fn gather<P: Probe>(
        &self,
        w_old: &[VertexId],
        snext: &[VertexId],
        w_new: &mut [VertexId],
        aux_src: Option<&[VertexId]>,
        aux_new: Option<&mut [VertexId]>,
        scratch: &mut ShuffleScratch,
        addrs: ShuffleAddrs,
        probe: &mut P,
    ) {
        assert_eq!(w_old.len(), snext.len());
        assert_eq!(w_old.len(), w_new.len());
        scratch.cursors.clear();
        scratch
            .cursors
            .extend_from_slice(&scratch.offsets[..self.map.bins()]);
        match (aux_src, aux_new) {
            (Some(asrc), Some(anew)) => {
                assert_eq!(asrc.len(), w_old.len());
                assert_eq!(anew.len(), w_old.len());
                for (j, &v) in w_old.iter().enumerate() {
                    probe.touch(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                    let bin = self.map.partition_of(v);
                    let slot = scratch.cursors[bin] as usize;
                    scratch.cursors[bin] += 1;
                    probe.touch(addrs.dst + 4 * slot as u64, 4, AccessKind::Sequential);
                    w_new[j] = snext[slot];
                    anew[j] = asrc[slot];
                    probe.touch_write(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                }
            }
            (None, None) => {
                for (j, &v) in w_old.iter().enumerate() {
                    probe.touch(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                    let bin = self.map.partition_of(v);
                    let slot = scratch.cursors[bin] as usize;
                    scratch.cursors[bin] += 1;
                    probe.touch(addrs.dst + 4 * slot as u64, 4, AccessKind::Sequential);
                    w_new[j] = snext[slot];
                    probe.touch_write(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                }
            }
            _ => panic!("aux_src and aux_new must be provided together"),
        }
    }
}

/// Parallel variants of the three shuffle passes, dispatched over the
/// persistent [`WorkerPool`].
///
/// The walker array is split into one contiguous chunk per pool worker.
/// The count pass produces a per-(chunk, bin) count matrix; prefix-
/// summing it *bin-major* yields disjoint per-(chunk, bin) output
/// ranges, so the scatter workers write to non-overlapping positions of
/// the shared destination — the classic parallel stable counting sort,
/// and exactly the paper's "threads work on disjoint array areas,
/// eliminating the need for locks".  Results are bit-identical to the
/// sequential passes (verified by tests).
///
/// All per-chunk state lives in [`ShuffleScratch`], so a steady-state
/// count/scatter/gather cycle performs no heap allocation.
impl<'p> Shuffler<'p> {
    /// Parallel counting pass; fills `scratch` exactly like
    /// [`Shuffler::count`] plus the per-(chunk, bin) count matrix
    /// consumed by [`Shuffler::par_scatter`] / [`Shuffler::par_gather`].
    ///
    /// Only single-level shuffles support the parallel path; two-level
    /// plans fall back to the sequential implementation in the engine.
    pub fn par_count(&self, w: &[VertexId], pool: &WorkerPool, scratch: &mut ShuffleScratch) {
        assert!(
            self.outer_of_fine.is_none(),
            "parallel path is single-level"
        );
        let bins = self.map.bins();
        let chunks = pool.threads();
        let chunk = w.len().div_ceil(chunks);
        scratch.chunk_counts.clear();
        scratch.chunk_counts.resize(chunks * bins, 0);
        {
            let rows = DisjointSlice::new(&mut scratch.chunk_counts);
            pool.run_labeled("shuffle-count", &|t| {
                let lo = (t * chunk).min(w.len());
                let hi = ((t + 1) * chunk).min(w.len());
                // SAFETY: row `t` of the matrix belongs to worker `t`
                // alone.
                let counts = unsafe { rows.slice_mut(t * bins, bins) };
                for &v in &w[lo..hi] {
                    counts[self.map.partition_of(v)] += 1;
                }
            });
        }

        // Global counts + offsets.
        scratch.counts.clear();
        scratch.counts.resize(bins, 0);
        for row in scratch.chunk_counts.chunks_exact(bins) {
            for (b, &c) in row.iter().enumerate() {
                scratch.counts[b] += c;
            }
        }
        scratch.offsets.clear();
        scratch.offsets.resize(bins + 1, 0);
        let mut acc = 0u32;
        for (b, &c) in scratch.counts.iter().enumerate() {
            scratch.offsets[b] = acc;
            acc += c;
        }
        scratch.offsets[bins] = acc;
    }

    /// Rebuilds the per-(chunk, bin) start cursors from the count matrix
    /// left by [`Shuffler::par_count`]: bin-major prefix over chunks,
    /// offset by the bin start.  Scatter and gather each rebuild in
    /// place instead of cloning, because both scan the same pre-shuffle
    /// walker array.
    fn rebuild_chunk_cursors(&self, scratch: &mut ShuffleScratch) -> usize {
        let bins = self.map.bins();
        let chunks = scratch.chunk_counts.len() / bins;
        scratch.chunk_cursors.clear();
        scratch.chunk_cursors.resize(chunks * bins, 0);
        for b in 0..bins {
            let mut start = scratch.offsets[b];
            for c in 0..chunks {
                scratch.chunk_cursors[c * bins + b] = start;
                start += scratch.chunk_counts[c * bins + b];
            }
        }
        chunks
    }

    /// Parallel stable scatter over the pool, using the count matrix
    /// from [`Shuffler::par_count`].
    ///
    /// Each worker writes only within its pre-computed per-(chunk, bin)
    /// ranges, which partition `sw`; the disjointness is what makes the
    /// pointer share sound.
    pub fn par_scatter(
        &self,
        w: &[VertexId],
        aux: Option<&[VertexId]>,
        sw: &mut [VertexId],
        saux: Option<&mut [VertexId]>,
        pool: &WorkerPool,
        scratch: &mut ShuffleScratch,
    ) {
        assert_eq!(w.len(), sw.len());
        let bins = self.map.bins();
        let chunks = self.rebuild_chunk_cursors(scratch);
        let chunk = w.len().div_ceil(chunks);
        let sw_ptr = DisjointSlice::new(sw);
        let saux_ptr = saux.map(|s| {
            assert_eq!(s.len(), w.len());
            DisjointSlice::new(s)
        });
        let cursors = DisjointSlice::new(&mut scratch.chunk_cursors);
        pool.run_labeled("shuffle-scatter", &|t| {
            let lo = (t * chunk).min(w.len());
            let hi = ((t + 1) * chunk).min(w.len());
            // SAFETY: cursor row `t` belongs to worker `t` alone.
            let cur = unsafe { cursors.slice_mut(t * bins, bins) };
            for (j, &v) in w[lo..hi].iter().enumerate() {
                let bin = self.map.partition_of(v);
                let pos = cur[bin] as usize;
                cur[bin] += 1;
                // SAFETY: `pos` lies in this worker's exclusive
                // per-(chunk, bin) range established by `par_count`'s
                // bin-major prefix sums; no two workers ever receive
                // the same position.
                unsafe { sw_ptr.write(pos, v) };
                if let (Some(a), Some(sa)) = (aux, &saux_ptr) {
                    // SAFETY: same disjoint position as above.
                    unsafe { sa.write(pos, a[lo + j]) };
                }
            }
        });
    }

    /// Parallel gather over the pool: the inverse permutation, with the
    /// cursor matrix rebuilt in place from [`Shuffler::par_count`]'s
    /// counts (both passes scan the same *pre-shuffle* walker array, so
    /// the matrix is still valid — no per-step clone).
    #[allow(clippy::too_many_arguments)]
    pub fn par_gather(
        &self,
        w_old: &[VertexId],
        snext: &[VertexId],
        w_new: &mut [VertexId],
        aux_src: Option<&[VertexId]>,
        aux_new: Option<&mut [VertexId]>,
        pool: &WorkerPool,
        scratch: &mut ShuffleScratch,
    ) {
        assert_eq!(w_old.len(), snext.len());
        assert_eq!(w_old.len(), w_new.len());
        let bins = self.map.bins();
        let chunks = self.rebuild_chunk_cursors(scratch);
        let chunk = w_old.len().div_ceil(chunks);
        let w_new_ptr = DisjointSlice::new(w_new);
        let aux_new_ptr = aux_new.map(|a| {
            assert_eq!(a.len(), w_old.len());
            DisjointSlice::new(a)
        });
        let cursors = DisjointSlice::new(&mut scratch.chunk_cursors);
        pool.run_labeled("shuffle-gather", &|t| {
            let lo = (t * chunk).min(w_old.len());
            let hi = ((t + 1) * chunk).min(w_old.len());
            // SAFETY: cursor row `t` belongs to worker `t` alone.
            let cur = unsafe { cursors.slice_mut(t * bins, bins) };
            // SAFETY: output range `[lo, hi)` belongs to worker `t`
            // alone (chunks are contiguous and non-overlapping).
            let out = unsafe { w_new_ptr.slice_mut(lo, hi - lo) };
            match (aux_src, &aux_new_ptr) {
                (Some(asrc), Some(anew)) => {
                    // SAFETY: same disjoint output range as above.
                    let aout = unsafe { anew.slice_mut(lo, hi - lo) };
                    for (j, &v) in w_old[lo..hi].iter().enumerate() {
                        let bin = self.map.partition_of(v);
                        let slot = cur[bin] as usize;
                        cur[bin] += 1;
                        out[j] = snext[slot];
                        aout[j] = asrc[slot];
                    }
                }
                _ => {
                    for (j, &v) in w_old[lo..hi].iter().enumerate() {
                        let bin = self.map.partition_of(v);
                        let slot = cur[bin] as usize;
                        cur[bin] += 1;
                        out[j] = snext[slot];
                    }
                }
            }
        });
    }
}

/// One stable counting-scatter pass.
#[allow(clippy::too_many_arguments)]
fn scatter_pass<P: Probe>(
    src: &[VertexId],
    aux: Option<&[VertexId]>,
    dst: &mut [VertexId],
    daux: Option<&mut [VertexId]>,
    cursors: &mut [u32],
    bin_of: impl Fn(VertexId) -> usize,
    addrs: ShuffleAddrs,
    probe: &mut P,
) {
    match (aux, daux) {
        (Some(a), Some(da)) => {
            for (j, &v) in src.iter().enumerate() {
                probe.touch(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                let bin = bin_of(v);
                let pos = cursors[bin] as usize;
                cursors[bin] += 1;
                dst[pos] = v;
                da[pos] = a[j];
                probe.touch_write(addrs.dst + 4 * pos as u64, 4, AccessKind::Sequential);
            }
        }
        (None, None) => {
            for (j, &v) in src.iter().enumerate() {
                probe.touch(addrs.src + 4 * j as u64, 4, AccessKind::Sequential);
                let bin = bin_of(v);
                let pos = cursors[bin] as usize;
                cursors[bin] += 1;
                dst[pos] = v;
                probe.touch_write(addrs.dst + 4 * pos as u64, 4, AccessKind::Sequential);
            }
        }
        _ => panic!("aux and daux must be provided together"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Partition, SamplePolicy};
    use crate::DEAD;
    use fm_memsim::NullProbe;

    fn map(bounds: &[(u32, u32)], n: usize) -> PartitionMap {
        let parts: Vec<Partition> = bounds
            .iter()
            .map(|&(s, e)| Partition {
                start: s,
                end: e,
                policy: SamplePolicy::Direct,
                group: 0,
                edges: 0,
                uniform_degree: None,
            })
            .collect();
        PartitionMap::new(&parts, n)
    }

    fn run_single(w: &[VertexId], m: &PartitionMap) -> (Vec<VertexId>, ShuffleScratch) {
        let s = Shuffler::single_level(m);
        let mut scratch = ShuffleScratch::default();
        let mut sw = vec![0; w.len()];
        let mut p = NullProbe;
        s.count(w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            w,
            None,
            &mut sw,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        (sw, scratch)
    }

    #[test]
    fn panicked_epoch_leaves_no_partial_walker_state() {
        // A crash inside one pool epoch (a shuffle-stage panic) must not
        // leak partially-applied walker state into a subsequent run: the
        // next dispatch rewrites scratch and output arrays wholesale, so
        // it must reproduce the sequential shuffle exactly.
        let n = 4_000usize;
        let m = map(&[(0, 100), (100, 1000), (1000, 4000)], n);
        let w: Vec<VertexId> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761) % n) as VertexId)
            .collect();
        let (seq_sw, seq_scratch) = run_single(&w, &m);

        let pool = WorkerPool::new(4);
        let s = Shuffler::single_level(&m);
        let mut scratch = ShuffleScratch::default();
        // Garbage that a correct dispatch must fully overwrite.
        let mut sw = vec![VertexId::MAX; n];
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_labeled("shuffle-scatter", &|t| {
                if t == 1 {
                    panic!("injected shuffle crash");
                }
            });
        }));
        assert!(crashed.is_err(), "the injected panic must propagate");

        s.par_count(&w, &pool, &mut scratch);
        s.par_scatter(&w, None, &mut sw, None, &pool, &mut scratch);
        assert_eq!(sw, seq_sw, "post-crash shuffle must match sequential");
        assert_eq!(scratch.offsets, seq_scratch.offsets);
    }

    #[test]
    fn scatter_groups_by_partition_stably() {
        let m = map(&[(0, 4), (4, 8)], 8);
        let w = vec![5, 1, 7, 0, 4, 2];
        let (sw, scratch) = run_single(&w, &m);
        // Partition 0 walkers in w order: 1, 0, 2; partition 1: 5, 7, 4.
        assert_eq!(sw, vec![1, 0, 2, 5, 7, 4]);
        assert_eq!(scratch.counts, vec![3, 3, 0]);
        assert_eq!(scratch.offsets, vec![0, 3, 6, 6]);
    }

    #[test]
    fn dead_walkers_go_to_trailing_bin() {
        let m = map(&[(0, 8)], 8);
        let w = vec![3, DEAD, 5];
        let (sw, scratch) = run_single(&w, &m);
        assert_eq!(sw, vec![3, 5, DEAD]);
        assert_eq!(scratch.counts, vec![2, 1]);
    }

    #[test]
    fn gather_inverts_scatter() {
        let m = map(&[(0, 3), (3, 6), (6, 10)], 10);
        let w = vec![9, 0, 5, 3, 7, 1, 2, 8];
        let s = Shuffler::single_level(&m);
        let mut scratch = ShuffleScratch::default();
        let mut sw = vec![0; w.len()];
        let mut p = NullProbe;
        s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            &w,
            None,
            &mut sw,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        // "Sample" = identity: gather must reproduce w exactly.
        let mut back = vec![0; w.len()];
        s.gather(
            &w,
            &sw,
            &mut back,
            None,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        assert_eq!(back, w);
    }

    #[test]
    fn gather_routes_sampled_updates_to_walker_order() {
        let m = map(&[(0, 4), (4, 8)], 8);
        let w = vec![5, 1, 7, 0];
        let s = Shuffler::single_level(&m);
        let mut scratch = ShuffleScratch::default();
        let mut sw = vec![0; 4];
        let mut p = NullProbe;
        s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            &w,
            None,
            &mut sw,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        assert_eq!(sw, vec![1, 0, 5, 7]);
        // Each walker moves to position + 10 during "sampling".
        let snext: Vec<VertexId> = sw.iter().map(|&v| v + 10).collect();
        let mut w_new = vec![0; 4];
        s.gather(
            &w,
            &snext,
            &mut w_new,
            None,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        assert_eq!(w_new, vec![15, 11, 17, 10]);
    }

    #[test]
    fn aux_arrays_travel_with_walkers() {
        let m = map(&[(0, 4), (4, 8)], 8);
        let w = vec![5, 1, 7, 0];
        let prev = vec![100, 101, 102, 103];
        let s = Shuffler::single_level(&m);
        let mut scratch = ShuffleScratch::default();
        let (mut sw, mut sprev) = (vec![0; 4], vec![0; 4]);
        let mut p = NullProbe;
        s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            &w,
            Some(&prev),
            &mut sw,
            Some(&mut sprev),
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        assert_eq!(sw, vec![1, 0, 5, 7]);
        assert_eq!(sprev, vec![101, 103, 100, 102]);
        // Gather both the sampled positions and the old positions (the
        // node2vec data flow: new prev = old position).
        let snext: Vec<VertexId> = vec![11, 10, 15, 17];
        let (mut w_new, mut prev_new) = (vec![0; 4], vec![0; 4]);
        s.gather(
            &w,
            &snext,
            &mut w_new,
            Some(&sw),
            Some(&mut prev_new),
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        assert_eq!(w_new, vec![15, 11, 17, 10]);
        assert_eq!(prev_new, vec![5, 1, 7, 0]);
    }

    #[test]
    fn two_level_equals_single_level() {
        // 4 partitions in 2 outer bins (2 internally-shuffled groups).
        let m = map(&[(0, 2), (2, 4), (4, 6), (6, 8)], 8);
        let outer = vec![0, 0, 1, 1, 2]; // dead bin is its own outer bin
        let w: Vec<VertexId> = vec![7, 0, 3, 5, 1, 6, 2, 4, DEAD, 0, 7];
        let single = Shuffler::single_level(&m);
        let double = Shuffler::two_level(&m, outer);
        assert_eq!(double.levels(), 2);
        let mut p = NullProbe;

        let mut s1 = ShuffleScratch::default();
        let mut sw1 = vec![0; w.len()];
        single.count(&w, &mut s1, ShuffleAddrs::default(), &mut p);
        single.scatter(
            &w,
            None,
            &mut sw1,
            None,
            &mut s1,
            ShuffleAddrs::default(),
            &mut p,
        );

        let mut s2 = ShuffleScratch::default();
        let mut sw2 = vec![0; w.len()];
        double.count(&w, &mut s2, ShuffleAddrs::default(), &mut p);
        double.scatter(
            &w,
            None,
            &mut sw2,
            None,
            &mut s2,
            ShuffleAddrs::default(),
            &mut p,
        );

        assert_eq!(sw1, sw2, "two-level shuffle must be byte-identical");
    }

    #[test]
    fn two_level_with_aux_equals_single_level() {
        let m = map(&[(0, 2), (2, 4), (4, 8)], 8);
        let outer = vec![0, 0, 1, 2];
        let w: Vec<VertexId> = vec![7, 0, 3, 5, 1, 6];
        let prev: Vec<VertexId> = (100..106).collect();
        let mut p = NullProbe;

        let mut run = |s: &Shuffler| {
            let mut scratch = ShuffleScratch::default();
            let (mut sw, mut sprev) = (vec![0; 6], vec![0; 6]);
            s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut NullProbe);
            s.scatter(
                &w,
                Some(&prev),
                &mut sw,
                Some(&mut sprev),
                &mut scratch,
                ShuffleAddrs::default(),
                &mut p,
            );
            (sw, sprev)
        };
        let single = Shuffler::single_level(&m);
        let double = Shuffler::two_level(&m, outer);
        assert_eq!(run(&single), run(&double));
    }

    #[test]
    #[should_panic(expected = "contiguous runs")]
    fn non_contiguous_outer_assignment_rejected() {
        let m = map(&[(0, 4), (4, 8)], 8);
        let _ = Shuffler::two_level(&m, vec![0, 2, 1]);
    }

    #[test]
    fn parallel_shuffle_is_bit_identical_to_sequential() {
        let m = map(&[(0, 3), (3, 10), (10, 32)], 32);
        let s = Shuffler::single_level(&m);
        let mut rng = fm_rng::Xorshift64Star::new(9);
        use fm_rng::Rng64;
        let w: Vec<VertexId> = (0..5000)
            .map(|_| {
                if rng.gen_bool(0.02) {
                    DEAD
                } else {
                    rng.gen_index(32) as VertexId
                }
            })
            .collect();
        let prev: Vec<VertexId> = (0..5000).map(|_| rng.gen_index(32) as VertexId).collect();

        // Sequential reference.
        let mut scratch = ShuffleScratch::default();
        let (mut sw1, mut sp1) = (vec![0; w.len()], vec![0; w.len()]);
        let mut p = NullProbe;
        s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            &w,
            Some(&prev),
            &mut sw1,
            Some(&mut sp1),
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );
        let snext: Vec<VertexId> = sw1
            .iter()
            .map(|&v| if v == DEAD { DEAD } else { v ^ 1 })
            .collect();
        let (mut wn1, mut pn1) = (vec![0; w.len()], vec![0; w.len()]);
        s.gather(
            &w,
            &snext,
            &mut wn1,
            Some(&sw1),
            Some(&mut pn1),
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );

        for threads in [1usize, 2, 3, 7] {
            let pool = WorkerPool::new(threads);
            let mut scratch2 = ShuffleScratch::default();
            s.par_count(&w, &pool, &mut scratch2);
            assert_eq!(scratch.counts, scratch2.counts, "{threads} threads");
            assert_eq!(scratch.offsets, scratch2.offsets);
            let (mut sw2, mut sp2) = (vec![0; w.len()], vec![0; w.len()]);
            s.par_scatter(&w, Some(&prev), &mut sw2, Some(&mut sp2), &pool, &mut scratch2);
            assert_eq!(sw1, sw2, "{threads} threads scatter");
            assert_eq!(sp1, sp2, "{threads} threads scatter aux");
            // Gather reuses the count matrix in place — no re-count, no
            // clone.
            let (mut wn2, mut pn2) = (vec![0; w.len()], vec![0; w.len()]);
            s.par_gather(
                &w,
                &snext,
                &mut wn2,
                Some(&sw2),
                Some(&mut pn2),
                &pool,
                &mut scratch2,
            );
            assert_eq!(wn1, wn2, "{threads} threads gather");
            assert_eq!(pn1, pn2, "{threads} threads gather aux");
        }
    }

    #[test]
    fn parallel_shuffle_without_aux() {
        let m = map(&[(0, 16), (16, 64)], 64);
        let s = Shuffler::single_level(&m);
        let w: Vec<VertexId> = (0..777).map(|i| (i * 37 % 64) as VertexId).collect();
        let mut scratch = ShuffleScratch::default();
        let mut p = NullProbe;
        let mut sw1 = vec![0; w.len()];
        s.count(&w, &mut scratch, ShuffleAddrs::default(), &mut p);
        s.scatter(
            &w,
            None,
            &mut sw1,
            None,
            &mut scratch,
            ShuffleAddrs::default(),
            &mut p,
        );

        let pool = WorkerPool::new(4);
        let mut scratch2 = ShuffleScratch::default();
        s.par_count(&w, &pool, &mut scratch2);
        let mut sw2 = vec![0; w.len()];
        s.par_scatter(&w, None, &mut sw2, None, &pool, &mut scratch2);
        assert_eq!(sw1, sw2);
    }

    #[test]
    fn probe_sees_streaming_traffic() {
        use fm_memsim::{HierarchyConfig, MemorySystem};
        let m = map(&[(0, 64)], 64);
        let s = Shuffler::single_level(&m);
        let w: Vec<VertexId> = (0..1000).map(|i| (i % 64) as VertexId).collect();
        let mut scratch = ShuffleScratch::default();
        let mut sw = vec![0; w.len()];
        let mut probe = MemorySystem::new(HierarchyConfig::skylake_server());
        let addrs = ShuffleAddrs {
            src: 0x10_0000,
            dst: 0x20_0000,
        };
        s.count(&w, &mut scratch, addrs, &mut probe);
        s.scatter(&w, None, &mut sw, None, &mut scratch, addrs, &mut probe);
        // Count + scatter = three streaming touches per walker.
        assert_eq!(probe.stats().accesses, 3 * w.len() as u64);
    }
}
